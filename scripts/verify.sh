#!/usr/bin/env bash
# Hermetic build-and-test gate.
#
# Proves the workspace builds and passes its full test suite with NO access
# to any crate registry: cargo runs offline against an empty, throwaway
# CARGO_HOME, so any dependency that is not vendored in-repo fails the
# build immediately. This is the enforcement mechanism behind the
# zero-external-dependency policy (see DESIGN.md).
#
# Usage: scripts/verify.sh [--keep-target]
#   --keep-target  reuse the existing target/ dir (faster local runs);
#                  by default a scratch target dir is used so the check
#                  cannot be satisfied by stale pre-downloaded artifacts.

set -euo pipefail
cd "$(dirname "$0")/.."

KEEP_TARGET=0
for arg in "$@"; do
    case "$arg" in
        --keep-target) KEEP_TARGET=1 ;;
        *) echo "unknown option: $arg" >&2; exit 2 ;;
    esac
done

SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

# Empty CARGO_HOME: no registry index, no cached .crate files, no config.
export CARGO_HOME="$SCRATCH/cargo-home"
mkdir -p "$CARGO_HOME"

if [ "$KEEP_TARGET" -eq 0 ]; then
    export CARGO_TARGET_DIR="$SCRATCH/target"
fi

echo "== verify: offline release build (empty registry) =="
cargo build --release --offline --workspace

echo "== verify: offline test suite =="
cargo test -q --offline --workspace

echo "== verify: record -> replay round trip =="
# Record a short trace, replay it, and check the replay output is
# bit-identical to the direct run — offline, in a throwaway directory.
PAGECROSS="${CARGO_TARGET_DIR:-target}/release/pagecross"
TRACE_DIR="$SCRATCH/traces"
mkdir -p "$TRACE_DIR"
"$PAGECROSS" record --workload qmm_int.s00 --warmup 5000 --instructions 20000 \
    --out "$TRACE_DIR/qmm_int.s00.pct"
"$PAGECROSS" run --workload qmm_int.s00 --warmup 5000 --instructions 20000 \
    > "$SCRATCH/direct.txt"
"$PAGECROSS" replay --trace "$TRACE_DIR/qmm_int.s00.pct" \
    --warmup 5000 --instructions 20000 > "$SCRATCH/replay.txt"
if ! diff -u "$SCRATCH/direct.txt" "$SCRATCH/replay.txt"; then
    echo "verify: FAIL — replay output differs from the direct run" >&2
    exit 1
fi
"$PAGECROSS" campaign --trace-dir "$TRACE_DIR" --jobs 2 > /dev/null

echo "== verify: telemetry smoke (JSONL + chrome trace) =="
# Telemetry must validate against its own checker and must not change the
# report block (everything before the telemetry summary lines).
"$PAGECROSS" run --workload qmm_int.s00 --warmup 5000 --instructions 20000 \
    --telemetry-out "$SCRATCH/telemetry.jsonl" --telemetry-interval 10000 \
    --telemetry-trace "$SCRATCH/trace.json" > "$SCRATCH/telemetry-run.txt"
"$PAGECROSS" check-telemetry --jsonl "$SCRATCH/telemetry.jsonl"
if ! grep -q '"traceEvents"' "$SCRATCH/trace.json"; then
    echo "verify: FAIL — chrome trace missing traceEvents array" >&2
    exit 1
fi
if ! diff -u "$SCRATCH/direct.txt" <(grep -v '^telemetry\|^trace ' "$SCRATCH/telemetry-run.txt"); then
    echo "verify: FAIL — telemetry collection changed the report output" >&2
    exit 1
fi

echo "== verify: OS model smoke (faults + shootdowns live, OS-off inert) =="
# A 64 MB machine with thp=0.5 must demand-page (minor faults) and issue
# TLB shootdowns, and its JSONL stream (now carrying d_os_* deltas) must
# still satisfy the re-summing checker.
"$PAGECROSS" run --workload gap.s00 --warmup 5000 --instructions 20000 \
    --os on --phys-mem 64M --thp 0.5 \
    --telemetry-out "$SCRATCH/os.jsonl" --telemetry-interval 10000 \
    > "$SCRATCH/os-run.txt"
"$PAGECROSS" check-telemetry --jsonl "$SCRATCH/os.jsonl"
OS_MINOR=$(awk '/^os /{print $3}' "$SCRATCH/os-run.txt")
OS_SHOOTDOWNS=$(awk '/^os /{print $13}' "$SCRATCH/os-run.txt")
if [ -z "$OS_MINOR" ] || [ "$OS_MINOR" -eq 0 ] || [ "$OS_SHOOTDOWNS" -eq 0 ]; then
    echo "verify: FAIL — OS run expected nonzero faults and shootdowns," \
         "got minor=${OS_MINOR:-missing} shootdowns=${OS_SHOOTDOWNS:-missing}" >&2
    exit 1
fi
# OS off (the default) must be byte-identical to not passing the flag at
# all: the model is strictly opt-in.
"$PAGECROSS" run --workload gap.s00 --warmup 5000 --instructions 20000 \
    > "$SCRATCH/no-os.txt"
"$PAGECROSS" run --workload gap.s00 --warmup 5000 --instructions 20000 \
    --os off > "$SCRATCH/os-off.txt"
if ! diff -u "$SCRATCH/no-os.txt" "$SCRATCH/os-off.txt"; then
    echo "verify: FAIL — '--os off' output differs from the default" >&2
    exit 1
fi
if grep -q '^os ' "$SCRATCH/no-os.txt"; then
    echo "verify: FAIL — OS-disabled report printed an os counter line" >&2
    exit 1
fi

echo "== verify: OK =="
