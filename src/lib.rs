//! # pagecross
//!
//! A full reproduction of *"To Cross, or Not to Cross Pages for
//! Prefetching?"* (HPCA 2025): the **MOKA** framework for page-cross
//! prefetch filtering, the **DRIPPER** prototype filter, the three L1D
//! prefetchers it was evaluated with (Berti, IPCP, BOP), and the complete
//! ChampSim-like simulation substrate (out-of-order core, cache hierarchy,
//! TLBs, page-structure caches, page-table walker, DRAM).
//!
//! This umbrella crate re-exports the workspace members under stable paths.
//!
//! # Quickstart
//!
//! ```
//! use pagecross::cpu::{SimulationBuilder, PrefetcherKind, PgcPolicyKind};
//! use pagecross::workloads::{suite, SuiteId};
//!
//! // Pick a workload from the synthetic suite registry and simulate it with
//! // the Berti prefetcher under the DRIPPER page-cross filter.
//! let wl = &suite(SuiteId::Gap).workloads()[0];
//! let report = SimulationBuilder::new()
//!     .prefetcher(PrefetcherKind::Berti)
//!     .pgc_policy(PgcPolicyKind::Dripper)
//!     .instructions(20_000)
//!     .run_workload(wl);
//! assert!(report.core.ipc() > 0.0);
//! ```

pub use moka_pgc as moka;
pub use pagecross_cpu as cpu;
pub use pagecross_mem as mem;
pub use pagecross_os as os;
pub use pagecross_prefetch as prefetch;
pub use pagecross_telemetry as telemetry;
pub use pagecross_trace as trace;
pub use pagecross_types as types;
pub use pagecross_workloads as workloads;
