//! Signed saturating counters.
//!
//! MOKA implements perceptron weights and system-feature weights with
//! saturating counters (paper §III-B). A counter of `bits` width stores
//! values in `[-2^(bits-1), 2^(bits-1) - 1]` — e.g. the 5-bit weights of
//! Table III span `[-16, 15]`.

use std::fmt;

/// A signed saturating counter with a configurable bit width.
///
/// # Example
///
/// ```
/// use pagecross_types::SatCounter;
///
/// let mut w = SatCounter::new(5);
/// for _ in 0..100 {
///     w.inc();
/// }
/// assert_eq!(w.get(), 15); // saturated at +2^4 - 1
/// for _ in 0..100 {
///     w.dec();
/// }
/// assert_eq!(w.get(), -16); // saturated at -2^4
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SatCounter {
    value: i16,
    min: i16,
    max: i16,
}

impl SatCounter {
    /// Creates a zero-initialised counter of the given bit width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `2..=15`.
    pub fn new(bits: u32) -> Self {
        assert!(
            (2..=15).contains(&bits),
            "counter width must be 2..=15 bits"
        );
        let max = (1i16 << (bits - 1)) - 1;
        Self {
            value: 0,
            min: -max - 1,
            max,
        }
    }

    /// Creates a counter with an explicit initial value (clamped to range).
    pub fn with_value(bits: u32, value: i16) -> Self {
        let mut c = Self::new(bits);
        c.value = value.clamp(c.min, c.max);
        c
    }

    /// Current value.
    #[inline]
    pub const fn get(self) -> i16 {
        self.value
    }

    /// Inclusive maximum representable value.
    #[inline]
    pub const fn max(self) -> i16 {
        self.max
    }

    /// Inclusive minimum representable value.
    #[inline]
    pub const fn min(self) -> i16 {
        self.min
    }

    /// Increments, saturating at the maximum.
    #[inline]
    pub fn inc(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Decrements, saturating at the minimum.
    #[inline]
    pub fn dec(&mut self) {
        if self.value > self.min {
            self.value -= 1;
        }
    }

    /// Adds a signed amount, saturating at both ends.
    #[inline]
    pub fn add(&mut self, amount: i16) {
        self.value = self.value.saturating_add(amount).clamp(self.min, self.max);
    }

    /// Resets the counter to zero.
    #[inline]
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// True when the counter is at its positive saturation point.
    #[inline]
    pub const fn is_max(self) -> bool {
        self.value == self.max
    }

    /// True when the counter is at its negative saturation point.
    #[inline]
    pub const fn is_min(self) -> bool {
        self.value == self.min
    }
}

impl fmt::Debug for SatCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SatCounter({} in [{}, {}])",
            self.value, self.min, self.max
        )
    }
}

impl fmt::Display for SatCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_bit_range_matches_table_iii() {
        let c = SatCounter::new(5);
        assert_eq!(c.min(), -16);
        assert_eq!(c.max(), 15);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn saturates_upward() {
        let mut c = SatCounter::new(3);
        for _ in 0..20 {
            c.inc();
        }
        assert_eq!(c.get(), 3);
        assert!(c.is_max());
    }

    #[test]
    fn saturates_downward() {
        let mut c = SatCounter::new(3);
        for _ in 0..20 {
            c.dec();
        }
        assert_eq!(c.get(), -4);
        assert!(c.is_min());
    }

    #[test]
    fn add_clamps() {
        let mut c = SatCounter::new(5);
        c.add(100);
        assert_eq!(c.get(), 15);
        c.add(-100);
        assert_eq!(c.get(), -16);
        c.add(5);
        assert_eq!(c.get(), -11);
    }

    #[test]
    fn with_value_clamps() {
        assert_eq!(SatCounter::with_value(5, 99).get(), 15);
        assert_eq!(SatCounter::with_value(5, -99).get(), -16);
        assert_eq!(SatCounter::with_value(5, 7).get(), 7);
    }

    #[test]
    fn reset_returns_to_zero() {
        let mut c = SatCounter::with_value(5, 9);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn rejects_too_wide() {
        let _ = SatCounter::new(16);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn rejects_too_narrow() {
        let _ = SatCounter::new(1);
    }
}
