//! A minimal in-repo property-testing harness.
//!
//! The workspace is hermetic — no external crates — so this module replaces
//! `proptest` for the differential and invariant test suites. It keeps the
//! three properties that matter for a simulator testbed:
//!
//! * **deterministic generation** — cases are drawn from [`Rng64`], so a
//!   failing case is reproducible from the printed seed and case index;
//! * **configurable case counts** — per-call via [`Config::cases`] or
//!   globally via the `PAGECROSS_PROP_CASES` environment variable;
//! * **greedy shrinking** — on failure, [`Shrink::shrink`] candidates are
//!   tried depth-first and the first still-failing candidate is adopted,
//!   until no candidate fails or the step budget runs out.
//!
//! Properties return `Result<(), String>` (use [`prop_assert!`] /
//! [`prop_assert_eq!`]); panics inside the device under test propagate
//! unchanged so internal assertion failures are still loud.
//!
//! # Example
//!
//! ```
//! use pagecross_types::prop::{check, Config};
//! use pagecross_types::{prop_assert, Rng64};
//!
//! check(
//!     &Config::cases(32).seed(7),
//!     |rng| rng.below(100),
//!     |&v| {
//!         prop_assert!(v < 100, "out of range: {v}");
//!         Ok(())
//!     },
//! );
//! ```

use crate::rng::Rng64;

/// Harness configuration for one [`check`] call.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Seed of the case stream (each case forks its own generator).
    pub seed: u64,
    /// Budget of property evaluations spent shrinking a failure.
    pub max_shrink_steps: u32,
}

impl Config {
    /// Default seed: arbitrary but fixed, so suites are reproducible.
    pub const DEFAULT_SEED: u64 = 0x9A_6E_C0_55;

    /// A config running `cases` cases (scaled by `PAGECROSS_PROP_CASES`
    /// when set, which overrides the per-call count).
    pub fn cases(cases: u32) -> Self {
        let cases = std::env::var("PAGECROSS_PROP_CASES")
            .ok()
            .and_then(|s| s.parse::<u32>().ok())
            .unwrap_or(cases)
            .max(1);
        Self {
            cases,
            seed: Self::DEFAULT_SEED,
            max_shrink_steps: 2_000,
        }
    }

    /// Overrides the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for Config {
    fn default() -> Self {
        Self::cases(64)
    }
}

/// Types that can propose strictly "smaller" variants of themselves.
///
/// The default implementation proposes nothing (no shrinking); the harness
/// then reports the original failing case.
pub trait Shrink: Sized {
    /// Candidate reductions, most aggressive first. Must not yield `self`.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_shrink_uint {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                for c in [0, v / 2, v.saturating_sub(1)] {
                    if c != v && !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
        }
    )*};
}
impl_shrink_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_shrink_int {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let towards_zero = if v > 0 { v - 1 } else { v + 1 };
                let mut out = Vec::new();
                for c in [0, v / 2, towards_zero] {
                    if c != v && !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
        }
    )*};
}
impl_shrink_int!(i8, i16, i32, i64, isize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for f64 {
    fn shrink(&self) -> Vec<Self> {
        let v = *self;
        let mut out = Vec::new();
        for c in [0.0, v / 2.0] {
            if c != v && !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }
}

impl<A: Shrink + Clone, B: Shrink + Clone> Shrink for (A, B) {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        out.extend(self.0.shrink().into_iter().map(|a| (a, self.1.clone())));
        out.extend(self.1.shrink().into_iter().map(|b| (self.0.clone(), b)));
        out
    }
}

impl<A: Shrink + Clone, B: Shrink + Clone, C: Shrink + Clone> Shrink for (A, B, C) {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        out.extend(
            self.0
                .shrink()
                .into_iter()
                .map(|a| (a, self.1.clone(), self.2.clone())),
        );
        out.extend(
            self.1
                .shrink()
                .into_iter()
                .map(|b| (self.0.clone(), b, self.2.clone())),
        );
        out.extend(
            self.2
                .shrink()
                .into_iter()
                .map(|c| (self.0.clone(), self.1.clone(), c)),
        );
        out
    }
}

/// Caps the per-step candidate fan-out on large vectors so a shrink pass
/// stays within the step budget instead of enumerating thousands of
/// single-element removals.
const VEC_CANDIDATE_CAP: usize = 24;

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<Self> = Vec::new();
        let n = self.len();
        if n == 0 {
            return out;
        }
        // Halves first: the fastest way down for long sequences.
        if n > 1 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n / 2..].to_vec());
        }
        // Single-element removals, evenly spread when capped.
        let step = (n / VEC_CANDIDATE_CAP).max(1);
        for i in (0..n).step_by(step) {
            let mut v = self.clone();
            v.remove(i);
            out.push(v);
        }
        // In-place element shrinks.
        for i in (0..n).step_by(step) {
            for smaller in self[i].shrink() {
                let mut v = self.clone();
                v[i] = smaller;
                out.push(v);
            }
        }
        out
    }
}

/// Generates `len` elements with `f`, where `len` is uniform in
/// `[min_len, max_len)` — the harness's analogue of
/// `prop::collection::vec(elem, min..max)`.
pub fn vec_of<T>(
    rng: &mut Rng64,
    min_len: u64,
    max_len: u64,
    mut f: impl FnMut(&mut Rng64) -> T,
) -> Vec<T> {
    let len = rng.range(min_len, max_len.saturating_sub(1).max(min_len));
    (0..len).map(|_| f(rng)).collect()
}

/// Runs `prop` over `cfg.cases` inputs drawn by `gen`; on failure, greedily
/// shrinks the input and panics with the minimal counterexample.
pub fn check<T, G, P>(cfg: &Config, gen: G, prop: P)
where
    T: Clone + std::fmt::Debug + Shrink,
    G: Fn(&mut Rng64) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let mut stream = Rng64::new(cfg.seed);
    for case in 0..cfg.cases {
        let mut case_rng = stream.fork();
        let input = gen(&mut case_rng);
        if let Err(err) = prop(&input) {
            let (minimal, minimal_err, steps) = shrink_failure(input, err, &prop, cfg);
            panic!(
                "property failed (seed {:#x}, case {case}/{}, {steps} shrink steps)\n\
                 minimal input: {minimal:?}\n\
                 error: {minimal_err}",
                cfg.seed, cfg.cases
            );
        }
    }
}

fn shrink_failure<T, P>(input: T, err: String, prop: &P, cfg: &Config) -> (T, String, u32)
where
    T: Clone + std::fmt::Debug + Shrink,
    P: Fn(&T) -> Result<(), String>,
{
    let mut cur = input;
    let mut cur_err = err;
    let mut steps = 0u32;
    'outer: while steps < cfg.max_shrink_steps {
        for cand in cur.shrink() {
            steps += 1;
            if let Err(e) = prop(&cand) {
                cur = cand;
                cur_err = e;
                continue 'outer; // greedy: restart from the new failure
            }
            if steps >= cfg.max_shrink_steps {
                break 'outer;
            }
        }
        break; // no candidate fails — local minimum
    }
    (cur, cur_err, steps)
}

/// Asserts a condition inside a property, returning `Err` (not panicking)
/// so the harness can shrink the input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!("{} ({}:{})", format!($($fmt)+), file!(), line!()));
        }
    };
}

/// Asserts equality inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) ({}:{})",
                stringify!($a),
                stringify!($b),
                a,
                b,
                file!(),
                line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "{} (left: {:?}, right: {:?}) ({}:{})",
                format!($($fmt)+),
                a,
                b,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0u32);
        check(
            &Config {
                cases: 37,
                seed: 1,
                max_shrink_steps: 100,
            },
            |rng| rng.below(10),
            |_| {
                count.set(count.get() + 1);
                Ok(())
            },
        );
        assert_eq!(count.get(), 37);
    }

    #[test]
    fn failure_is_shrunk_to_minimal_scalar() {
        let result = std::panic::catch_unwind(|| {
            check(
                &Config {
                    cases: 200,
                    seed: 2,
                    max_shrink_steps: 1_000,
                },
                |rng| rng.below(1_000_000),
                |&v| {
                    prop_assert!(v < 17, "too big: {v}");
                    Ok(())
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        // Greedy halving from any failing value lands exactly on 17, the
        // smallest failing input.
        assert!(msg.contains("minimal input: 17"), "got: {msg}");
    }

    #[test]
    fn failure_is_shrunk_to_minimal_vec() {
        let result = std::panic::catch_unwind(|| {
            check(
                &Config {
                    cases: 200,
                    seed: 3,
                    max_shrink_steps: 4_000,
                },
                |rng| vec_of(rng, 0, 50, |r| r.below(100)),
                |v: &Vec<u64>| {
                    prop_assert!(!v.iter().any(|&x| x >= 60), "has a large element");
                    Ok(())
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        // The minimal counterexample is a single element of exactly 60.
        assert!(msg.contains("minimal input: [60]"), "got: {msg}");
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = |seed| {
            let mut all = Vec::new();
            let mut stream = Rng64::new(seed);
            for _ in 0..10 {
                let mut rng = stream.fork();
                all.push(vec_of(&mut rng, 1, 8, |r| r.below(100)));
            }
            all
        };
        assert_eq!(collect(42), collect(42));
        assert_ne!(collect(42), collect(43));
    }

    #[test]
    fn vec_of_respects_length_bounds() {
        let mut rng = Rng64::new(9);
        for _ in 0..1_000 {
            let v = vec_of(&mut rng, 1, 500, |r| r.below(2));
            assert!((1..500).contains(&v.len()));
        }
    }

    #[test]
    fn tuple_shrink_covers_both_components() {
        let cands = (4u64, 6u64).shrink();
        assert!(cands.iter().any(|&(a, b)| a < 4 && b == 6));
        assert!(cands.iter().any(|&(a, b)| a == 4 && b < 6));
    }

    #[test]
    fn shrink_never_yields_self() {
        for v in [0u64, 1, 2, 97] {
            assert!(!v.shrink().contains(&v));
        }
        assert!(bool::shrink(&false).is_empty());
    }
}
