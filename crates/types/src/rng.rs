//! A tiny deterministic PRNG (xorshift64*).
//!
//! Every stochastic choice in the simulator — physical frame allocation,
//! workload generation, multi-core mix selection — draws from [`Rng64`] so
//! that runs are reproducible bit-for-bit from a seed. The statistical
//! quality of xorshift64* is more than sufficient for address scrambling
//! and workload synthesis, and it is far faster than a cryptographic RNG.

/// Deterministic xorshift64* PRNG.
///
/// # Example
///
/// ```
/// use pagecross_types::Rng64;
///
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed. A zero seed is remapped to a fixed
    /// non-zero constant (xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // bounds used in simulation (< 2^40).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Draws from a discrete power-law-ish (Zipf) distribution over
    /// `[0, n)` with exponent ~1; used by the graph workload generators.
    pub fn zipf(&mut self, n: u64) -> u64 {
        assert!(n > 0, "zipf over empty support");
        // Inverse-CDF approximation for s = 1: P(X <= k) ~ ln(k+1)/ln(n+1).
        let u = self.unit();
        let k = ((n as f64 + 1.0).powf(u) - 1.0) as u64;
        k.min(n - 1)
    }

    /// Forks a child generator whose stream is decorrelated from the parent.
    pub fn fork(&mut self) -> Self {
        Self::new(self.next_u64() ^ 0xA076_1D64_78BD_642F)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng64::new(99);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = Rng64::new(5);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut r = Rng64::new(11);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng64::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn zipf_in_support_and_skewed() {
        let mut r = Rng64::new(21);
        let n = 1000;
        let mut low = 0usize;
        for _ in 0..10_000 {
            let v = r.zipf(n);
            assert!(v < n);
            if v < n / 10 {
                low += 1;
            }
        }
        // A power-law draw concentrates mass at small values.
        assert!(low > 5_000, "zipf should be head-heavy, got {low}");
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = Rng64::new(42);
        let mut child = parent.fork();
        assert_ne!(parent.next_u64(), child.next_u64());
    }
}
