//! Strongly-typed virtual and physical addresses.
//!
//! L1D prefetchers operate on **virtual** addresses (the L1D is VIPT), while
//! lower-level caches and the pUB training buffer operate on **physical**
//! addresses. Mixing the two silently is the classic source of bugs in
//! prefetch-filter implementations, so the two spaces are distinct newtypes
//! with no implicit conversion; translation happens only through the MMU
//! model in `pagecross-mem`.

use std::fmt;

/// Log2 of the cache line size (64 B lines).
pub const LINE_SHIFT: u32 = 6;
/// Cache line size in bytes.
pub const LINE_SIZE: u64 = 1 << LINE_SHIFT;
/// Log2 of the base page size (4 KB).
pub const PAGE_SHIFT_4K: u32 = 12;
/// Base page size in bytes.
pub const PAGE_SIZE_4K: u64 = 1 << PAGE_SHIFT_4K;
/// Log2 of the large page size (2 MB).
pub const HUGE_PAGE_SHIFT_2M: u32 = 21;
/// Large page size in bytes.
pub const HUGE_PAGE_SIZE_2M: u64 = 1 << HUGE_PAGE_SHIFT_2M;

macro_rules! addr_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw 64-bit address.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw 64-bit address.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// The cache-line-aligned address (byte address of the line base).
            #[inline]
            pub const fn line_base(self) -> Self {
                Self(self.0 & !(LINE_SIZE - 1))
            }

            /// The cache line number (address >> 6).
            #[inline]
            pub const fn line(self) -> LineAddr {
                LineAddr(self.0 >> LINE_SHIFT)
            }

            /// The 4 KB page number (address >> 12).
            #[inline]
            pub const fn page_4k(self) -> PageNum {
                PageNum(self.0 >> PAGE_SHIFT_4K)
            }

            /// The 2 MB page number (address >> 21).
            #[inline]
            pub const fn page_2m(self) -> PageNum {
                PageNum(self.0 >> HUGE_PAGE_SHIFT_2M)
            }

            /// Byte offset within the 4 KB page.
            #[inline]
            pub const fn page_offset_4k(self) -> u64 {
                self.0 & (PAGE_SIZE_4K - 1)
            }

            /// Cache-line index within the 4 KB page (0..64).
            #[inline]
            pub const fn line_offset_in_page(self) -> u64 {
                (self.0 & (PAGE_SIZE_4K - 1)) >> LINE_SHIFT
            }

            /// Adds a signed byte delta, saturating at the address-space edges.
            #[inline]
            pub fn offset(self, delta: i64) -> Self {
                Self(self.0.wrapping_add_signed(delta))
            }

            /// True when `self` and `other` lie on different 4 KB pages.
            #[inline]
            pub const fn crosses_4k(self, other: Self) -> bool {
                self.page_4k().0 != other.page_4k().0
            }

            /// True when `self` and `other` lie on different 2 MB pages.
            #[inline]
            pub const fn crosses_2m(self, other: Self) -> bool {
                self.page_2m().0 != other.page_2m().0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({:#x})", stringify!($name), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }
    };
}

addr_newtype!(
    /// A virtual byte address. Prefetchers, vUB entries and program features
    /// all operate in this space.
    VirtAddr
);
addr_newtype!(
    /// A physical byte address. Cache tags below L1 and pUB entries operate
    /// in this space; it can only be produced by the MMU.
    PhysAddr
);

/// A cache line number (byte address >> 6) without an address-space tag.
///
/// Used as a compact key inside single-address-space structures (e.g. a
/// cache indexed by physical line, or the vUB indexed by virtual line).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Returns the line number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs the byte address of the line base.
    #[inline]
    pub const fn byte_base(self) -> u64 {
        self.0 << LINE_SHIFT
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

/// A page number (4 KB or 2 MB granularity depending on provenance).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageNum(pub u64);

impl PageNum {
    /// Returns the page number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for PageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageNum({:#x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_base_alignment() {
        let a = VirtAddr::new(0x1234);
        assert_eq!(a.line_base().raw(), 0x1200);
        assert_eq!(a.line().raw(), 0x1234 >> 6);
    }

    #[test]
    fn page_projections() {
        let a = VirtAddr::new(0x0020_3456);
        assert_eq!(a.page_4k().raw(), 0x203);
        assert_eq!(a.page_2m().raw(), 0x1);
        assert_eq!(a.page_offset_4k(), 0x456);
    }

    #[test]
    fn crossing_detection_4k() {
        let last_line = VirtAddr::new(PAGE_SIZE_4K - LINE_SIZE);
        let next = last_line.offset(LINE_SIZE as i64);
        assert!(last_line.crosses_4k(next));
        assert!(!last_line.crosses_4k(VirtAddr::new(0)));
    }

    #[test]
    fn crossing_detection_2m() {
        let a = VirtAddr::new(HUGE_PAGE_SIZE_2M - 64);
        let b = a.offset(64);
        assert!(a.crosses_2m(b));
        // Crossing a 4 KB boundary inside the same 2 MB page.
        let c = VirtAddr::new(PAGE_SIZE_4K - 64);
        let d = c.offset(64);
        assert!(c.crosses_4k(d));
        assert!(!c.crosses_2m(d));
    }

    #[test]
    fn negative_offsets() {
        let a = VirtAddr::new(0x2000);
        assert_eq!(a.offset(-64).raw(), 0x2000 - 64);
        assert!(a.crosses_4k(a.offset(-64)));
    }

    #[test]
    fn line_offset_in_page_range() {
        for off in (0..PAGE_SIZE_4K).step_by(64) {
            let a = VirtAddr::new(0x7000_0000 + off);
            assert!(a.line_offset_in_page() < 64);
        }
    }

    #[test]
    fn spaces_are_distinct_types() {
        fn takes_virt(_: VirtAddr) {}
        takes_virt(VirtAddr::new(1));
        // PhysAddr deliberately does not coerce; this is a compile-time
        // property, witnessed here by constructing both independently.
        let p = PhysAddr::new(1);
        assert_eq!(p.raw(), 1);
    }

    #[test]
    fn display_and_debug_nonempty() {
        let a = VirtAddr::new(0);
        assert!(!format!("{a}").is_empty());
        assert!(!format!("{a:?}").is_empty());
        assert_eq!(format!("{:x}", VirtAddr::new(0xabc)), "abc");
    }

    #[test]
    fn line_addr_roundtrip() {
        let a = PhysAddr::new(0xdead_beef);
        assert_eq!(a.line().byte_base(), a.line_base().raw());
    }
}
