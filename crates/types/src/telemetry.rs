//! Telemetry vocabulary shared across the simulator: stall-cycle
//! attribution, interval counter snapshots, structured trace events, and
//! live policy internals.
//!
//! These are plain data types with no collection/emission machinery — the
//! sampler, ring buffer and exporters live in the `pagecross-telemetry`
//! crate. Keeping the vocabulary here lets the memory system, the filter
//! crate and the CPU model exchange telemetry without new dependency edges.

/// Why an issue slot was lost (top-down cycle accounting).
///
/// Every cycle the core fails to dispatch at full `issue_width` loses
/// slots; each lost slot is charged to exactly one cause. The taxonomy
/// follows the engine's stall points: the ROB-full wait is sub-attributed
/// by what the blocking head instruction was waiting on (a TLB walk takes
/// precedence over a plain L1D miss), front-end jumps split into
/// branch-redirect bubbles and fetch starvation, and the slots between the
/// last dispatch and the last completion are the pipeline drain tail.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum StallCause {
    /// ROB full, head waiting on a non-memory (or unclassified) completion.
    RobFull,
    /// ROB full, head is a load that missed in L1D (no page walk).
    L1dMiss,
    /// ROB full, head is a load whose translation required a page walk.
    TlbWalk,
    /// Front-end bubble injected by a branch misprediction redirect.
    BranchRedirect,
    /// Front-end waiting on instruction fetch (L1I miss exposure).
    FetchStarved,
    /// OS memory-management work on the access path: page-fault handling
    /// (minor or major), frame reclamation, THP migration, and TLB
    /// shootdown IPIs charged to the faulting/receiving core.
    OsFault,
    /// Tail slots between the final dispatch and the last completion.
    Drain,
}

impl StallCause {
    /// Every cause, in reporting order.
    pub const ALL: [StallCause; 7] = [
        StallCause::RobFull,
        StallCause::L1dMiss,
        StallCause::TlbWalk,
        StallCause::BranchRedirect,
        StallCause::FetchStarved,
        StallCause::OsFault,
        StallCause::Drain,
    ];

    /// Stable label (reports, JSONL keys).
    pub fn label(self) -> &'static str {
        match self {
            StallCause::RobFull => "rob_full",
            StallCause::L1dMiss => "l1d_miss",
            StallCause::TlbWalk => "tlb_walk",
            StallCause::BranchRedirect => "branch_redirect",
            StallCause::FetchStarved => "fetch_starved",
            StallCause::OsFault => "os_fault",
            StallCause::Drain => "drain",
        }
    }
}

/// Per-cause lost issue slots, plus the warm-up boundary carry.
///
/// # Accounting invariant
///
/// For any measured run that retires at least one instruction:
///
/// ```text
/// instructions + total_stalls + warmup_carry == cycles * issue_width
/// ```
///
/// where `warmup_carry` is the number of issue slots of the boundary cycle
/// that were consumed by warm-up instructions (measurement starts mid-cycle
/// when warm-up ends partway through an issue group), and `total_stalls`
/// includes the drain tail. The engine charges every cycle jump exactly
/// `(jump_length × issue_width) − slots_already_used`, so the identity is
/// exact, not approximate; `tests/telemetry.rs` asserts it per workload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Slots lost to ROB-full waits on unclassified completions.
    pub rob_full: u64,
    /// Slots lost to ROB-full waits on L1D-missing loads.
    pub l1d_miss: u64,
    /// Slots lost to ROB-full waits on loads that took a page walk.
    pub tlb_walk: u64,
    /// Slots lost to branch-misprediction redirect bubbles.
    pub branch_redirect: u64,
    /// Slots lost waiting on instruction fetch.
    pub fetch_starved: u64,
    /// Slots lost to OS memory-management work (faults, reclaim,
    /// THP migration, shootdown IPIs).
    pub os_fault: u64,
    /// Slots in the drain tail after the last dispatch.
    pub drain: u64,
    /// Boundary-cycle slots consumed by warm-up instructions.
    pub warmup_carry: u64,
}

impl StallBreakdown {
    /// Adds `slots` to the counter for `cause`.
    pub fn charge(&mut self, cause: StallCause, slots: u64) {
        match cause {
            StallCause::RobFull => self.rob_full += slots,
            StallCause::L1dMiss => self.l1d_miss += slots,
            StallCause::TlbWalk => self.tlb_walk += slots,
            StallCause::BranchRedirect => self.branch_redirect += slots,
            StallCause::FetchStarved => self.fetch_starved += slots,
            StallCause::OsFault => self.os_fault += slots,
            StallCause::Drain => self.drain += slots,
        }
    }

    /// The counter for `cause`.
    pub fn get(&self, cause: StallCause) -> u64 {
        match cause {
            StallCause::RobFull => self.rob_full,
            StallCause::L1dMiss => self.l1d_miss,
            StallCause::TlbWalk => self.tlb_walk,
            StallCause::BranchRedirect => self.branch_redirect,
            StallCause::FetchStarved => self.fetch_starved,
            StallCause::OsFault => self.os_fault,
            StallCause::Drain => self.drain,
        }
    }

    /// Total lost slots across every cause (excluding the warm-up carry,
    /// which is not a measured-run loss).
    pub fn total(&self) -> u64 {
        StallCause::ALL.iter().map(|&c| self.get(c)).sum()
    }

    /// Left-hand side of the accounting invariant:
    /// `instructions + total() + warmup_carry`.
    pub fn accounted_slots(&self, instructions: u64) -> u64 {
        instructions + self.total() + self.warmup_carry
    }

    /// Checks the accounting invariant against a cycle count and width.
    pub fn balances(&self, instructions: u64, cycles: u64, issue_width: u32) -> bool {
        self.accounted_slots(instructions) == cycles * issue_width as u64
    }

    /// `(label, slots)` pairs in reporting order.
    pub fn entries(&self) -> [(&'static str, u64); 7] {
        let mut out = [("", 0u64); 7];
        for (slot, cause) in out.iter_mut().zip(StallCause::ALL) {
            *slot = (cause.label(), self.get(cause));
        }
        out
    }
}

/// Expands a macro over every interval-sampled counter field name.
macro_rules! for_each_telemetry_counter {
    ($m:ident) => {
        $m!(
            instructions,
            cycles,
            l1d_accesses,
            l1d_misses,
            l1i_misses,
            l2c_misses,
            llc_accesses,
            llc_misses,
            dtlb_misses,
            stlb_misses,
            demand_walks,
            prefetch_walks,
            candidates,
            pgc_candidates,
            pgc_issued,
            pgc_discarded,
            inpage_issued,
            prefetch_useful,
            prefetch_useless,
            pgc_useful,
            pgc_useless,
            branch_mispredicts,
            os_minor_faults,
            os_major_faults,
            os_reclaims,
            os_promotions,
            os_shootdowns
        );
    };
}

macro_rules! define_telemetry_counters {
    ($($field:ident),+) => {
        /// Cumulative counters captured for interval sampling.
        ///
        /// All fields count from the start of the measured phase; the
        /// sampler diffs consecutive captures to produce per-interval
        /// deltas. Cumulative captures are monotone non-decreasing, so
        /// every delta is non-negative and the deltas telescope: their sum
        /// over all emitted intervals equals the final cumulative capture,
        /// which is what reconciles the JSONL stream against the run's
        /// final `Report`.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct TelemetryCounters {
            $(
                /// Cumulative counter (see struct docs).
                pub $field: u64,
            )+
        }

        impl TelemetryCounters {
            /// Number of sampled counter fields.
            pub const NUM_FIELDS: usize = [$(stringify!($field)),+].len();

            /// Field names in declaration order (JSONL `d_*` key order).
            pub const FIELD_NAMES: [&'static str; Self::NUM_FIELDS] =
                [$(stringify!($field)),+];

            /// Per-field difference `self - base` (saturating, though
            /// captures taken in order never go backwards).
            pub fn delta(&self, base: &Self) -> Self {
                Self {
                    $($field: self.$field.saturating_sub(base.$field),)+
                }
            }

            /// `(name, value)` pairs in declaration order.
            pub fn entries(&self) -> [(&'static str, u64); Self::NUM_FIELDS] {
                [$((stringify!($field), self.$field)),+]
            }

            /// Adds `value` to the field called `name`; `false` when no
            /// such field exists (used by the JSONL validator to re-sum
            /// deltas without a serde dependency).
            pub fn add_named(&mut self, name: &str, value: u64) -> bool {
                match name {
                    $(stringify!($field) => { self.$field += value; true })+
                    _ => false,
                }
            }

            /// Accumulates another capture field-wise.
            pub fn accumulate(&mut self, other: &Self) {
                $(self.$field += other.$field;)+
            }
        }
    };
}

for_each_telemetry_counter!(define_telemetry_counters);

/// Live internals of a filter-backed page-cross policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PolicyTelemetry {
    /// Activation threshold currently in force.
    pub threshold: i32,
    /// Fraction of perceptron weights at either saturation bound.
    pub weight_saturation: f64,
    /// Cumulative filter decisions.
    pub decisions: u64,
    /// Cumulative issues.
    pub issued: u64,
    /// Cumulative discards.
    pub discarded: u64,
}

/// One closed sampling interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IntervalRecord {
    /// Interval index (0-based, dense).
    pub seq: u64,
    /// Cumulative retired instructions at the end of the interval.
    pub end_instructions: u64,
    /// Cumulative elapsed cycles at the end of the interval.
    pub end_cycles: u64,
    /// Counter deltas over the interval.
    pub delta: TelemetryCounters,
    /// Policy internals at the sample point (`None` for static policies).
    pub policy: Option<PolicyTelemetry>,
}

impl IntervalRecord {
    /// Interval IPC (0 when the interval spans no cycles).
    pub fn ipc(&self) -> f64 {
        if self.delta.cycles == 0 {
            0.0
        } else {
            self.delta.instructions as f64 / self.delta.cycles as f64
        }
    }
}

/// A structured simulator event (ring-buffered, exportable as a Chrome
/// trace). Only L1D-data-path fills/evictions are traced; L1I/L2C/walker
/// fills are not (they are not what the paper's mechanisms act on).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A block was filled into L1D.
    Fill {
        /// Physical line address.
        line: u64,
        /// Fill came from a prefetch (demand otherwise).
        prefetch: bool,
        /// Prefetch fill crossed a page boundary (PCB set).
        page_cross: bool,
    },
    /// A block was evicted from L1D.
    Evict {
        /// Physical line address.
        line: u64,
        /// The block carried the Page-Cross Bit.
        pcb: bool,
        /// The block was dirty (writeback).
        dirty: bool,
        /// The block served at least one demand hit.
        served_hits: bool,
    },
    /// A page walk completed.
    Walk {
        /// 4 KB virtual page number walked.
        va_page: u64,
        /// Walk latency in cycles.
        latency: u64,
        /// Memory references the walker issued.
        refs: u32,
        /// Levels skipped via page-structure caches.
        psc_skipped: u32,
        /// Speculative (prefetch-triggered) walk.
        speculative: bool,
    },
    /// A page-cross policy decision.
    Decision {
        /// Triggering load PC.
        pc: u64,
        /// Prefetch target virtual address.
        target_va: u64,
        /// The candidate was issued (discarded otherwise).
        issued: bool,
        /// Activation threshold at decision time (filter policies only).
        threshold: Option<i32>,
    },
    /// An OS memory-management event (only emitted with the OS layer on).
    Os {
        /// What the OS did.
        op: OsOp,
        /// The 4 KB virtual page (faults/reclaims) or the first 4 KB page
        /// of the 2 MB region (promotions/demotions/region shootdowns).
        va_page: u64,
        /// Handler cycles charged to the triggering core.
        cycles: u64,
    },
}

/// The OS memory-management operations the event ring distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OsOp {
    /// First touch of a never-mapped page.
    MinorFault,
    /// Touch of a page evicted by reclamation (swap-in).
    MajorFault,
    /// CLOCK reclaim of a resident frame.
    Reclaim,
    /// THP daemon promoted an aligned 2 MB region.
    Promote,
    /// THP daemon split a 2 MB region back to 4 KB pages.
    Demote,
    /// TLB shootdown broadcast.
    Shootdown,
}

impl OsOp {
    /// Stable label for exporters.
    pub fn label(self) -> &'static str {
        match self {
            OsOp::MinorFault => "minor_fault",
            OsOp::MajorFault => "major_fault",
            OsOp::Reclaim => "reclaim",
            OsOp::Promote => "promote",
            OsOp::Demote => "demote",
            OsOp::Shootdown => "shootdown",
        }
    }
}

/// Registry of event kinds (stable labels for exporters and tools).
pub const EVENT_KINDS: [&str; 5] = ["fill", "evict", "walk", "decision", "os"];

impl TraceEvent {
    /// Stable kind label (an entry of [`EVENT_KINDS`]).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Fill { .. } => EVENT_KINDS[0],
            TraceEvent::Evict { .. } => EVENT_KINDS[1],
            TraceEvent::Walk { .. } => EVENT_KINDS[2],
            TraceEvent::Decision { .. } => EVENT_KINDS[3],
            TraceEvent::Os { .. } => EVENT_KINDS[4],
        }
    }
}

/// A trace event stamped with its cycle and core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimedEvent {
    /// Cycle the event occurred (simulated time).
    pub cycle: u64,
    /// Core that produced the event.
    pub core: u32,
    /// The event payload.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_charges_accumulate_per_cause() {
        let mut s = StallBreakdown::default();
        s.charge(StallCause::RobFull, 10);
        s.charge(StallCause::TlbWalk, 5);
        s.charge(StallCause::TlbWalk, 5);
        assert_eq!(s.get(StallCause::RobFull), 10);
        assert_eq!(s.get(StallCause::TlbWalk), 10);
        assert_eq!(s.total(), 20);
    }

    #[test]
    fn invariant_check_counts_carry() {
        let mut s = StallBreakdown {
            warmup_carry: 2,
            ..Default::default()
        };
        s.charge(StallCause::Drain, 4);
        // 6 instructions + 4 drain + 2 carry = 12 = 2 cycles * 6 wide.
        assert!(s.balances(6, 2, 6));
        assert!(!s.balances(6, 3, 6));
        assert_eq!(s.accounted_slots(6), 12);
    }

    #[test]
    fn entries_cover_every_cause() {
        let s = StallBreakdown::default();
        let labels: Vec<&str> = s.entries().iter().map(|(l, _)| *l).collect();
        assert_eq!(labels.len(), StallCause::ALL.len());
        for c in StallCause::ALL {
            assert!(labels.contains(&c.label()), "missing {}", c.label());
        }
    }

    #[test]
    fn counter_delta_and_entries_agree() {
        let mut a = TelemetryCounters::default();
        a.instructions = 100;
        a.l1d_misses = 7;
        let mut b = a;
        b.instructions = 160;
        b.l1d_misses = 9;
        let d = b.delta(&a);
        assert_eq!(d.instructions, 60);
        assert_eq!(d.l1d_misses, 2);
        assert_eq!(d.cycles, 0);
        let names: Vec<&str> = d.entries().iter().map(|(n, _)| *n).collect();
        assert_eq!(names.as_slice(), TelemetryCounters::FIELD_NAMES);
    }

    #[test]
    fn add_named_round_trips_every_field() {
        let mut sum = TelemetryCounters::default();
        for name in TelemetryCounters::FIELD_NAMES {
            assert!(sum.add_named(name, 3), "unknown field {name}");
        }
        assert!(!sum.add_named("not_a_field", 1));
        for (_, v) in sum.entries() {
            assert_eq!(v, 3);
        }
    }

    #[test]
    fn interval_ipc_guards_zero_cycles() {
        let r = IntervalRecord {
            seq: 0,
            end_instructions: 0,
            end_cycles: 0,
            delta: TelemetryCounters::default(),
            policy: None,
        };
        assert_eq!(r.ipc(), 0.0);
    }

    #[test]
    fn event_kinds_are_registered() {
        let e = TraceEvent::Walk {
            va_page: 1,
            latency: 10,
            refs: 5,
            psc_skipped: 0,
            speculative: false,
        };
        assert!(EVENT_KINDS.contains(&e.kind()));
        assert_eq!(e.kind(), "walk");
    }
}
