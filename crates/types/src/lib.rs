//! Shared foundation types for the `pagecross` simulator workspace.
//!
//! This crate defines the vocabulary used by every other crate in the
//! reproduction of *"To Cross, or Not to Cross Pages for Prefetching?"*
//! (HPCA 2025):
//!
//! * strongly-typed addresses ([`VirtAddr`], [`PhysAddr`], page/line
//!   projections) so virtual and physical address spaces can never be
//!   confused — the paper's entire premise rests on the distinction;
//! * [`SatCounter`], the signed saturating counter used to implement
//!   perceptron weights and system-feature weights;
//! * [`Rng64`], a tiny deterministic PRNG so simulations are reproducible
//!   bit-for-bit across runs;
//! * prefetch request/decision types shared between the prefetcher crate,
//!   the MOKA filter crate and the CPU model;
//! * [`SystemSnapshot`], the bundle of runtime statistics (MPKIs, miss
//!   rates, ROB pressure, …) that MOKA's system features and adaptive
//!   thresholding consume.
//!
//! # Example
//!
//! ```
//! use pagecross_types::{VirtAddr, PAGE_SHIFT_4K};
//!
//! let a = VirtAddr::new(0x1000 - 64);
//! let b = VirtAddr::new(0x1000);
//! assert!(a.page_4k() != b.page_4k(), "the two lines sit on different 4KB pages");
//! assert_eq!(b.raw() >> PAGE_SHIFT_4K, b.page_4k().raw());
//! ```

pub mod addr;
pub mod counter;
pub mod prop;
pub mod request;
pub mod rng;
pub mod snapshot;
pub mod stats;
pub mod telemetry;

pub use addr::{
    LineAddr, PageNum, PhysAddr, VirtAddr, HUGE_PAGE_SHIFT_2M, HUGE_PAGE_SIZE_2M, LINE_SHIFT,
    LINE_SIZE, PAGE_SHIFT_4K, PAGE_SIZE_4K,
};
pub use counter::SatCounter;
pub use request::{AccessKind, Decision, PageSize, PrefetchCandidate, TranslationOutcome};
pub use rng::Rng64;
pub use snapshot::{SystemSnapshot, WindowCounters};
pub use stats::{geomean, CacheStats, CoreStats, OsStats, PrefetchStats, TlbStats, WalkStats};
pub use telemetry::{
    IntervalRecord, OsOp, PolicyTelemetry, StallBreakdown, StallCause, TelemetryCounters,
    TimedEvent, TraceEvent,
};
