//! Prefetch request and decision types shared across crates.

use crate::addr::VirtAddr;

/// The kind of a memory access as seen by the L1D and its prefetcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A demand load issued by the core.
    Load,
    /// A demand store issued by the core.
    Store,
    /// A prefetch issued by the L1D prefetcher.
    Prefetch,
    /// A page-table-walker reference.
    Walk,
    /// An instruction fetch (L1I side).
    Fetch,
}

impl AccessKind {
    /// True for demand loads/stores (the accesses that train prefetchers and
    /// count toward demand MPKI).
    #[inline]
    pub const fn is_demand_data(self) -> bool {
        matches!(self, AccessKind::Load | AccessKind::Store)
    }
}

/// Page size of a mapping, as tracked by the virtual-memory model and TLBs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum PageSize {
    /// 4 KB base page.
    #[default]
    Base4K,
    /// 2 MB large page.
    Huge2M,
}

impl PageSize {
    /// Page size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Base4K => crate::addr::PAGE_SIZE_4K,
            PageSize::Huge2M => crate::addr::HUGE_PAGE_SIZE_2M,
        }
    }

    /// Log2 of the page size.
    #[inline]
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Base4K => crate::addr::PAGE_SHIFT_4K,
            PageSize::Huge2M => crate::addr::HUGE_PAGE_SHIFT_2M,
        }
    }
}

/// A prefetch candidate produced by an L1D prefetcher, before any
/// page-cross filtering or translation.
///
/// The candidate carries everything MOKA's program features need
/// (paper Table I): the triggering PC and virtual address, the target
/// virtual address, and the signed line delta the prefetcher applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefetchCandidate {
    /// Program counter of the load that triggered the prefetch.
    pub pc: u64,
    /// Virtual address of the triggering demand access.
    pub trigger: VirtAddr,
    /// Virtual address the prefetcher wants to fetch.
    pub target: VirtAddr,
    /// Signed delta in cache lines from trigger to target.
    pub delta: i64,
    /// True when the triggering access was the first touch to its 4 KB page
    /// (the `FirstPageAccess` program feature input).
    pub first_page_access: bool,
}

impl PrefetchCandidate {
    /// True when the target lies on a different 4 KB page than the trigger —
    /// the paper's definition of a page-cross prefetch (Fig. 1).
    #[inline]
    pub fn crosses_page_4k(&self) -> bool {
        self.trigger.crosses_4k(self.target)
    }

    /// True when the target lies on a different 2 MB page than the trigger;
    /// used by the `DRIPPER(filter@2MB)` variant of §V-B6.
    #[inline]
    pub fn crosses_page_2m(&self) -> bool {
        self.trigger.crosses_2m(self.target)
    }
}

/// The verdict of a page-cross filter for one candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Decision {
    /// Issue the prefetch (it will go through the TLB and possibly trigger a
    /// speculative page walk).
    Issue,
    /// Discard the prefetch. Discarded candidates are remembered in the vUB
    /// so that false negatives can still train the filter.
    Discard,
}

impl Decision {
    /// True for [`Decision::Issue`].
    #[inline]
    pub const fn is_issue(self) -> bool {
        matches!(self, Decision::Issue)
    }
}

/// Outcome of translating a prefetch target through the TLB hierarchy,
/// reported back to policies such as `Discard PTW` (§V-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TranslationOutcome {
    /// Translation present in the first-level TLB.
    DtlbHit,
    /// Translation present in the last-level TLB.
    StlbHit,
    /// Translation absent from the TLB hierarchy; serving it requires a
    /// (speculative, for prefetches) page walk.
    RequiresWalk,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{HUGE_PAGE_SIZE_2M, PAGE_SIZE_4K};

    fn cand(trigger: u64, target: u64) -> PrefetchCandidate {
        PrefetchCandidate {
            pc: 0x400000,
            trigger: VirtAddr::new(trigger),
            target: VirtAddr::new(target),
            delta: ((target as i64) - (trigger as i64)) >> 6,
            first_page_access: false,
        }
    }

    #[test]
    fn in_page_candidate_does_not_cross() {
        let c = cand(0x1000, 0x1040);
        assert!(!c.crosses_page_4k());
        assert!(!c.crosses_page_2m());
    }

    #[test]
    fn page_cross_candidate_detected() {
        let c = cand(PAGE_SIZE_4K - 64, PAGE_SIZE_4K);
        assert!(c.crosses_page_4k());
        assert!(!c.crosses_page_2m());
    }

    #[test]
    fn huge_page_cross_detected() {
        let c = cand(HUGE_PAGE_SIZE_2M - 64, HUGE_PAGE_SIZE_2M);
        assert!(c.crosses_page_4k());
        assert!(c.crosses_page_2m());
    }

    #[test]
    fn backward_cross_detected() {
        let c = cand(PAGE_SIZE_4K, PAGE_SIZE_4K - 64);
        assert!(c.crosses_page_4k());
        assert!(c.delta < 0);
    }

    #[test]
    fn page_size_constants() {
        assert_eq!(PageSize::Base4K.bytes(), 4096);
        assert_eq!(PageSize::Huge2M.bytes(), 2 * 1024 * 1024);
        assert_eq!(PageSize::Base4K.shift(), 12);
        assert_eq!(PageSize::Huge2M.shift(), 21);
    }

    #[test]
    fn access_kind_demand_classification() {
        assert!(AccessKind::Load.is_demand_data());
        assert!(AccessKind::Store.is_demand_data());
        assert!(!AccessKind::Prefetch.is_demand_data());
        assert!(!AccessKind::Walk.is_demand_data());
        assert!(!AccessKind::Fetch.is_demand_data());
    }

    #[test]
    fn decision_predicate() {
        assert!(Decision::Issue.is_issue());
        assert!(!Decision::Discard.is_issue());
    }
}
