//! Runtime system-state snapshots consumed by MOKA.
//!
//! The paper's system features (§III-D2) and adaptive thresholding scheme
//! (§III-C3) both make decisions from *windowed* runtime statistics —
//! MPKIs, miss rates, IPC, ROB pressure, in-flight misses. The CPU model
//! produces a [`SystemSnapshot`] over a sliding window and hands it to the
//! filter at decision time and at epoch boundaries.

/// A windowed summary of the system state, in the units the paper uses.
///
/// All `*_mpki` fields are misses per kilo-instruction over the window; all
/// `*_miss_rate` fields are misses/accesses in `[0, 1]`. `ipc` is the
/// window's retired-instructions/cycles. Page-cross prefetch counts are
/// cumulative within the current epoch.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SystemSnapshot {
    /// L1D demand misses per kilo-instruction.
    pub l1d_mpki: f64,
    /// L1D demand miss rate.
    pub l1d_miss_rate: f64,
    /// LLC demand misses per kilo-instruction.
    pub llc_mpki: f64,
    /// LLC demand miss rate.
    pub llc_miss_rate: f64,
    /// Last-level TLB misses per kilo-instruction.
    pub stlb_mpki: f64,
    /// Last-level TLB miss rate.
    pub stlb_miss_rate: f64,
    /// L1I misses per kilo-instruction (adaptive thresholding input).
    pub l1i_mpki: f64,
    /// Window IPC.
    pub ipc: f64,
    /// ROB occupancy fraction in `[0, 1]`.
    pub rob_occupancy: f64,
    /// Number of in-flight L1D misses (MSHR occupancy).
    pub inflight_l1d_misses: u32,
    /// Useful page-cross prefetches observed this epoch.
    pub pgc_useful: u64,
    /// Useless page-cross prefetches observed this epoch.
    pub pgc_useless: u64,
}

impl SystemSnapshot {
    /// Accuracy of page-cross prefetching this epoch: useful / issued.
    /// Returns 1.0 when nothing has been issued yet (optimistic start, so
    /// the filter is not throttled before any evidence exists).
    pub fn pgc_accuracy(&self) -> f64 {
        let total = self.pgc_useful + self.pgc_useless;
        if total == 0 {
            1.0
        } else {
            self.pgc_useful as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_with_no_issues_is_optimistic() {
        let s = SystemSnapshot::default();
        assert_eq!(s.pgc_accuracy(), 1.0);
    }

    #[test]
    fn accuracy_ratio() {
        let s = SystemSnapshot {
            pgc_useful: 30,
            pgc_useless: 10,
            ..Default::default()
        };
        assert!((s.pgc_accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn accuracy_all_useless() {
        let s = SystemSnapshot {
            pgc_useful: 0,
            pgc_useless: 5,
            ..Default::default()
        };
        assert_eq!(s.pgc_accuracy(), 0.0);
    }
}
