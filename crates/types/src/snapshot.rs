//! Runtime system-state snapshots consumed by MOKA.
//!
//! The paper's system features (§III-D2) and adaptive thresholding scheme
//! (§III-C3) both make decisions from *windowed* runtime statistics —
//! MPKIs, miss rates, IPC, ROB pressure, in-flight misses. The CPU model
//! produces a [`SystemSnapshot`] over a sliding window and hands it to the
//! filter at decision time and at epoch boundaries.

/// Cumulative counters captured at a window boundary.
///
/// The CPU model captures one of these at every epoch boundary and diffs
/// consecutive captures to produce a windowed [`SystemSnapshot`] — MPKIs
/// and miss rates over the window, not since the start of the run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowCounters {
    /// Retired instructions.
    pub instructions: u64,
    /// Elapsed cycles.
    pub cycles: u64,
    /// L1D demand accesses.
    pub l1d_acc: u64,
    /// L1D demand misses.
    pub l1d_miss: u64,
    /// L1I demand misses.
    pub l1i_miss: u64,
    /// LLC demand accesses.
    pub llc_acc: u64,
    /// LLC demand misses.
    pub llc_miss: u64,
    /// STLB accesses.
    pub stlb_acc: u64,
    /// STLB misses.
    pub stlb_miss: u64,
    /// Useful page-cross prefetches.
    pub pgc_useful: u64,
    /// Useless page-cross prefetches.
    pub pgc_useless: u64,
    /// OS page faults (minor + major) serviced for this core.
    pub os_faults: u64,
    /// Frames reclaimed by the OS CLOCK sweep for this core's faults.
    pub os_reclaims: u64,
    /// 2 MB regions the THP daemon promoted on this core's touches.
    pub os_promotions: u64,
    /// TLB shootdown broadcasts triggered by this core.
    pub os_shootdowns: u64,
}

/// A windowed summary of the system state, in the units the paper uses.
///
/// All `*_mpki` fields are misses per kilo-instruction over the window; all
/// `*_miss_rate` fields are misses/accesses in `[0, 1]`. `ipc` is the
/// window's retired-instructions/cycles. Page-cross prefetch counts are
/// cumulative within the current epoch.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SystemSnapshot {
    /// L1D demand misses per kilo-instruction.
    pub l1d_mpki: f64,
    /// L1D demand miss rate.
    pub l1d_miss_rate: f64,
    /// LLC demand misses per kilo-instruction.
    pub llc_mpki: f64,
    /// LLC demand miss rate.
    pub llc_miss_rate: f64,
    /// Last-level TLB misses per kilo-instruction.
    pub stlb_mpki: f64,
    /// Last-level TLB miss rate.
    pub stlb_miss_rate: f64,
    /// L1I misses per kilo-instruction (adaptive thresholding input).
    pub l1i_mpki: f64,
    /// Window IPC.
    pub ipc: f64,
    /// ROB occupancy fraction in `[0, 1]`.
    pub rob_occupancy: f64,
    /// Number of in-flight L1D misses (MSHR occupancy).
    pub inflight_l1d_misses: u32,
    /// Useful page-cross prefetches observed this epoch.
    pub pgc_useful: u64,
    /// Useless page-cross prefetches observed this epoch.
    pub pgc_useless: u64,
    /// OS page faults (minor + major) in the window (0 with the OS off).
    pub os_faults: u64,
    /// OS frame reclaims in the window.
    pub os_reclaims: u64,
    /// THP promotions in the window.
    pub os_promotions: u64,
    /// TLB shootdown broadcasts in the window.
    pub os_shootdowns: u64,
}

impl SystemSnapshot {
    /// Builds a windowed snapshot from two cumulative captures.
    ///
    /// `base` is the capture at the start of the window, `now` the capture
    /// at its end; `rob_occupancy` and `inflight_l1d_misses` are
    /// instantaneous values sampled at the window end. A window with zero
    /// retired instructions (or zero elapsed cycles) is clamped to one so
    /// the MPKI/IPC divisions stay finite.
    pub fn from_window(
        now: &WindowCounters,
        base: &WindowCounters,
        rob_occupancy: f64,
        inflight_l1d_misses: u32,
    ) -> SystemSnapshot {
        let b = base;
        let instrs = (now.instructions - b.instructions).max(1) as f64;
        let kilo = instrs / 1000.0;
        let rate = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        SystemSnapshot {
            l1d_mpki: (now.l1d_miss - b.l1d_miss) as f64 / kilo,
            l1d_miss_rate: rate(now.l1d_miss - b.l1d_miss, now.l1d_acc - b.l1d_acc),
            llc_mpki: (now.llc_miss - b.llc_miss) as f64 / kilo,
            llc_miss_rate: rate(now.llc_miss - b.llc_miss, now.llc_acc - b.llc_acc),
            stlb_mpki: (now.stlb_miss - b.stlb_miss) as f64 / kilo,
            stlb_miss_rate: rate(now.stlb_miss - b.stlb_miss, now.stlb_acc - b.stlb_acc),
            l1i_mpki: (now.l1i_miss - b.l1i_miss) as f64 / kilo,
            ipc: rate(
                now.instructions - b.instructions,
                (now.cycles - b.cycles).max(1),
            ),
            rob_occupancy,
            inflight_l1d_misses,
            pgc_useful: now.pgc_useful - b.pgc_useful,
            pgc_useless: now.pgc_useless - b.pgc_useless,
            os_faults: now.os_faults - b.os_faults,
            os_reclaims: now.os_reclaims - b.os_reclaims,
            os_promotions: now.os_promotions - b.os_promotions,
            os_shootdowns: now.os_shootdowns - b.os_shootdowns,
        }
    }

    /// Accuracy of page-cross prefetching this epoch: useful / issued.
    /// Returns 1.0 when nothing has been issued yet (optimistic start, so
    /// the filter is not throttled before any evidence exists).
    pub fn pgc_accuracy(&self) -> f64 {
        let total = self.pgc_useful + self.pgc_useless;
        if total == 0 {
            1.0
        } else {
            self.pgc_useful as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_with_no_issues_is_optimistic() {
        let s = SystemSnapshot::default();
        assert_eq!(s.pgc_accuracy(), 1.0);
    }

    #[test]
    fn accuracy_ratio() {
        let s = SystemSnapshot {
            pgc_useful: 30,
            pgc_useless: 10,
            ..Default::default()
        };
        assert!((s.pgc_accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn accuracy_all_useless() {
        let s = SystemSnapshot {
            pgc_useful: 0,
            pgc_useless: 5,
            ..Default::default()
        };
        assert_eq!(s.pgc_accuracy(), 0.0);
    }

    /// Two consecutive windows over the same cumulative stream: each
    /// snapshot must reflect only its own window's deltas, not the
    /// cumulative totals.
    #[test]
    fn windowing_is_delta_based_across_consecutive_windows() {
        let w0 = WindowCounters::default();
        let w1 = WindowCounters {
            instructions: 2_000,
            cycles: 4_000,
            l1d_acc: 800,
            l1d_miss: 200,
            l1i_miss: 10,
            llc_acc: 150,
            llc_miss: 30,
            stlb_acc: 100,
            stlb_miss: 25,
            pgc_useful: 8,
            pgc_useless: 2,
            ..Default::default()
        };
        let w2 = WindowCounters {
            instructions: 4_000,
            cycles: 5_000,
            l1d_acc: 1_000,
            l1d_miss: 210,
            l1i_miss: 10,
            llc_acc: 170,
            llc_miss: 34,
            stlb_acc: 140,
            stlb_miss: 27,
            pgc_useful: 20,
            pgc_useless: 5,
            ..Default::default()
        };

        // First window: [w0, w1).
        let s1 = SystemSnapshot::from_window(&w1, &w0, 0.5, 3);
        assert!((s1.l1d_mpki - 100.0).abs() < 1e-12, "200 misses / 2 kI");
        assert!((s1.l1d_miss_rate - 0.25).abs() < 1e-12);
        assert!((s1.llc_mpki - 15.0).abs() < 1e-12);
        assert!((s1.llc_miss_rate - 0.2).abs() < 1e-12);
        assert!((s1.stlb_mpki - 12.5).abs() < 1e-12);
        assert!((s1.stlb_miss_rate - 0.25).abs() < 1e-12);
        assert!((s1.l1i_mpki - 5.0).abs() < 1e-12);
        assert!((s1.ipc - 0.5).abs() < 1e-12);
        assert_eq!(s1.rob_occupancy, 0.5);
        assert_eq!(s1.inflight_l1d_misses, 3);
        assert_eq!(s1.pgc_useful, 8);
        assert_eq!(s1.pgc_useless, 2);

        // Second window: [w1, w2) — deltas only, not cumulative values.
        let s2 = SystemSnapshot::from_window(&w2, &w1, 0.25, 1);
        assert!((s2.l1d_mpki - 5.0).abs() < 1e-12, "10 misses / 2 kI");
        assert!((s2.l1d_miss_rate - 0.05).abs() < 1e-12, "10 / 200 accesses");
        assert!((s2.llc_mpki - 2.0).abs() < 1e-12);
        assert!((s2.llc_miss_rate - 0.2).abs() < 1e-12);
        assert!((s2.stlb_mpki - 1.0).abs() < 1e-12);
        assert!((s2.stlb_miss_rate - 0.05).abs() < 1e-12);
        assert!((s2.l1i_mpki - 0.0).abs() < 1e-12);
        assert!((s2.ipc - 2.0).abs() < 1e-12);
        assert_eq!(s2.pgc_useful, 12);
        assert_eq!(s2.pgc_useless, 3);
    }

    /// A window in which nothing retired must stay finite: the instruction
    /// denominator clamps to 1, so MPKIs degrade to raw miss counts and
    /// IPC to 0.
    #[test]
    fn zero_retired_window_is_finite() {
        let base = WindowCounters {
            instructions: 1_000,
            cycles: 2_000,
            l1d_acc: 500,
            l1d_miss: 100,
            ..Default::default()
        };
        // Same instruction count, but misses still accrued (e.g. stalled
        // on outstanding requests across the boundary).
        let now = WindowCounters {
            instructions: 1_000,
            cycles: 2_000,
            l1d_acc: 504,
            l1d_miss: 103,
            ..Default::default()
        };
        let s = SystemSnapshot::from_window(&now, &base, 1.0, 7);
        assert!(s.l1d_mpki.is_finite());
        assert!(
            (s.l1d_mpki - 3_000.0).abs() < 1e-9,
            "3 misses / (1/1000) kI"
        );
        assert!((s.l1d_miss_rate - 0.75).abs() < 1e-12);
        assert_eq!(s.ipc, 0.0, "no instructions retired in the window");
        assert!(s.ipc.is_finite());
        assert_eq!(s.inflight_l1d_misses, 7);
    }
}
