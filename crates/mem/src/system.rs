//! The composed memory system: per-core private L1I/L1D/L2C + TLBs + walker,
//! and a shared LLC + DRAM, wired with the Table IV timing.
//!
//! Timing is modelled as a latency chain with MSHR merging: an access that
//! misses at a level starts the next level after this level's latency; a
//! second miss to an in-flight line merges into the outstanding MSHR entry.
//! Fills propagate back up the chain (fill-path inclusive, like ChampSim's
//! default), and L1D evictions are reported to the caller so the page-cross
//! filter's pUB training can observe useless-PCB evictions.

use crate::cache::{Cache, Eviction, FillKind};
use crate::config::MemConfig;
use crate::dram::Dram;
use crate::mshr::Mshr;
use crate::page_table::PageWalker;
use crate::tlb::{Tlb, Translation};
use crate::vmem::{FrameAllocator, HugePagePolicy, OomError, Vmem};
use pagecross_telemetry::EventRing;
use pagecross_types::{
    LineAddr, PageSize, PhysAddr, TraceEvent, TranslationOutcome, VirtAddr, WalkStats,
};

/// Traffic class of a request walking the hierarchy; decides which
/// statistics the request perturbs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Traffic {
    /// Demand load/store: counts demand accesses/misses at every level.
    Demand { is_store: bool },
    /// Instruction fetch: demand on the L1I/L2/LLC path.
    Fetch,
    /// Page-walk reference: occupies caches and bandwidth, no demand stats.
    Walk,
    /// L1D prefetch fill fetch: no demand stats below L1D.
    PrefetchL1 { page_cross: bool },
    /// L2C prefetch fill fetch.
    PrefetchL2,
}

/// Result of a demand data access.
#[derive(Clone, Copy, Debug)]
pub struct DemandDataResult {
    /// Cycle the data is available to the core.
    pub ready: u64,
    /// The access hit in L1D.
    pub l1d_hit: bool,
    /// The hit was the first demand hit on a prefetched block.
    pub first_hit_on_prefetch: bool,
    /// The hit block had its Page-Cross Bit set.
    pub hit_pcb: bool,
    /// Physical address of the access (for pUB-style training).
    pub paddr: PhysAddr,
    /// A block evicted from L1D by this access's fill, if any.
    pub l1d_eviction: Option<Eviction>,
    /// Translation was found in the dTLB.
    pub dtlb_hit: bool,
    /// Translation was found in the sTLB (when the dTLB missed).
    pub stlb_hit: bool,
    /// A page walk was required.
    pub walked: bool,
    /// The request reached the L2C (L1D miss); physical line + L2 hit flag,
    /// used to drive an optional L2C prefetcher.
    pub l2_access: Option<(PhysAddr, bool)>,
    /// Page size backing the accessed address.
    pub page_size: PageSize,
}

/// Result of attempting to issue an L1D prefetch.
#[derive(Clone, Copy, Debug)]
pub struct PrefetchIssueResult {
    /// The prefetch actually fetched a block into L1D.
    pub issued: bool,
    /// The target was already in L1D or in flight.
    pub redundant: bool,
    /// A speculative page walk was performed.
    pub walked: bool,
    /// TLB state encountered for the target page.
    pub translation: TranslationOutcome,
    /// Physical line fetched (when issued): pUB key.
    pub paddr: Option<PhysAddr>,
    /// Block evicted from L1D by the prefetch fill.
    pub l1d_eviction: Option<Eviction>,
}

/// Result of an instruction fetch.
#[derive(Clone, Copy, Debug)]
pub struct FetchResult {
    /// Cycle the fetch completes.
    pub ready: u64,
    /// Hit in L1I.
    pub l1i_hit: bool,
}

/// Per-core private memory structures.
#[derive(Clone, Debug)]
pub struct CoreMem {
    /// First-level instruction cache.
    pub l1i: Cache,
    /// First-level data cache (VIPT; the prefetchers' home).
    pub l1d: Cache,
    /// Private second-level cache.
    pub l2c: Cache,
    /// First-level data TLB.
    pub dtlb: Tlb,
    /// First-level instruction TLB.
    pub itlb: Tlb,
    /// Last-level (second-level) TLB.
    pub stlb: Tlb,
    /// Page-table walker with split PSCs.
    pub walker: PageWalker,
    /// This core's address space.
    pub vmem: Vmem,
    /// Walker statistics.
    pub walk_stats: WalkStats,
    mshr_l1i: Mshr,
    mshr_l1d: Mshr,
    mshr_l2c: Mshr,
}

/// The full memory system for `n` cores.
#[derive(Clone, Debug)]
pub struct MemorySystem {
    cfg: MemConfig,
    cores: Vec<CoreMem>,
    /// Shared last-level cache.
    pub llc: Cache,
    llc_mshr: Mshr,
    /// DRAM device.
    pub dram: Dram,
    frames: FrameAllocator,
    /// Structured event trace, absent unless telemetry requested it.
    /// Boxed so the disabled path carries one pointer of overhead.
    events: Option<Box<EventRing>>,
}

impl MemorySystem {
    /// Builds an `n_cores` system with the given configuration and
    /// huge-page policy (applied to every core's address space).
    ///
    /// # Panics
    ///
    /// Panics if `n_cores == 0`.
    pub fn new(cfg: MemConfig, n_cores: usize, huge: HugePagePolicy, seed: u64) -> Self {
        assert!(n_cores > 0, "need at least one core");
        let mut frames = FrameAllocator::with_cores(cfg.dram.capacity_bytes, seed, n_cores as u32);
        let cores = (0..n_cores)
            .map(|i| CoreMem {
                l1i: Cache::new("L1I", cfg.l1i),
                l1d: Cache::new("L1D", cfg.l1d),
                l2c: Cache::new("L2C", cfg.l2c),
                dtlb: Tlb::new("dTLB", cfg.dtlb),
                itlb: Tlb::new("iTLB", cfg.itlb),
                stlb: Tlb::new("sTLB", cfg.stlb),
                walker: PageWalker::for_core(cfg.psc, &mut frames, i as u32),
                vmem: Vmem::for_core(
                    huge.clone(),
                    seed ^ (0x9E37 + i as u64 * 0x61C8_8646),
                    i as u32,
                ),
                walk_stats: WalkStats::default(),
                mshr_l1i: Mshr::new(cfg.l1i.mshr_entries),
                mshr_l1d: Mshr::new(cfg.l1d.mshr_entries),
                mshr_l2c: Mshr::new(cfg.l2c.mshr_entries),
            })
            .collect();
        Self {
            cores,
            llc: Cache::new("LLC", cfg.llc),
            llc_mshr: Mshr::new(cfg.llc.mshr_entries),
            dram: Dram::new(cfg.dram),
            frames,
            events: None,
            cfg,
        }
    }

    /// Attaches an event ring; subsequent fills, evictions, walks and
    /// policy decisions are recorded into it.
    pub fn attach_events(&mut self, ring: EventRing) {
        self.events = Some(Box::new(ring));
    }

    /// Detaches and returns the event ring, if one was attached.
    pub fn take_events(&mut self) -> Option<EventRing> {
        self.events.take().map(|b| *b)
    }

    /// Whether event tracing is active (callers may skip building event
    /// payloads when it is not).
    pub fn events_enabled(&self) -> bool {
        self.events.is_some()
    }

    /// Records one event (no-op when tracing is off). Public so the CPU
    /// model can record engine-side events (policy decisions) into the
    /// same ring.
    pub fn push_event(&mut self, core: usize, cycle: u64, event: TraceEvent) {
        if let Some(ring) = &mut self.events {
            ring.push(cycle, core as u32, event);
        }
    }

    fn push_eviction_event(&mut self, core: usize, cycle: u64, ev: &Eviction) {
        self.push_event(
            core,
            cycle,
            TraceEvent::Evict {
                line: ev.line.raw(),
                pcb: ev.pcb,
                dirty: ev.dirty,
                served_hits: ev.hits > 0,
            },
        );
    }

    /// The configuration in force.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Immutable view of one core's private structures.
    pub fn core(&self, core: usize) -> &CoreMem {
        &self.cores[core]
    }

    /// Mutable view of one core's private structures (tests/ablation).
    pub fn core_mut(&mut self, core: usize) -> &mut CoreMem {
        &mut self.cores[core]
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Current L1D MSHR occupancy for a core (snapshot input).
    pub fn l1d_mshr_occupancy(&mut self, core: usize, cycle: u64) -> u32 {
        self.cores[core].mshr_l1d.occupancy(cycle)
    }

    /// Demand-only L1D MSHR occupancy (adaptive-thresholding input).
    pub fn l1d_demand_mshr_occupancy(&mut self, core: usize, cycle: u64) -> u32 {
        self.cores[core].mshr_l1d.demand_occupancy(cycle)
    }

    // ----- internal fetch chain -------------------------------------------------

    /// Fetches a physical line through LLC -> DRAM, starting at `cycle`.
    /// Returns the data-ready cycle. Fills the LLC.
    fn fetch_from_llc(&mut self, line: LineAddr, cycle: u64, traffic: Traffic) -> u64 {
        let llc_lat = self.cfg.llc.latency;
        let hit = match traffic {
            Traffic::Demand { .. } | Traffic::Fetch => self.llc.demand_access(line, false).hit,
            // Prefetch traffic keeps LRU warm without touching demand stats.
            _ => self.llc.prefetch_access(line),
        };
        if hit {
            return cycle + llc_lat;
        }
        if let Some(t) = self.llc_mshr.lookup(line, cycle) {
            return t.max(cycle + llc_lat);
        }
        let dram_ready = self.dram.access(line, cycle + llc_lat);
        let ready = self.llc_mshr.allocate(line, cycle, dram_ready);
        let fill_kind = match traffic {
            Traffic::PrefetchL1 { page_cross: true } => FillKind::PrefetchPageCross,
            Traffic::PrefetchL1 { .. } | Traffic::PrefetchL2 => FillKind::PrefetchInPage,
            _ => FillKind::Demand,
        };
        self.llc.fill(line, fill_kind, false);
        ready
    }

    /// Fetches a physical line through L2C -> LLC -> DRAM for `core`.
    /// Returns the data-ready cycle. Fills L2C (and below).
    fn fetch_from_l2(&mut self, core: usize, line: LineAddr, cycle: u64, traffic: Traffic) -> u64 {
        let l2_lat = self.cfg.l2c.latency;
        let hit = {
            let c = &mut self.cores[core];
            match traffic {
                Traffic::Demand { .. } | Traffic::Fetch => c.l2c.demand_access(line, false).hit,
                // Prefetch traffic keeps LRU warm without touching demand stats.
                _ => c.l2c.prefetch_access(line),
            }
        };
        if hit {
            return cycle + l2_lat;
        }
        if let Some(t) = self.cores[core].mshr_l2c.lookup(line, cycle) {
            return t.max(cycle + l2_lat);
        }
        let below = self.fetch_from_llc(line, cycle + l2_lat, traffic);
        let ready = self.cores[core].mshr_l2c.allocate(line, cycle, below);
        let fill_kind = match traffic {
            Traffic::PrefetchL1 { page_cross: true } => FillKind::PrefetchPageCross,
            Traffic::PrefetchL1 { .. } | Traffic::PrefetchL2 => FillKind::PrefetchInPage,
            _ => FillKind::Demand,
        };
        self.cores[core].l2c.fill(line, fill_kind, false);
        ready
    }

    // ----- translation ----------------------------------------------------------

    /// Translates `va` on the demand path: dTLB -> sTLB -> page walk, with
    /// walk references played through the data cache hierarchy.
    /// Returns `(translation, ready_cycle, dtlb_hit, stlb_hit, walked)`.
    fn translate_demand(
        &mut self,
        core: usize,
        va: VirtAddr,
        cycle: u64,
    ) -> Result<(Translation, u64, bool, bool, bool), OomError> {
        let dtlb_lat = self.cfg.dtlb.latency;
        let stlb_lat = self.cfg.stlb.latency;
        if let Some(t) = self.cores[core].dtlb.lookup(va) {
            return Ok((t, cycle + dtlb_lat, true, false, false));
        }
        if let Some(t) = self.cores[core].stlb.lookup(va) {
            self.cores[core].dtlb.fill(t, false);
            return Ok((t, cycle + dtlb_lat + stlb_lat, false, true, false));
        }
        let t0 = cycle + dtlb_lat + stlb_lat;
        let (t, ready) = self.do_walk(core, va, t0, false)?;
        Ok((t, ready, false, false, true))
    }

    /// Performs a page walk starting at `cycle`, charging PSC latency plus
    /// one pointer-chased cache access per remaining level. Fills both TLBs.
    fn do_walk(
        &mut self,
        core: usize,
        va: VirtAddr,
        cycle: u64,
        speculative: bool,
    ) -> Result<(Translation, u64), OomError> {
        let plan = {
            let c = &mut self.cores[core];
            // Split borrows inside one core are fine.
            let CoreMem { walker, vmem, .. } = c;
            walker.walk(va, vmem, &mut self.frames)?
        };
        {
            let ws = &mut self.cores[core].walk_stats;
            if speculative {
                ws.prefetch_walks += 1;
            } else {
                ws.demand_walks += 1;
            }
            ws.memory_refs += plan.refs.len() as u64;
            ws.psc_hits += plan.levels_skipped as u64;
        }
        let mut t = cycle + self.cfg.psc_latency;
        for pte in &plan.refs {
            t = self.walk_ref(core, pte.line(), t);
        }
        if self.events_enabled() {
            self.push_event(
                core,
                cycle,
                TraceEvent::Walk {
                    va_page: va.page_4k().raw(),
                    latency: t - cycle,
                    refs: plan.refs.len() as u32,
                    psc_skipped: plan.levels_skipped,
                    speculative,
                },
            );
        }
        let tr = plan.translation;
        self.cores[core].stlb.fill(tr, speculative);
        self.cores[core].dtlb.fill(tr, speculative);
        Ok((tr, t))
    }

    /// One walker reference through the L1D path (neutral statistics).
    fn walk_ref(&mut self, core: usize, line: LineAddr, cycle: u64) -> u64 {
        let l1d_lat = self.cfg.l1d.latency;
        if let Some(t) = self.cores[core].mshr_l1d.lookup(line, cycle) {
            return t.max(cycle + l1d_lat);
        }
        if self.cores[core].l1d.probe(line) {
            return cycle + l1d_lat;
        }
        let below = self.fetch_from_l2(core, line, cycle + l1d_lat, Traffic::Walk);
        let ready = self.cores[core]
            .mshr_l1d
            .allocate_kind(line, cycle, below, false);
        // PTE lines fill the L1D (walker goes through L1D, like ChampSim);
        // this is part of the pollution cost of speculative walks.
        self.cores[core].l1d.fill(line, FillKind::Demand, false);
        ready
    }

    // ----- public access paths ---------------------------------------------------

    /// A demand load or store from `core` to virtual address `va`.
    pub fn demand_data(
        &mut self,
        core: usize,
        va: VirtAddr,
        is_store: bool,
        cycle: u64,
    ) -> Result<DemandDataResult, OomError> {
        let (tr, trans_ready, dtlb_hit, stlb_hit, walked) =
            self.translate_demand(core, va, cycle)?;
        let pa = PhysAddr::new(tr.apply(va));
        let line = pa.line();
        let l1d_lat = self.cfg.l1d.latency;

        // VIPT: L1D index proceeds in parallel with the dTLB on a dTLB hit,
        // so the L1D access effectively starts at `cycle`; on longer
        // translations it starts when the translation is ready.
        let start = if dtlb_hit { cycle } else { trans_ready };

        let lookup = self.cores[core].l1d.demand_access(line, is_store);
        if lookup.hit {
            // The block may be structurally present but still in flight
            // (fills are installed when the miss is issued); data is only
            // usable once the outstanding MSHR entry completes.
            let inflight = self.cores[core].mshr_l1d.lookup(line, start);
            let ready = inflight.map_or(start + l1d_lat, |t| t.max(start + l1d_lat));
            return Ok(DemandDataResult {
                ready,
                l1d_hit: true,
                first_hit_on_prefetch: lookup.first_hit_on_prefetch,
                hit_pcb: lookup.pcb,
                paddr: pa,
                l1d_eviction: None,
                dtlb_hit,
                stlb_hit,
                walked,
                l2_access: None,
                page_size: tr.size,
            });
        }

        // Miss path.
        if let Some(t) = self.cores[core].mshr_l1d.lookup(line, start) {
            return Ok(DemandDataResult {
                ready: t.max(start + l1d_lat),
                l1d_hit: false,
                first_hit_on_prefetch: false,
                hit_pcb: false,
                paddr: pa,
                l1d_eviction: None,
                dtlb_hit,
                stlb_hit,
                walked,
                l2_access: None,
                page_size: tr.size,
            });
        }
        let l2_hit_probe = self.cores[core].l2c.probe(line);
        let below = self.fetch_from_l2(core, line, start + l1d_lat, Traffic::Demand { is_store });
        let ready = self.cores[core].mshr_l1d.allocate(line, start, below);
        let eviction = self.cores[core].l1d.fill(line, FillKind::Demand, is_store);
        if self.events_enabled() {
            self.push_event(
                core,
                start,
                TraceEvent::Fill {
                    line: line.raw(),
                    prefetch: false,
                    page_cross: false,
                },
            );
            if let Some(ev) = &eviction {
                self.push_eviction_event(core, start, ev);
            }
        }
        Ok(DemandDataResult {
            ready,
            l1d_hit: false,
            first_hit_on_prefetch: false,
            hit_pcb: false,
            paddr: pa,
            l1d_eviction: eviction,
            dtlb_hit,
            stlb_hit,
            walked,
            l2_access: Some((pa, l2_hit_probe)),
            page_size: tr.size,
        })
    }

    /// An instruction fetch from `core` at virtual address `va`.
    pub fn fetch_instr(
        &mut self,
        core: usize,
        va: VirtAddr,
        cycle: u64,
    ) -> Result<FetchResult, OomError> {
        // iTLB -> sTLB -> walk.
        let itlb_lat = self.cfg.itlb.latency;
        let stlb_lat = self.cfg.stlb.latency;
        let (tr, trans_ready, itlb_hit) = if let Some(t) = self.cores[core].itlb.lookup(va) {
            (t, cycle + itlb_lat, true)
        } else if let Some(t) = self.cores[core].stlb.lookup(va) {
            self.cores[core].itlb.fill(t, false);
            (t, cycle + itlb_lat + stlb_lat, false)
        } else {
            let (t, ready) = self.do_walk(core, va, cycle + itlb_lat + stlb_lat, false)?;
            self.cores[core].itlb.fill(t, false);
            (t, ready, false)
        };
        let pa = PhysAddr::new(tr.apply(va));
        let line = pa.line();
        let l1i_lat = self.cfg.l1i.latency;
        let start = if itlb_hit { cycle } else { trans_ready };
        let lookup = self.cores[core].l1i.demand_access(line, false);
        if lookup.hit {
            let inflight = self.cores[core].mshr_l1i.lookup(line, start);
            let ready = inflight.map_or(start + l1i_lat, |t| t.max(start + l1i_lat));
            return Ok(FetchResult {
                ready,
                l1i_hit: true,
            });
        }
        if let Some(t) = self.cores[core].mshr_l1i.lookup(line, start) {
            return Ok(FetchResult {
                ready: t.max(start + l1i_lat),
                l1i_hit: false,
            });
        }
        let below = self.fetch_from_l2(core, line, start + l1i_lat, Traffic::Fetch);
        let ready = self.cores[core].mshr_l1i.allocate(line, start, below);
        self.cores[core].l1i.fill(line, FillKind::Demand, false);
        Ok(FetchResult {
            ready,
            l1i_hit: lookup.hit,
        })
    }

    /// Probes the TLB hierarchy for a prefetch target without side effects
    /// beyond prefetch-probe statistics. Used by the `Discard PTW` policy
    /// and by DRIPPER's decision plumbing.
    pub fn probe_translation(&mut self, core: usize, va: VirtAddr) -> TranslationOutcome {
        if self.cores[core].dtlb.peek(va) {
            TranslationOutcome::DtlbHit
        } else if self.cores[core].stlb.peek(va) {
            TranslationOutcome::StlbHit
        } else {
            TranslationOutcome::RequiresWalk
        }
    }

    /// Issues an L1D prefetch for virtual address `va` on behalf of `core`.
    ///
    /// The target is translated through the TLB hierarchy (prefetch-probe
    /// statistics); when the translation is absent and `allow_walk` is set,
    /// a *speculative page walk* is performed — the high-risk step the paper
    /// studies (up to 4 extra memory references). When `allow_walk` is
    /// false the prefetch is dropped instead (the `Discard PTW` scenario).
    pub fn issue_prefetch(
        &mut self,
        core: usize,
        va: VirtAddr,
        page_cross: bool,
        cycle: u64,
        allow_walk: bool,
    ) -> Result<PrefetchIssueResult, OomError> {
        let outcome = self.probe_translation(core, va);
        let (tr, t_ready, walked) = match outcome {
            TranslationOutcome::DtlbHit => {
                let t = self.cores[core].dtlb.prefetch_probe(va).expect("peeked");
                (t, cycle + self.cfg.dtlb.latency, false)
            }
            TranslationOutcome::StlbHit => {
                self.cores[core].dtlb.prefetch_probe(va);
                let t = self.cores[core].stlb.prefetch_probe(va).expect("peeked");
                self.cores[core].dtlb.fill(t, true);
                (
                    t,
                    cycle + self.cfg.dtlb.latency + self.cfg.stlb.latency,
                    false,
                )
            }
            TranslationOutcome::RequiresWalk => {
                self.cores[core].dtlb.prefetch_probe(va);
                self.cores[core].stlb.prefetch_probe(va);
                if !allow_walk {
                    return Ok(PrefetchIssueResult {
                        issued: false,
                        redundant: false,
                        walked: false,
                        translation: outcome,
                        paddr: None,
                        l1d_eviction: None,
                    });
                }
                let t0 = cycle + self.cfg.dtlb.latency + self.cfg.stlb.latency;
                let (t, ready) = self.do_walk(core, va, t0, true)?;
                (t, ready, true)
            }
        };
        let pa = PhysAddr::new(tr.apply(va));
        let line = pa.line();
        if self.cores[core].l1d.probe(line)
            || self.cores[core].mshr_l1d.lookup(line, t_ready).is_some()
        {
            return Ok(PrefetchIssueResult {
                issued: false,
                redundant: true,
                walked,
                translation: outcome,
                paddr: Some(pa),
                l1d_eviction: None,
            });
        }
        let below = self.fetch_from_l2(core, line, t_ready, Traffic::PrefetchL1 { page_cross });
        self.cores[core]
            .mshr_l1d
            .allocate_kind(line, t_ready, below, false);
        let kind = if page_cross {
            FillKind::PrefetchPageCross
        } else {
            FillKind::PrefetchInPage
        };
        let eviction = self.cores[core].l1d.fill(line, kind, false);
        if self.events_enabled() {
            self.push_event(
                core,
                t_ready,
                TraceEvent::Fill {
                    line: line.raw(),
                    prefetch: true,
                    page_cross,
                },
            );
            if let Some(ev) = &eviction {
                self.push_eviction_event(core, t_ready, ev);
            }
        }
        Ok(PrefetchIssueResult {
            issued: true,
            redundant: false,
            walked,
            translation: outcome,
            paddr: Some(pa),
            l1d_eviction: eviction,
        })
    }

    /// Issues an L1I instruction prefetch for virtual address `va`.
    ///
    /// Instruction prefetches never trigger speculative walks: if the
    /// translation is not resident in the iTLB/sTLB the prefetch is
    /// dropped (returns `false`).
    pub fn issue_l1i_prefetch(&mut self, core: usize, va: VirtAddr, cycle: u64) -> bool {
        let tr = if let Some(t) = self.cores[core].itlb.prefetch_probe(va) {
            t
        } else if let Some(t) = self.cores[core].stlb.prefetch_probe(va) {
            t
        } else {
            return false;
        };
        let pa = PhysAddr::new(tr.apply(va));
        let line = pa.line();
        if self.cores[core].l1i.probe(line)
            || self.cores[core].mshr_l1i.lookup(line, cycle).is_some()
        {
            return false;
        }
        let below = self.fetch_from_l2(
            core,
            line,
            cycle + self.cfg.l1i.latency,
            Traffic::PrefetchL2,
        );
        self.cores[core]
            .mshr_l1i
            .allocate_kind(line, cycle, below, false);
        self.cores[core]
            .l1i
            .fill(line, FillKind::PrefetchInPage, false);
        true
    }

    /// Issues an L2C prefetch for a physical line (L2C prefetchers operate
    /// in the physical address space and never cross physical pages, §II-A2).
    pub fn issue_l2_prefetch(&mut self, core: usize, pa: PhysAddr, cycle: u64) -> bool {
        let line = pa.line();
        if self.cores[core].l2c.probe(line)
            || self.cores[core].mshr_l2c.lookup(line, cycle).is_some()
        {
            return false;
        }
        let below = self.fetch_from_llc(line, cycle + self.cfg.l2c.latency, Traffic::PrefetchL2);
        self.cores[core].mshr_l2c.allocate(line, cycle, below);
        self.cores[core]
            .l2c
            .fill(line, FillKind::PrefetchInPage, false);
        true
    }

    /// Clears every statistics counter (end of warm-up) without touching
    /// cache, TLB, PSC or page-table state.
    pub fn reset_stats(&mut self) {
        for c in &mut self.cores {
            c.l1i.stats = Default::default();
            c.l1d.stats = Default::default();
            c.l2c.stats = Default::default();
            c.dtlb.stats = Default::default();
            c.itlb.stats = Default::default();
            c.stlb.stats = Default::default();
            c.walk_stats = Default::default();
        }
        self.llc.stats = Default::default();
        self.dram.transfers = 0;
        self.dram.queue_cycles = 0;
    }

    /// Translates without timing (used by tests and trace tooling).
    pub fn translate_untimed(&mut self, core: usize, va: VirtAddr) -> Result<PhysAddr, OomError> {
        let c = &mut self.cores[core];
        let CoreMem { vmem, .. } = c;
        let tr = vmem.translate(va, &mut self.frames)?;
        Ok(PhysAddr::new(tr.apply(va)))
    }

    // ----- OS-facing mechanism (policy lives in `pagecross-os`) ------------------

    /// Split borrow of one core's address space together with the shared
    /// frame allocator, so an external pager can allocate and install
    /// mappings in one step.
    pub fn vmem_and_frames(&mut self, core: usize) -> (&mut Vmem, &mut FrameAllocator) {
        (&mut self.cores[core].vmem, &mut self.frames)
    }

    /// Shared frame allocator (reclaim bookkeeping).
    pub fn frames_mut(&mut self) -> &mut FrameAllocator {
        &mut self.frames
    }

    /// TLB-shootdown flush of one 4 KB page across every core: drops
    /// matching dTLB/iTLB/sTLB entries and conservatively the PSC entry
    /// covering the page. Returns the number of entries dropped (the IPI
    /// cost itself is charged by the OS model, not here).
    pub fn shootdown_page(&mut self, vpn4k: u64) -> u32 {
        let mut dropped = 0;
        for c in &mut self.cores {
            dropped += u32::from(c.dtlb.invalidate_page(vpn4k, PageSize::Base4K));
            dropped += u32::from(c.itlb.invalidate_page(vpn4k, PageSize::Base4K));
            dropped += u32::from(c.stlb.invalidate_page(vpn4k, PageSize::Base4K));
            dropped += u32::from(c.walker.invalidate_psc_page(vpn4k));
        }
        dropped
    }

    /// TLB-shootdown flush of an aligned 2 MB region across every core
    /// (both granularities plus the PSC entries above the region).
    /// Returns the number of entries dropped.
    pub fn shootdown_region(&mut self, vpn2m: u64) -> u32 {
        let mut dropped = 0;
        for c in &mut self.cores {
            dropped += c.dtlb.invalidate_region(vpn2m);
            dropped += c.itlb.invalidate_region(vpn2m);
            dropped += c.stlb.invalidate_region(vpn2m);
            dropped += c.walker.invalidate_psc_region(vpn2m);
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::new(MemConfig::table_iv(1), 1, HugePagePolicy::None, 42)
    }

    #[test]
    fn cold_access_pays_full_chain() {
        let mut m = sys();
        let r = m
            .demand_data(0, VirtAddr::new(0x1000_0000), false, 0)
            .unwrap();
        assert!(!r.l1d_hit);
        assert!(r.walked, "cold TLB requires a walk");
        // Walk (5 refs through DRAM) + miss chain: far more than DRAM latency.
        assert!(r.ready > 160, "cold access must be slow, got {}", r.ready);
    }

    #[test]
    fn warm_access_hits_l1d_fast() {
        let mut m = sys();
        let va = VirtAddr::new(0x1000_0000);
        m.demand_data(0, va, false, 0).unwrap();
        let r = m.demand_data(0, va, false, 10_000).unwrap();
        assert!(r.l1d_hit);
        assert!(r.dtlb_hit);
        assert_eq!(
            r.ready,
            10_000 + 5,
            "dTLB-parallel L1D hit takes L1D latency"
        );
    }

    #[test]
    fn same_page_second_access_no_walk() {
        let mut m = sys();
        m.demand_data(0, VirtAddr::new(0x1000_0000), false, 0)
            .unwrap();
        let r = m
            .demand_data(0, VirtAddr::new(0x1000_0040), false, 1_000)
            .unwrap();
        assert!(!r.walked);
        assert!(r.dtlb_hit);
    }

    #[test]
    fn mshr_merges_same_line() {
        let mut m = sys();
        let va = VirtAddr::new(0x2000_0000);
        // Touch the page once so translation is warm, then force eviction of
        // nothing — access a new line on the same page twice quickly.
        m.demand_data(0, va, false, 0).unwrap();
        let va2 = VirtAddr::new(0x2000_0080);
        let a = m.demand_data(0, va2, false, 1_000).unwrap();
        let b = m.demand_data(0, va2.offset(8), false, 1_001).unwrap();
        assert!(!a.l1d_hit, "first access misses");
        assert!(
            b.ready >= a.ready,
            "second access cannot complete before the fill"
        );
        assert!(
            b.ready <= a.ready + 6,
            "second access merges into the first's MSHR"
        );
    }

    #[test]
    fn prefetch_fills_l1d_and_is_redundant_after() {
        let mut m = sys();
        let trig = VirtAddr::new(0x3000_0000);
        m.demand_data(0, trig, false, 0).unwrap();
        let tgt = VirtAddr::new(0x3000_0400);
        let r = m.issue_prefetch(0, tgt, false, 100, true).unwrap();
        assert!(r.issued);
        let again = m.issue_prefetch(0, tgt, false, 20_000, true).unwrap();
        assert!(again.redundant);
        // Demand access now hits and promotes the prefetch to useful.
        let d = m.demand_data(0, tgt, false, 30_000).unwrap();
        assert!(d.l1d_hit && d.first_hit_on_prefetch);
    }

    #[test]
    fn page_cross_prefetch_walks_when_allowed() {
        let mut m = sys();
        let trig = VirtAddr::new(0x4000_0FC0); // last line of its page
        m.demand_data(0, trig, false, 0).unwrap();
        let tgt = trig.offset(64); // next page, cold TLB
        assert_eq!(
            m.probe_translation(0, tgt),
            TranslationOutcome::RequiresWalk
        );
        let r = m.issue_prefetch(0, tgt, true, 1_000, true).unwrap();
        assert!(r.issued && r.walked);
        assert_eq!(m.core(0).walk_stats.prefetch_walks, 1);
        // The walk filled the TLBs: a demand access to that page now needs no walk.
        let d = m.demand_data(0, tgt, false, 50_000).unwrap();
        assert!(!d.walked);
        assert!(d.l1d_hit, "prefetched block serves the demand");
        assert!(d.hit_pcb, "block carries the Page-Cross Bit");
    }

    #[test]
    fn discard_ptw_semantics() {
        let mut m = sys();
        let tgt = VirtAddr::new(0x5000_0000);
        let r = m.issue_prefetch(0, tgt, true, 0, false).unwrap();
        assert!(!r.issued && !r.walked);
        assert_eq!(r.translation, TranslationOutcome::RequiresWalk);
        assert_eq!(m.core(0).walk_stats.prefetch_walks, 0);
    }

    #[test]
    fn walk_consumes_memory_refs() {
        let mut m = sys();
        m.demand_data(0, VirtAddr::new(0x6000_0000), false, 0)
            .unwrap();
        let ws = m.core(0).walk_stats;
        assert_eq!(ws.demand_walks, 1);
        assert_eq!(ws.memory_refs, 5, "cold 5-level walk references 5 PTEs");
        // Second walk to a nearby page: PSC-L2 hit -> 1 ref.
        m.demand_data(0, VirtAddr::new(0x6000_0000 + (100 << 12)), false, 100_000)
            .unwrap();
        // Note: +100 pages stays in the same 2MB region only if < 512 pages.
        let ws2 = m.core(0).walk_stats;
        assert_eq!(ws2.demand_walks, 2);
        assert_eq!(ws2.memory_refs, 6, "warm walk references only the PT level");
    }

    #[test]
    fn fetch_path_works() {
        let mut m = sys();
        let pc = VirtAddr::new(0x40_0000);
        let f1 = m.fetch_instr(0, pc, 0).unwrap();
        assert!(!f1.l1i_hit);
        let f2 = m.fetch_instr(0, pc, 10_000).unwrap();
        assert!(f2.l1i_hit);
        assert_eq!(f2.ready, 10_000 + 4);
    }

    #[test]
    fn stlb_hit_path() {
        let mut m = sys();
        let va = VirtAddr::new(0x7000_0000);
        m.demand_data(0, va, false, 0).unwrap();
        // Blow the dTLB (64 entries, 4-way) with many distinct pages.
        for p in 1..200u64 {
            m.demand_data(0, VirtAddr::new(0x7000_0000 + (p << 12)), false, p * 2_000)
                .unwrap();
        }
        let r = m.demand_data(0, va, false, 1_000_000).unwrap();
        assert!(!r.dtlb_hit, "dTLB should have evicted the first page");
        assert!(r.stlb_hit, "sTLB (1536 entries) still holds it");
        assert!(!r.walked);
    }

    #[test]
    fn multicore_private_structures_are_independent() {
        let mut m = MemorySystem::new(MemConfig::table_iv(2), 2, HugePagePolicy::None, 1);
        let va = VirtAddr::new(0x8000_0000);
        m.demand_data(0, va, false, 0).unwrap();
        let r1 = m.demand_data(1, va, false, 10).unwrap();
        assert!(!r1.l1d_hit, "core 1 has its own cold L1D");
        assert!(r1.walked, "core 1 has its own cold TLB and address space");
        // Same VA maps to different frames in the two address spaces.
        let p0 = m.translate_untimed(0, va).unwrap();
        let p1 = m.translate_untimed(1, va).unwrap();
        assert_ne!(p0, p1);
    }

    #[test]
    fn l2_prefetch_fills_l2_only() {
        let mut m = sys();
        let va = VirtAddr::new(0x9000_0000);
        let d = m.demand_data(0, va, false, 0).unwrap();
        let pa_next = PhysAddr::new(d.paddr.raw() + 64);
        assert!(m.issue_l2_prefetch(0, pa_next, 1_000));
        assert!(m.core(0).l2c.probe(pa_next.line()));
        assert!(!m.core(0).l1d.probe(pa_next.line()));
        assert!(!m.issue_l2_prefetch(0, pa_next, 2_000), "now redundant");
    }

    #[test]
    fn prefetch_traffic_never_lands_in_demand_counters() {
        let mut m = sys();
        let trig = VirtAddr::new(0xB000_0000);
        m.demand_data(0, trig, false, 0).unwrap();
        let (l2_da, l2_dm) = {
            let s = &m.core(0).l2c.stats;
            (s.demand_accesses, s.demand_misses)
        };
        let (llc_da, llc_dm) = (m.llc.stats.demand_accesses, m.llc.stats.demand_misses);
        // L1 prefetches probe L2C and LLC on their way down; none of that
        // may count as demand traffic.
        for i in 1..=4u64 {
            m.issue_prefetch(
                0,
                VirtAddr::new(0xB000_0000 + i * 64),
                false,
                i * 1_000,
                i % 2 == 0,
            )
            .unwrap();
        }
        let l2 = &m.core(0).l2c.stats;
        assert_eq!(
            l2.demand_accesses, l2_da,
            "L2C demand accesses moved on prefetch traffic"
        );
        assert_eq!(
            l2.demand_misses, l2_dm,
            "L2C demand misses moved on prefetch traffic"
        );
        assert_eq!(m.llc.stats.demand_accesses, llc_da);
        assert_eq!(m.llc.stats.demand_misses, llc_dm);
        assert!(
            l2.prefetch_accesses > 0,
            "prefetch probes must be visible in the prefetch counters"
        );
    }

    #[test]
    fn event_ring_records_fills_and_walks() {
        let mut m = sys();
        assert!(!m.events_enabled());
        // Events offered before attach are silently dropped.
        m.push_event(
            0,
            0,
            TraceEvent::Fill {
                line: 1,
                prefetch: false,
                page_cross: false,
            },
        );
        m.attach_events(EventRing::new(1024, 1));
        assert!(m.events_enabled());

        let va = VirtAddr::new(0xC000_0000);
        m.demand_data(0, va, false, 0).unwrap(); // cold: walk + demand fill
        let r = m
            .issue_prefetch(0, va.offset(4096), true, 1_000, true)
            .unwrap();
        assert!(r.issued && r.walked);

        let ring = m.take_events().expect("ring attached");
        assert!(!m.events_enabled());
        let events = ring.into_events();
        let kinds: Vec<&str> = events.iter().map(|e| e.event.kind()).collect();
        assert!(kinds.contains(&"walk"), "{kinds:?}");
        assert!(kinds.contains(&"fill"), "{kinds:?}");
        let walks: Vec<_> = events
            .iter()
            .filter_map(|e| match e.event {
                TraceEvent::Walk {
                    latency,
                    refs,
                    speculative,
                    ..
                } => Some((latency, refs, speculative)),
                _ => None,
            })
            .collect();
        assert_eq!(walks.len(), 2, "one demand + one speculative walk");
        assert!(walks.iter().all(|&(lat, refs, _)| lat > 0 && refs > 0));
        assert_eq!(walks.iter().filter(|&&(_, _, s)| s).count(), 1);
        let pf_fills = events
            .iter()
            .filter(|e| {
                matches!(
                    e.event,
                    TraceEvent::Fill {
                        prefetch: true,
                        page_cross: true,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(pf_fills, 1, "the page-cross prefetch fill is recorded");
    }

    #[test]
    fn store_miss_write_allocates_dirty() {
        let mut m = sys();
        let va = VirtAddr::new(0xA000_0000);
        m.demand_data(0, va, true, 0).unwrap();
        // Evicting it later produces a writeback; force evictions by filling
        // the set: lines mapping to the same set are 64 sets * 64B apart.
        let mut wb_before = m.core(0).l1d.stats.writebacks;
        assert_eq!(wb_before, 0);
        for i in 1..=12u64 {
            let conflict = VirtAddr::new(0xA000_0000 + i * 64 * 64);
            m.demand_data(0, conflict, false, i * 3_000).unwrap();
        }
        wb_before = m.core(0).l1d.stats.writebacks;
        assert!(wb_before >= 1, "dirty block eventually written back");
    }
}
