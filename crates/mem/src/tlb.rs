//! Translation Lookaside Buffers.
//!
//! The hierarchy follows Table IV: a small first-level data TLB (dTLB) and
//! instruction TLB (iTLB), backed by a shared last-level TLB (sTLB). Entries
//! are page-size aware (4 KB / 2 MB) — a lookup probes both granularities,
//! matching the paper's §V-B6 large-page methodology. Translations brought
//! in by page-cross prefetch walks are installed in both dTLB and sTLB
//! ("translations brought by page-cross prefetches are stored in both dTLB
//! and sTLB structures", §II-C).

use crate::config::TlbConfig;
use pagecross_types::{PageSize, TlbStats, VirtAddr};

/// One translation: virtual page -> physical frame at a given page size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Translation {
    /// Virtual page number at the granularity of `size`.
    pub vpn: u64,
    /// Physical frame number at the granularity of `size`.
    pub pfn: u64,
    /// Page size of the mapping.
    pub size: PageSize,
}

impl Translation {
    /// Translates a virtual address under this mapping.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `va` does not lie on this page.
    pub fn apply(&self, va: VirtAddr) -> u64 {
        let shift = self.size.shift();
        debug_assert_eq!(
            va.raw() >> shift,
            self.vpn,
            "address not covered by translation"
        );
        (self.pfn << shift) | (va.raw() & (self.size.bytes() - 1))
    }
}

#[derive(Clone, Copy, Debug)]
struct TlbEntry {
    valid: bool,
    vpn: u64,
    pfn: u64,
    size: PageSize,
    lru: u64,
}

const INVALID_ENTRY: TlbEntry = TlbEntry {
    valid: false,
    vpn: 0,
    pfn: 0,
    size: PageSize::Base4K,
    lru: 0,
};

/// A set-associative, page-size-aware TLB.
#[derive(Clone, Debug)]
pub struct Tlb {
    name: &'static str,
    sets: u64,
    ways: usize,
    entries: Vec<TlbEntry>,
    tick: u64,
    /// Aggregate statistics.
    pub stats: TlbStats,
}

impl Tlb {
    /// Builds a TLB from a [`TlbConfig`].
    ///
    /// # Panics
    ///
    /// Panics if the configured set count is not a power of two.
    pub fn new(name: &'static str, cfg: TlbConfig) -> Self {
        let sets = cfg.sets() as u64;
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "{name}: TLB sets must be a power of two"
        );
        Self {
            name,
            sets,
            ways: cfg.ways as usize,
            entries: vec![INVALID_ENTRY; (sets * cfg.ways as u64) as usize],
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// TLB name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn set_range(&self, vpn: u64) -> std::ops::Range<usize> {
        let set = (vpn & (self.sets - 1)) as usize;
        let base = set * self.ways;
        base..base + self.ways
    }

    fn find(&mut self, va: VirtAddr, touch: bool) -> Option<Translation> {
        self.tick += 1;
        let tick = self.tick;
        for size in [PageSize::Base4K, PageSize::Huge2M] {
            let vpn = va.raw() >> size.shift();
            let range = self.set_range(vpn);
            for e in &mut self.entries[range] {
                if e.valid && e.size == size && e.vpn == vpn {
                    if touch {
                        e.lru = tick;
                    }
                    return Some(Translation {
                        vpn: e.vpn,
                        pfn: e.pfn,
                        size: e.size,
                    });
                }
            }
        }
        None
    }

    /// Demand lookup: counts toward demand accesses/misses and updates LRU.
    pub fn lookup(&mut self, va: VirtAddr) -> Option<Translation> {
        self.stats.accesses += 1;
        let t = self.find(va, true);
        if t.is_none() {
            self.stats.misses += 1;
        }
        t
    }

    /// Prefetch-side probe: counted separately, still updates LRU on hit
    /// (the hardware port is shared).
    pub fn prefetch_probe(&mut self, va: VirtAddr) -> Option<Translation> {
        self.stats.prefetch_probes += 1;
        let t = self.find(va, true);
        if t.is_none() {
            self.stats.prefetch_probe_misses += 1;
        }
        t
    }

    /// Checks presence without LRU or statistics side effects.
    pub fn peek(&self, va: VirtAddr) -> bool {
        for size in [PageSize::Base4K, PageSize::Huge2M] {
            let vpn = va.raw() >> size.shift();
            let range = self.set_range(vpn);
            if self.entries[range]
                .iter()
                .any(|e| e.valid && e.size == size && e.vpn == vpn)
            {
                return true;
            }
        }
        false
    }

    /// Installs a translation (LRU replacement within its set). Setting
    /// `from_prefetch` attributes the fill to a page-cross prefetch walk.
    pub fn fill(&mut self, t: Translation, from_prefetch: bool) {
        self.tick += 1;
        if from_prefetch {
            self.stats.prefetch_fills += 1;
        }
        let tick = self.tick;
        let range = self.set_range(t.vpn);
        // Refresh if present.
        if let Some(e) = self.entries[range.clone()]
            .iter_mut()
            .find(|e| e.valid && e.size == t.size && e.vpn == t.vpn)
        {
            e.lru = tick;
            e.pfn = t.pfn;
            return;
        }
        let slot = if let Some(free) = self.entries[range.clone()].iter_mut().find(|e| !e.valid) {
            free
        } else {
            self.entries[range]
                .iter_mut()
                .min_by_key(|e| e.lru)
                .expect("nonempty set")
        };
        *slot = TlbEntry {
            valid: true,
            vpn: t.vpn,
            pfn: t.pfn,
            size: t.size,
            lru: tick,
        };
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Invalidates the entry for `vpn` at `size` (a shootdown of a single
    /// page). Returns whether an entry was dropped.
    pub fn invalidate_page(&mut self, vpn: u64, size: PageSize) -> bool {
        let range = self.set_range(vpn);
        for e in &mut self.entries[range] {
            if e.valid && e.size == size && e.vpn == vpn {
                e.valid = false;
                return true;
            }
        }
        false
    }

    /// Invalidates every entry covering the aligned 2 MB region `vpn2m`:
    /// the 2 MB entry itself and all 4 KB entries inside it (a shootdown
    /// after THP promotion/demotion). Returns the number of entries dropped.
    pub fn invalidate_region(&mut self, vpn2m: u64) -> u32 {
        let mut dropped = 0;
        for e in &mut self.entries {
            let hit = match e.size {
                PageSize::Base4K => {
                    e.vpn >> (PageSize::Huge2M.shift() - PageSize::Base4K.shift()) == vpn2m
                }
                PageSize::Huge2M => e.vpn == vpn2m,
            };
            if e.valid && hit {
                e.valid = false;
                dropped += 1;
            }
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(
            "tiny",
            TlbConfig {
                entries: 8,
                ways: 2,
                latency: 1,
            },
        )
    }

    fn map4k(vpn: u64, pfn: u64) -> Translation {
        Translation {
            vpn,
            pfn,
            size: PageSize::Base4K,
        }
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut t = tiny();
        let va = VirtAddr::new(0x5000);
        assert!(t.lookup(va).is_none());
        t.fill(map4k(5, 99), false);
        let tr = t.lookup(va).unwrap();
        assert_eq!(tr.pfn, 99);
        assert_eq!(t.stats.accesses, 2);
        assert_eq!(t.stats.misses, 1);
    }

    #[test]
    fn translation_apply_4k() {
        let tr = map4k(5, 99);
        assert_eq!(tr.apply(VirtAddr::new(0x5123)), (99 << 12) | 0x123);
    }

    #[test]
    fn translation_apply_2m() {
        let tr = Translation {
            vpn: 3,
            pfn: 7,
            size: PageSize::Huge2M,
        };
        let va = VirtAddr::new((3 << 21) | 0x12345);
        assert_eq!(tr.apply(va), (7 << 21) | 0x12345);
    }

    #[test]
    fn huge_page_hit() {
        let mut t = tiny();
        t.fill(
            Translation {
                vpn: 2,
                pfn: 11,
                size: PageSize::Huge2M,
            },
            false,
        );
        // Any 4K page inside huge page 2 must hit.
        let va = VirtAddr::new((2u64 << 21) + 0x3000);
        let tr = t.lookup(va).unwrap();
        assert_eq!(tr.size, PageSize::Huge2M);
        assert_eq!(tr.pfn, 11);
    }

    #[test]
    fn lru_replacement_within_set() {
        let mut t = tiny(); // 4 sets x 2 ways
                            // VPNs 0, 4, 8 share set 0.
        t.fill(map4k(0, 1), false);
        t.fill(map4k(4, 2), false);
        t.lookup(VirtAddr::new(0)); // touch vpn 0 -> vpn 4 is LRU
        t.fill(map4k(8, 3), false);
        assert!(t.peek(VirtAddr::new(0)));
        assert!(!t.peek(VirtAddr::new(4 << 12)));
        assert!(t.peek(VirtAddr::new(8 << 12)));
    }

    #[test]
    fn prefetch_probe_counted_separately() {
        let mut t = tiny();
        t.prefetch_probe(VirtAddr::new(0x9000));
        assert_eq!(t.stats.accesses, 0);
        assert_eq!(t.stats.prefetch_probes, 1);
        assert_eq!(t.stats.prefetch_probe_misses, 1);
    }

    #[test]
    fn prefetch_fill_attributed() {
        let mut t = tiny();
        t.fill(map4k(1, 1), true);
        assert_eq!(t.stats.prefetch_fills, 1);
    }

    #[test]
    fn refill_refreshes_not_duplicates() {
        let mut t = tiny();
        t.fill(map4k(1, 1), false);
        t.fill(map4k(1, 2), false);
        assert_eq!(t.occupancy(), 1);
        assert_eq!(t.lookup(VirtAddr::new(0x1000)).unwrap().pfn, 2);
    }

    #[test]
    fn invalidate_page_drops_only_the_match() {
        let mut t = tiny();
        t.fill(map4k(5, 99), false);
        t.fill(map4k(6, 98), false);
        assert!(t.invalidate_page(5, PageSize::Base4K));
        assert!(!t.invalidate_page(5, PageSize::Base4K), "already gone");
        assert!(!t.peek(VirtAddr::new(5 << 12)));
        assert!(t.peek(VirtAddr::new(6 << 12)));
    }

    #[test]
    fn invalidate_region_drops_both_granularities() {
        let mut t = tiny();
        // Two 4K pages inside region 2, the huge entry for region 2, and a
        // 4K page outside it.
        t.fill(map4k((2 << 9) + 3, 1), false);
        t.fill(map4k((2 << 9) + 7, 2), false);
        t.fill(
            Translation {
                vpn: 2,
                pfn: 11,
                size: PageSize::Huge2M,
            },
            false,
        );
        t.fill(map4k(1, 3), false);
        assert_eq!(t.invalidate_region(2), 3);
        assert!(!t.peek(VirtAddr::new(((2u64 << 9) + 3) << 12)));
        assert!(!t.peek(VirtAddr::new(2u64 << 21)));
        assert!(t.peek(VirtAddr::new(1 << 12)));
    }

    #[test]
    fn peek_has_no_side_effects() {
        let mut t = tiny();
        t.fill(map4k(1, 1), false);
        let before = t.stats;
        assert!(t.peek(VirtAddr::new(0x1000)));
        assert!(!t.peek(VirtAddr::new(0x2000)));
        assert_eq!(t.stats, before);
    }
}
