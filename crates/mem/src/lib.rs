//! Memory-hierarchy substrate for the `pagecross` reproduction.
//!
//! Everything the paper's methodology (§IV, Table IV) simulates below the
//! core is implemented here, from scratch:
//!
//! * [`cache::Cache`] — set-associative caches with LRU, prefetch metadata
//!   and the Page-Cross Bit on every block;
//! * [`mshr::Mshr`] — miss status holding registers with merge semantics;
//! * [`tlb::Tlb`] — page-size-aware dTLB/iTLB/sTLB;
//! * [`page_table::PageWalker`] — 5-level radix page table with split
//!   page-structure caches and pointer-chased walk references;
//! * [`vmem`] — on-demand virtual memory with 4 KB and 2 MB pages and
//!   pseudo-random physical frame placement;
//! * [`dram::Dram`] — latency + bandwidth DRAM model;
//! * [`system::MemorySystem`] — the composed single/multi-core hierarchy
//!   exposing the demand, fetch, translation-probe and prefetch-issue
//!   paths that the CPU model drives.
//!
//! # Example
//!
//! ```
//! use pagecross_mem::{MemConfig, MemorySystem};
//! use pagecross_mem::vmem::HugePagePolicy;
//! use pagecross_types::VirtAddr;
//!
//! let mut mem = MemorySystem::new(MemConfig::table_iv(1), 1, HugePagePolicy::None, 7);
//! let cold = mem.demand_data(0, VirtAddr::new(0x1234_5678), false, 0).unwrap();
//! let warm = mem.demand_data(0, VirtAddr::new(0x1234_5678), false, 10_000).unwrap();
//! assert!(warm.ready - 10_000 < cold.ready, "second access is cached");
//! ```

pub mod cache;
pub mod config;
pub mod dram;
pub mod mshr;
pub mod page_table;
pub mod system;
pub mod tlb;
pub mod vmem;

pub use cache::{Cache, Eviction, FillKind, Lookup};
pub use config::{CacheConfig, DramConfig, MemConfig, PscConfig, TlbConfig};
pub use dram::Dram;
pub use mshr::Mshr;
pub use page_table::{Level, PageWalker, WalkPlan};
pub use system::{CoreMem, DemandDataResult, FetchResult, MemorySystem, PrefetchIssueResult};
pub use tlb::{Tlb, Translation};
pub use vmem::{FrameAllocator, HugePagePolicy, OomError, Vmem};
