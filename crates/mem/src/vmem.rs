//! Virtual-memory model: on-demand VPN→PFN mapping with 4 KB and 2 MB pages.
//!
//! Physical frames are handed out by a [`FrameAllocator`] shared by every
//! core (so multi-core mixes contend for the same physical space, as in
//! ChampSim), with deterministic pseudo-random placement so that virtual
//! contiguity does *not* imply physical contiguity — the property that makes
//! page-cross prefetching in the virtual space interesting in the first
//! place (§II-A1).
//!
//! The physical space is partitioned to keep the model simple and
//! collision-free: the lower region holds 4 KB data frames, a middle region
//! holds 2 MB data frames, and the top region holds page-table node frames.

use pagecross_types::{PageSize, Rng64, VirtAddr, HUGE_PAGE_SHIFT_2M, PAGE_SHIFT_4K};
use std::collections::HashMap;
use std::collections::HashSet;

use crate::tlb::Translation;

/// Decides which virtual regions are backed by 2 MB pages, following the
/// methodology of "Page Size Aware Cache Prefetching" (MICRO'22, the paper’s reference \[89\]) where
/// a fraction of eligible regions is promoted to large pages.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum HugePagePolicy {
    /// All mappings use 4 KB pages (the paper's main campaign).
    #[default]
    None,
    /// Each aligned 2 MB virtual region is independently promoted to a huge
    /// page with this probability (deterministic per region given the seed).
    Fraction(f64),
    /// All mappings use 2 MB pages.
    All,
}

/// Shared physical-frame allocator.
#[derive(Clone, Debug)]
pub struct FrameAllocator {
    rng: Rng64,
    total_4k_frames: u64,
    huge_region_base: u64,
    huge_frames: u64,
    pt_region_base: u64,
    next_pt_frame: u64,
    used_4k: HashSet<u64>,
    used_2m: HashSet<u64>,
}

impl FrameAllocator {
    /// Creates an allocator over `capacity_bytes` of physical memory.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is smaller than 64 MB (too small to partition).
    pub fn new(capacity_bytes: u64, seed: u64) -> Self {
        assert!(capacity_bytes >= 64 << 20, "physical memory too small");
        let total_frames = capacity_bytes >> PAGE_SHIFT_4K;
        // 1/2 for 4K data, 3/8 for 2M data, 1/8 for page-table nodes.
        let base_4k_frames = total_frames / 2;
        let huge_region_base = base_4k_frames;
        let huge_bytes = capacity_bytes * 3 / 8;
        let huge_frames = huge_bytes >> HUGE_PAGE_SHIFT_2M;
        let pt_region_base = total_frames - total_frames / 8;
        Self {
            rng: Rng64::new(seed ^ 0x5EED_F4A3),
            total_4k_frames: base_4k_frames,
            huge_region_base,
            huge_frames,
            pt_region_base,
            next_pt_frame: pt_region_base,
            used_4k: HashSet::new(),
            used_2m: HashSet::new(),
        }
    }

    /// Allocates a random free 4 KB frame.
    ///
    /// # Panics
    ///
    /// Panics if physical memory is exhausted.
    pub fn alloc_4k(&mut self) -> u64 {
        assert!(
            (self.used_4k.len() as u64) < self.total_4k_frames,
            "out of 4KB physical frames"
        );
        loop {
            let pfn = self.rng.below(self.total_4k_frames);
            if self.used_4k.insert(pfn) {
                return pfn;
            }
        }
    }

    /// Allocates a random free 2 MB frame; returns its 2 MB frame number.
    ///
    /// # Panics
    ///
    /// Panics if the huge-frame region is exhausted.
    pub fn alloc_2m(&mut self) -> u64 {
        assert!(
            (self.used_2m.len() as u64) < self.huge_frames,
            "out of 2MB physical frames"
        );
        let base_2m = self.huge_region_base >> (HUGE_PAGE_SHIFT_2M - PAGE_SHIFT_4K);
        loop {
            let pfn2m = base_2m + self.rng.below(self.huge_frames);
            if self.used_2m.insert(pfn2m) {
                return pfn2m;
            }
        }
    }

    /// Allocates a sequential page-table node frame (4 KB).
    pub fn alloc_pt_node(&mut self) -> u64 {
        let f = self.next_pt_frame;
        self.next_pt_frame += 1;
        f
    }

    /// Frames handed out so far (diagnostics).
    pub fn allocated_frames(&self) -> u64 {
        self.used_4k.len() as u64
            + self.used_2m.len() as u64
            + (self.next_pt_frame - self.pt_region_base)
    }
}

/// Per-address-space virtual memory: lazily maps pages on first touch.
#[derive(Clone, Debug)]
pub struct Vmem {
    policy: HugePagePolicy,
    rng: Rng64,
    map_4k: HashMap<u64, u64>,
    map_2m: HashMap<u64, u64>,
    /// Cached promotion decision per 2 MB virtual region.
    region_is_huge: HashMap<u64, bool>,
}

impl Vmem {
    /// Creates an address space with the given huge-page policy.
    pub fn new(policy: HugePagePolicy, seed: u64) -> Self {
        Self {
            policy,
            rng: Rng64::new(seed ^ 0x7A6E_5141),
            map_4k: HashMap::new(),
            map_2m: HashMap::new(),
            region_is_huge: HashMap::new(),
        }
    }

    /// The huge-page policy in force.
    pub fn policy(&self) -> &HugePagePolicy {
        &self.policy
    }

    fn region_huge(&mut self, vpn2m: u64) -> bool {
        match self.policy {
            HugePagePolicy::None => false,
            HugePagePolicy::All => true,
            HugePagePolicy::Fraction(p) => {
                let rng = &mut self.rng;
                *self.region_is_huge.entry(vpn2m).or_insert_with(|| {
                    let mut r = Rng64::new(rng.next_u64() ^ vpn2m.rotate_left(17));
                    r.chance(p)
                })
            }
        }
    }

    /// Returns whether `va` already has a mapping (no allocation).
    pub fn is_mapped(&self, va: VirtAddr) -> bool {
        self.map_2m.contains_key(&va.page_2m().raw())
            || self.map_4k.contains_key(&va.page_4k().raw())
    }

    /// Returns the page size backing `va`, allocating the mapping on first
    /// touch. Use [`Vmem::translate`] to get the full translation.
    pub fn page_size(&mut self, va: VirtAddr, frames: &mut FrameAllocator) -> PageSize {
        self.translate(va, frames).size
    }

    /// Translates `va`, allocating a frame on first touch.
    pub fn translate(&mut self, va: VirtAddr, frames: &mut FrameAllocator) -> Translation {
        let vpn2m = va.page_2m().raw();
        if let Some(&pfn) = self.map_2m.get(&vpn2m) {
            return Translation {
                vpn: vpn2m,
                pfn,
                size: PageSize::Huge2M,
            };
        }
        let vpn4k = va.page_4k().raw();
        if let Some(&pfn) = self.map_4k.get(&vpn4k) {
            return Translation {
                vpn: vpn4k,
                pfn,
                size: PageSize::Base4K,
            };
        }
        if self.region_huge(vpn2m) {
            let pfn = frames.alloc_2m();
            self.map_2m.insert(vpn2m, pfn);
            Translation {
                vpn: vpn2m,
                pfn,
                size: PageSize::Huge2M,
            }
        } else {
            let pfn = frames.alloc_4k();
            self.map_4k.insert(vpn4k, pfn);
            Translation {
                vpn: vpn4k,
                pfn,
                size: PageSize::Base4K,
            }
        }
    }

    /// Number of mapped 4 KB pages.
    pub fn mapped_4k(&self) -> usize {
        self.map_4k.len()
    }

    /// Number of mapped 2 MB pages.
    pub fn mapped_2m(&self) -> usize {
        self.map_2m.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(policy: HugePagePolicy) -> (Vmem, FrameAllocator) {
        (Vmem::new(policy, 1), FrameAllocator::new(4u64 << 30, 2))
    }

    #[test]
    fn mapping_is_stable() {
        let (mut vm, mut fa) = setup(HugePagePolicy::None);
        let va = VirtAddr::new(0x1234_5678);
        let t1 = vm.translate(va, &mut fa);
        let t2 = vm.translate(va, &mut fa);
        assert_eq!(t1, t2);
        assert_eq!(vm.mapped_4k(), 1);
    }

    #[test]
    fn same_page_same_frame_different_pages_differ() {
        let (mut vm, mut fa) = setup(HugePagePolicy::None);
        let a = vm.translate(VirtAddr::new(0x1000), &mut fa);
        let b = vm.translate(VirtAddr::new(0x1FFF), &mut fa);
        let c = vm.translate(VirtAddr::new(0x2000), &mut fa);
        assert_eq!(a.pfn, b.pfn);
        assert_ne!(a.pfn, c.pfn);
    }

    #[test]
    fn virtual_contiguity_not_physical() {
        let (mut vm, mut fa) = setup(HugePagePolicy::None);
        let mut contiguous = 0;
        let mut prev = vm.translate(VirtAddr::new(0), &mut fa).pfn;
        for p in 1..64u64 {
            let pfn = vm.translate(VirtAddr::new(p << 12), &mut fa).pfn;
            if pfn == prev + 1 {
                contiguous += 1;
            }
            prev = pfn;
        }
        assert!(
            contiguous < 8,
            "random placement should rarely be contiguous"
        );
    }

    #[test]
    fn all_huge_policy_maps_2m() {
        let (mut vm, mut fa) = setup(HugePagePolicy::All);
        let t = vm.translate(VirtAddr::new(0x40_0000), &mut fa);
        assert_eq!(t.size, PageSize::Huge2M);
        assert_eq!(vm.mapped_2m(), 1);
        // A different 4K page inside the same 2M region reuses the mapping.
        let t2 = vm.translate(VirtAddr::new(0x40_0000 + 0x3000), &mut fa);
        assert_eq!(t2.pfn, t.pfn);
        assert_eq!(vm.mapped_2m(), 1);
    }

    #[test]
    fn fraction_policy_is_deterministic_per_region() {
        let (mut vm, mut fa) = setup(HugePagePolicy::Fraction(0.5));
        let va = VirtAddr::new(7 << 21);
        let s1 = vm.translate(va, &mut fa).size;
        let s2 = vm.translate(va, &mut fa).size;
        assert_eq!(s1, s2);
    }

    #[test]
    fn fraction_policy_mixes_sizes() {
        let (mut vm, mut fa) = setup(HugePagePolicy::Fraction(0.5));
        for r in 0..64u64 {
            vm.translate(VirtAddr::new(r << 21), &mut fa);
        }
        assert!(vm.mapped_2m() > 0, "some regions must be huge");
        assert!(vm.mapped_4k() > 0, "some regions must be base pages");
    }

    #[test]
    fn pt_nodes_are_sequential_and_disjoint_from_data() {
        let mut fa = FrameAllocator::new(4u64 << 30, 3);
        let n1 = fa.alloc_pt_node();
        let n2 = fa.alloc_pt_node();
        assert_eq!(n2, n1 + 1);
        let d = fa.alloc_4k();
        assert!(d < n1, "data frames live below page-table frames");
    }

    #[test]
    fn huge_frames_disjoint_from_4k_frames() {
        let mut fa = FrameAllocator::new(4u64 << 30, 4);
        let pfn2m = fa.alloc_2m();
        // The 2M frame expressed in 4K frame numbers starts above the 4K region.
        let as_4k = pfn2m << (HUGE_PAGE_SHIFT_2M - PAGE_SHIFT_4K);
        let limit_4k = (4u64 << 30 >> PAGE_SHIFT_4K) / 2;
        assert!(as_4k >= limit_4k);
    }

    #[test]
    fn is_mapped_reflects_touch() {
        let (mut vm, mut fa) = setup(HugePagePolicy::None);
        let va = VirtAddr::new(0x8000);
        assert!(!vm.is_mapped(va));
        vm.translate(va, &mut fa);
        assert!(vm.is_mapped(va));
    }
}
