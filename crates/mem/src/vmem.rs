//! Virtual-memory model: on-demand VPN→PFN mapping with 4 KB and 2 MB pages.
//!
//! Physical frames are handed out by a [`FrameAllocator`] shared by every
//! core (so multi-core mixes contend for the same physical space, as in
//! ChampSim), with deterministic pseudo-random placement so that virtual
//! contiguity does *not* imply physical contiguity — the property that makes
//! page-cross prefetching in the virtual space interesting in the first
//! place (§II-A1).
//!
//! The physical space is partitioned to keep the model simple and
//! collision-free: the lower region holds 4 KB data frames, a middle region
//! holds 2 MB data frames, and the top region holds page-table node frames.
//! Within each region, every core owns a disjoint slice with its own RNG
//! stream, so an address space's frame assignment depends only on
//! `(seed, core, its own touch order)` — never on how accesses from
//! different mix cores interleave. Exhaustion surfaces as a typed
//! [`OomError`] instead of a panic, so callers (the campaign runner, or the
//! OS reclamation layer in `pagecross-os`) can handle it.

use pagecross_types::{PageSize, Rng64, VirtAddr, HUGE_PAGE_SHIFT_2M, PAGE_SHIFT_4K};
use std::collections::HashMap;
use std::collections::HashSet;
use std::fmt;

use crate::tlb::Translation;

/// Decides which virtual regions are backed by 2 MB pages, following the
/// methodology of "Page Size Aware Cache Prefetching" (MICRO'22, the paper’s reference \[89\]) where
/// a fraction of eligible regions is promoted to large pages.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum HugePagePolicy {
    /// All mappings use 4 KB pages (the paper's main campaign).
    #[default]
    None,
    /// Each aligned 2 MB virtual region is independently promoted to a huge
    /// page with this probability (deterministic per region given the seed).
    Fraction(f64),
    /// All mappings use 2 MB pages.
    All,
}

/// Physical-frame exhaustion, surfaced as a typed error instead of a panic
/// so a campaign records the cell as failed (or the OS layer reclaims a
/// frame) rather than aborting the worker thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OomError {
    /// The 4 KB data-frame pool is exhausted.
    Frames4K,
    /// The 2 MB data-frame pool is exhausted.
    Frames2M,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OomError::Frames4K => write!(f, "out of 4KB physical frames"),
            OomError::Frames2M => write!(f, "out of 2MB physical frames"),
        }
    }
}

impl std::error::Error for OomError {}

/// One core's private allocation context: its own RNG stream and its own
/// occupancy within its slice of each physical region.
#[derive(Clone, Debug)]
struct CoreFrames {
    rng: Rng64,
    used_4k: HashSet<u64>,
    used_2m: HashSet<u64>,
    next_pt: u64,
}

/// Shared physical-frame allocator, partitioned per core.
#[derive(Clone, Debug)]
pub struct FrameAllocator {
    total_4k_frames: u64,
    huge_region_base: u64,
    huge_frames: u64,
    pt_region_base: u64,
    pt_frames: u64,
    slice_4k: u64,
    slice_2m: u64,
    slice_pt: u64,
    per_core: Vec<CoreFrames>,
}

impl FrameAllocator {
    /// Creates a single-core allocator over `capacity_bytes` of physical
    /// memory.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is smaller than 64 MB (too small to partition).
    pub fn new(capacity_bytes: u64, seed: u64) -> Self {
        Self::with_cores(capacity_bytes, seed, 1)
    }

    /// Creates an allocator whose 4 KB / 2 MB / page-table regions are each
    /// split into `n_cores` disjoint per-core slices. Core 0 of a one-core
    /// allocator behaves bit-identically to the historical shared allocator.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is smaller than 64 MB or `n_cores` is zero.
    pub fn with_cores(capacity_bytes: u64, seed: u64, n_cores: u32) -> Self {
        assert!(capacity_bytes >= 64 << 20, "physical memory too small");
        assert!(n_cores > 0, "allocator needs at least one core");
        let total_frames = capacity_bytes >> PAGE_SHIFT_4K;
        // 1/2 for 4K data, 3/8 for 2M data, 1/8 for page-table nodes.
        let base_4k_frames = total_frames / 2;
        let huge_region_base = base_4k_frames;
        let huge_bytes = capacity_bytes * 3 / 8;
        let huge_frames = huge_bytes >> HUGE_PAGE_SHIFT_2M;
        let pt_region_base = total_frames - total_frames / 8;
        let pt_frames = total_frames - pt_region_base;
        let n = n_cores as u64;
        let slice_pt = pt_frames / n;
        let per_core = (0..n)
            .map(|i| CoreFrames {
                rng: Rng64::new(seed ^ 0x5EED_F4A3 ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                used_4k: HashSet::new(),
                used_2m: HashSet::new(),
                next_pt: pt_region_base + i * slice_pt,
            })
            .collect();
        Self {
            total_4k_frames: base_4k_frames,
            huge_region_base,
            huge_frames,
            pt_region_base,
            pt_frames,
            slice_4k: base_4k_frames / n,
            slice_2m: huge_frames / n,
            slice_pt,
            per_core,
        }
    }

    /// Number of per-core slices.
    pub fn num_cores(&self) -> u32 {
        self.per_core.len() as u32
    }

    /// Total 4 KB data frames across all cores.
    pub fn total_4k_frames(&self) -> u64 {
        self.total_4k_frames
    }

    /// Total 2 MB data frames across all cores.
    pub fn total_2m_frames(&self) -> u64 {
        self.huge_frames
    }

    /// First 4 KB frame number of the 2 MB data region.
    pub fn huge_region_base(&self) -> u64 {
        self.huge_region_base
    }

    /// First frame number of the page-table node region.
    pub fn pt_region_base(&self) -> u64 {
        self.pt_region_base
    }

    /// First 2 MB frame number of the huge region.
    fn base_2m(&self) -> u64 {
        self.huge_region_base >> (HUGE_PAGE_SHIFT_2M - PAGE_SHIFT_4K)
    }

    /// Allocates a random free 4 KB frame from `core`'s slice.
    pub fn alloc_4k(&mut self, core: u32) -> Result<u64, OomError> {
        let base = core as u64 * self.slice_4k;
        let slice = self.slice_4k;
        let c = &mut self.per_core[core as usize];
        if c.used_4k.len() as u64 >= slice {
            return Err(OomError::Frames4K);
        }
        loop {
            let pfn = base + c.rng.below(slice);
            if c.used_4k.insert(pfn) {
                return Ok(pfn);
            }
        }
    }

    /// Allocates a random free 2 MB frame from `core`'s slice; returns its
    /// 2 MB frame number.
    pub fn alloc_2m(&mut self, core: u32) -> Result<u64, OomError> {
        let base = self.base_2m() + core as u64 * self.slice_2m;
        let slice = self.slice_2m;
        let c = &mut self.per_core[core as usize];
        if c.used_2m.len() as u64 >= slice {
            return Err(OomError::Frames2M);
        }
        loop {
            let pfn2m = base + c.rng.below(slice);
            if c.used_2m.insert(pfn2m) {
                return Ok(pfn2m);
            }
        }
    }

    /// Returns a 4 KB frame to the pool it was allocated from (reclamation).
    pub fn free_4k(&mut self, pfn: u64) {
        debug_assert!(pfn < self.total_4k_frames, "not a 4KB data frame");
        let owner = (pfn / self.slice_4k).min(self.per_core.len() as u64 - 1);
        let removed = self.per_core[owner as usize].used_4k.remove(&pfn);
        debug_assert!(removed, "double free of 4KB frame {pfn}");
    }

    /// Returns a 2 MB frame to the pool it was allocated from (reclamation).
    pub fn free_2m(&mut self, pfn2m: u64) {
        let idx = pfn2m - self.base_2m();
        debug_assert!(idx < self.huge_frames, "not a 2MB data frame");
        let owner = (idx / self.slice_2m).min(self.per_core.len() as u64 - 1);
        let removed = self.per_core[owner as usize].used_2m.remove(&pfn2m);
        debug_assert!(removed, "double free of 2MB frame {pfn2m}");
    }

    /// Allocates a sequential page-table node frame (4 KB) from `core`'s
    /// slice of the page-table region.
    ///
    /// # Panics
    ///
    /// Panics if the core's page-table slice is exhausted (a configuration
    /// error: the region is sized for far more nodes than any workload
    /// touches).
    pub fn alloc_pt_node(&mut self, core: u32) -> u64 {
        let end = self.pt_region_base + (core as u64 + 1) * self.slice_pt;
        let c = &mut self.per_core[core as usize];
        assert!(c.next_pt < end, "out of page-table node frames");
        let f = c.next_pt;
        c.next_pt += 1;
        f
    }

    /// Frames handed out so far (diagnostics).
    pub fn allocated_frames(&self) -> u64 {
        self.per_core
            .iter()
            .enumerate()
            .map(|(i, c)| {
                c.used_4k.len() as u64
                    + c.used_2m.len() as u64
                    + (c.next_pt - (self.pt_region_base + i as u64 * self.slice_pt))
            })
            .sum()
    }

    /// Free 4 KB frames remaining in `core`'s slice.
    pub fn free_4k_frames(&self, core: u32) -> u64 {
        self.slice_4k - self.per_core[core as usize].used_4k.len() as u64
    }

    /// Free 2 MB frames remaining in `core`'s slice.
    pub fn free_2m_frames(&self, core: u32) -> u64 {
        self.slice_2m - self.per_core[core as usize].used_2m.len() as u64
    }

    /// Total page-table node frames across all cores (diagnostics).
    pub fn pt_frames(&self) -> u64 {
        self.pt_frames
    }
}

/// Per-address-space virtual memory: lazily maps pages on first touch.
#[derive(Clone, Debug)]
pub struct Vmem {
    policy: HugePagePolicy,
    core: u32,
    base_seed: u64,
    map_4k: HashMap<u64, u64>,
    map_2m: HashMap<u64, u64>,
    /// Cached promotion decision per 2 MB virtual region.
    region_is_huge: HashMap<u64, bool>,
}

impl Vmem {
    /// Creates a core-0 address space with the given huge-page policy.
    pub fn new(policy: HugePagePolicy, seed: u64) -> Self {
        Self::for_core(policy, seed, 0)
    }

    /// Creates an address space whose frames come from `core`'s slice of
    /// the shared allocator.
    pub fn for_core(policy: HugePagePolicy, seed: u64, core: u32) -> Self {
        Self {
            policy,
            core,
            base_seed: seed,
            map_4k: HashMap::new(),
            map_2m: HashMap::new(),
            region_is_huge: HashMap::new(),
        }
    }

    /// The huge-page policy in force.
    pub fn policy(&self) -> &HugePagePolicy {
        &self.policy
    }

    /// The core whose allocator slice backs this address space.
    pub fn core(&self) -> u32 {
        self.core
    }

    fn region_huge(&mut self, vpn2m: u64) -> bool {
        match self.policy {
            HugePagePolicy::None => false,
            HugePagePolicy::All => true,
            HugePagePolicy::Fraction(p) => {
                // The decision is a pure function of (seed, region): it must
                // not depend on the order regions are first touched, so no
                // shared RNG stream is consumed here.
                let seed = self.base_seed;
                *self.region_is_huge.entry(vpn2m).or_insert_with(|| {
                    let mut r = Rng64::new(seed ^ 0x7A6E_5141 ^ vpn2m.rotate_left(17));
                    r.chance(p)
                })
            }
        }
    }

    /// Returns whether `va` already has a mapping (no allocation).
    pub fn is_mapped(&self, va: VirtAddr) -> bool {
        self.map_2m.contains_key(&va.page_2m().raw())
            || self.map_4k.contains_key(&va.page_4k().raw())
    }

    /// Returns the page size backing `va`, allocating the mapping on first
    /// touch. Use [`Vmem::translate`] to get the full translation.
    pub fn page_size(
        &mut self,
        va: VirtAddr,
        frames: &mut FrameAllocator,
    ) -> Result<PageSize, OomError> {
        Ok(self.translate(va, frames)?.size)
    }

    /// Translates `va`, allocating a frame on first touch.
    pub fn translate(
        &mut self,
        va: VirtAddr,
        frames: &mut FrameAllocator,
    ) -> Result<Translation, OomError> {
        let vpn2m = va.page_2m().raw();
        if let Some(&pfn) = self.map_2m.get(&vpn2m) {
            return Ok(Translation {
                vpn: vpn2m,
                pfn,
                size: PageSize::Huge2M,
            });
        }
        let vpn4k = va.page_4k().raw();
        if let Some(&pfn) = self.map_4k.get(&vpn4k) {
            return Ok(Translation {
                vpn: vpn4k,
                pfn,
                size: PageSize::Base4K,
            });
        }
        if self.region_huge(vpn2m) {
            let pfn = frames.alloc_2m(self.core)?;
            self.map_2m.insert(vpn2m, pfn);
            Ok(Translation {
                vpn: vpn2m,
                pfn,
                size: PageSize::Huge2M,
            })
        } else {
            let pfn = frames.alloc_4k(self.core)?;
            self.map_4k.insert(vpn4k, pfn);
            Ok(Translation {
                vpn: vpn4k,
                pfn,
                size: PageSize::Base4K,
            })
        }
    }

    /// Installs a 4 KB mapping chosen by an external policy layer (the OS).
    pub fn map_4k_at(&mut self, vpn4k: u64, pfn: u64) {
        debug_assert!(
            !self
                .map_2m
                .contains_key(&(vpn4k >> (HUGE_PAGE_SHIFT_2M - PAGE_SHIFT_4K))),
            "4KB mapping inside a huge-mapped region"
        );
        self.map_4k.insert(vpn4k, pfn);
    }

    /// Installs a 2 MB mapping chosen by an external policy layer (the OS).
    pub fn map_2m_at(&mut self, vpn2m: u64, pfn2m: u64) {
        self.map_2m.insert(vpn2m, pfn2m);
    }

    /// Removes a 4 KB mapping; returns the frame it occupied.
    pub fn unmap_4k(&mut self, vpn4k: u64) -> Option<u64> {
        self.map_4k.remove(&vpn4k)
    }

    /// Removes a 2 MB mapping; returns the 2 MB frame it occupied.
    pub fn unmap_2m(&mut self, vpn2m: u64) -> Option<u64> {
        self.map_2m.remove(&vpn2m)
    }

    /// Removes and returns every 4 KB mapping inside the aligned 2 MB
    /// region `vpn2m`, sorted by VPN (deterministic promotion order).
    pub fn take_region_4k(&mut self, vpn2m: u64) -> Vec<(u64, u64)> {
        let lo = vpn2m << (HUGE_PAGE_SHIFT_2M - PAGE_SHIFT_4K);
        let hi = lo + (1 << (HUGE_PAGE_SHIFT_2M - PAGE_SHIFT_4K));
        let mut out: Vec<(u64, u64)> = self
            .map_4k
            .iter()
            .filter(|(&vpn, _)| vpn >= lo && vpn < hi)
            .map(|(&vpn, &pfn)| (vpn, pfn))
            .collect();
        out.sort_unstable();
        for (vpn, _) in &out {
            self.map_4k.remove(vpn);
        }
        out
    }

    /// Number of mapped 4 KB pages.
    pub fn mapped_4k(&self) -> usize {
        self.map_4k.len()
    }

    /// Number of mapped 2 MB pages.
    pub fn mapped_2m(&self) -> usize {
        self.map_2m.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(policy: HugePagePolicy) -> (Vmem, FrameAllocator) {
        (Vmem::new(policy, 1), FrameAllocator::new(4u64 << 30, 2))
    }

    #[test]
    fn mapping_is_stable() {
        let (mut vm, mut fa) = setup(HugePagePolicy::None);
        let va = VirtAddr::new(0x1234_5678);
        let t1 = vm.translate(va, &mut fa).unwrap();
        let t2 = vm.translate(va, &mut fa).unwrap();
        assert_eq!(t1, t2);
        assert_eq!(vm.mapped_4k(), 1);
    }

    #[test]
    fn same_page_same_frame_different_pages_differ() {
        let (mut vm, mut fa) = setup(HugePagePolicy::None);
        let a = vm.translate(VirtAddr::new(0x1000), &mut fa).unwrap();
        let b = vm.translate(VirtAddr::new(0x1FFF), &mut fa).unwrap();
        let c = vm.translate(VirtAddr::new(0x2000), &mut fa).unwrap();
        assert_eq!(a.pfn, b.pfn);
        assert_ne!(a.pfn, c.pfn);
    }

    #[test]
    fn virtual_contiguity_not_physical() {
        let (mut vm, mut fa) = setup(HugePagePolicy::None);
        let mut contiguous = 0;
        let mut prev = vm.translate(VirtAddr::new(0), &mut fa).unwrap().pfn;
        for p in 1..64u64 {
            let pfn = vm.translate(VirtAddr::new(p << 12), &mut fa).unwrap().pfn;
            if pfn == prev + 1 {
                contiguous += 1;
            }
            prev = pfn;
        }
        assert!(
            contiguous < 8,
            "random placement should rarely be contiguous"
        );
    }

    #[test]
    fn all_huge_policy_maps_2m() {
        let (mut vm, mut fa) = setup(HugePagePolicy::All);
        let t = vm.translate(VirtAddr::new(0x40_0000), &mut fa).unwrap();
        assert_eq!(t.size, PageSize::Huge2M);
        assert_eq!(vm.mapped_2m(), 1);
        // A different 4K page inside the same 2M region reuses the mapping.
        let t2 = vm
            .translate(VirtAddr::new(0x40_0000 + 0x3000), &mut fa)
            .unwrap();
        assert_eq!(t2.pfn, t.pfn);
        assert_eq!(vm.mapped_2m(), 1);
    }

    #[test]
    fn fraction_policy_is_deterministic_per_region() {
        let (mut vm, mut fa) = setup(HugePagePolicy::Fraction(0.5));
        let va = VirtAddr::new(7 << 21);
        let s1 = vm.translate(va, &mut fa).unwrap().size;
        let s2 = vm.translate(va, &mut fa).unwrap().size;
        assert_eq!(s1, s2);
    }

    #[test]
    fn fraction_policy_mixes_sizes() {
        let (mut vm, mut fa) = setup(HugePagePolicy::Fraction(0.5));
        for r in 0..64u64 {
            vm.translate(VirtAddr::new(r << 21), &mut fa).unwrap();
        }
        assert!(vm.mapped_2m() > 0, "some regions must be huge");
        assert!(vm.mapped_4k() > 0, "some regions must be base pages");
    }

    /// Regression for the THP promotion decision: `Fraction` is a pure
    /// function of (seed, region), so two permuted first-touch orders over
    /// the same regions produce bit-identical page-size decisions.
    #[test]
    fn fraction_decisions_ignore_first_touch_order() {
        let regions: Vec<u64> = (0..32).collect();
        let mut permuted = regions.clone();
        permuted.reverse();
        permuted.swap(3, 17);
        permuted.swap(8, 25);

        let sizes_for = |order: &[u64]| -> Vec<(u64, PageSize)> {
            let mut vm = Vmem::new(HugePagePolicy::Fraction(0.5), 42);
            let mut fa = FrameAllocator::new(4u64 << 30, 7);
            let mut out: Vec<(u64, PageSize)> = order
                .iter()
                .map(|&r| {
                    let t = vm.translate(VirtAddr::new(r << 21), &mut fa).unwrap();
                    (r, t.size)
                })
                .collect();
            out.sort_unstable_by_key(|&(r, _)| r);
            out
        };

        assert_eq!(
            sizes_for(&regions),
            sizes_for(&permuted),
            "promotion decisions must depend only on (seed, region)"
        );
    }

    #[test]
    fn pt_nodes_are_sequential_and_disjoint_from_data() {
        let mut fa = FrameAllocator::new(4u64 << 30, 3);
        let n1 = fa.alloc_pt_node(0);
        let n2 = fa.alloc_pt_node(0);
        assert_eq!(n2, n1 + 1);
        let d = fa.alloc_4k(0).unwrap();
        assert!(d < n1, "data frames live below page-table frames");
    }

    #[test]
    fn huge_frames_disjoint_from_4k_frames() {
        let mut fa = FrameAllocator::new(4u64 << 30, 4);
        let pfn2m = fa.alloc_2m(0).unwrap();
        // The 2M frame expressed in 4K frame numbers starts above the 4K region.
        let as_4k = pfn2m << (HUGE_PAGE_SHIFT_2M - PAGE_SHIFT_4K);
        let limit_4k = (4u64 << 30 >> PAGE_SHIFT_4K) / 2;
        assert!(as_4k >= limit_4k);
    }

    #[test]
    fn is_mapped_reflects_touch() {
        let (mut vm, mut fa) = setup(HugePagePolicy::None);
        let va = VirtAddr::new(0x8000);
        assert!(!vm.is_mapped(va));
        vm.translate(va, &mut fa).unwrap();
        assert!(vm.is_mapped(va));
    }

    #[test]
    fn exhaustion_is_a_typed_error_not_a_panic() {
        // 64 MB → 8192 4K data frames in one core slice.
        let mut fa = FrameAllocator::new(64 << 20, 5);
        let total = fa.total_4k_frames();
        for _ in 0..total {
            fa.alloc_4k(0).unwrap();
        }
        assert_eq!(fa.alloc_4k(0), Err(OomError::Frames4K));
        let huge = fa.total_2m_frames();
        for _ in 0..huge {
            fa.alloc_2m(0).unwrap();
        }
        assert_eq!(fa.alloc_2m(0), Err(OomError::Frames2M));
        assert_eq!(OomError::Frames4K.to_string(), "out of 4KB physical frames");
        assert_eq!(OomError::Frames2M.to_string(), "out of 2MB physical frames");
    }

    #[test]
    fn free_makes_frames_reusable() {
        let mut fa = FrameAllocator::new(64 << 20, 9);
        let total = fa.total_4k_frames();
        let mut frames = Vec::new();
        for _ in 0..total {
            frames.push(fa.alloc_4k(0).unwrap());
        }
        assert_eq!(fa.free_4k_frames(0), 0);
        fa.free_4k(frames[10]);
        assert_eq!(fa.free_4k_frames(0), 1);
        assert_eq!(fa.alloc_4k(0).unwrap(), frames[10]);
        let f2m = fa.alloc_2m(0).unwrap();
        fa.free_2m(f2m);
        assert!(fa.free_2m_frames(0) == fa.total_2m_frames());
    }

    #[test]
    fn per_core_slices_are_disjoint() {
        let mut fa = FrameAllocator::with_cores(4u64 << 30, 6, 4);
        let mut seen = HashSet::new();
        for core in 0..4 {
            for _ in 0..256 {
                let pfn = fa.alloc_4k(core).unwrap();
                assert!(seen.insert(pfn), "4K frame collision across cores");
                assert!(pfn < fa.total_4k_frames());
            }
            let p2m = fa.alloc_2m(core).unwrap();
            assert!(seen.insert(u64::MAX - p2m), "2M frame collision");
            let pt = fa.alloc_pt_node(core);
            assert!(pt >= fa.pt_region_base());
            assert!(seen.insert(pt), "PT frame collision");
        }
    }

    #[test]
    fn single_core_allocator_matches_historical_stream() {
        // `new` and `with_cores(.., 1)` are the same allocator; core 0's
        // stream is the historical shared stream.
        let mut a = FrameAllocator::new(4u64 << 30, 77);
        let mut b = FrameAllocator::with_cores(4u64 << 30, 77, 1);
        for _ in 0..64 {
            assert_eq!(a.alloc_4k(0), b.alloc_4k(0));
        }
        assert_eq!(a.alloc_2m(0), b.alloc_2m(0));
    }

    #[test]
    fn os_mapping_primitives_roundtrip() {
        let (mut vm, mut fa) = setup(HugePagePolicy::None);
        let pfn = fa.alloc_4k(0).unwrap();
        vm.map_4k_at(0x40, pfn);
        assert!(vm.is_mapped(VirtAddr::new(0x40 << 12)));
        assert_eq!(vm.unmap_4k(0x40), Some(pfn));
        assert!(!vm.is_mapped(VirtAddr::new(0x40 << 12)));

        // Build a partially-resident region, then promote it.
        let region = 3u64;
        for i in [1u64, 5, 9] {
            let f = fa.alloc_4k(0).unwrap();
            vm.map_4k_at((region << 9) + i, f);
        }
        let taken = vm.take_region_4k(region);
        assert_eq!(taken.len(), 3);
        assert!(taken.windows(2).all(|w| w[0].0 < w[1].0), "sorted by VPN");
        assert_eq!(vm.mapped_4k(), 0);
        let f2m = fa.alloc_2m(0).unwrap();
        vm.map_2m_at(region, f2m);
        let t = vm
            .translate(VirtAddr::new((region << 21) + 0x3000), &mut fa)
            .unwrap();
        assert_eq!(t.size, PageSize::Huge2M);
        assert_eq!(t.pfn, f2m);
        assert_eq!(vm.unmap_2m(region), Some(f2m));
    }
}
