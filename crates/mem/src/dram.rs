//! A simple DRAM timing model: fixed access latency plus per-channel
//! bandwidth serialisation.
//!
//! Each channel can start one 64 B transfer every `cycles_per_transfer`
//! cycles; requests that arrive while the channel is busy queue behind it.
//! This is deliberately simpler than a bank/row model, but it preserves the
//! property the paper depends on: useless (page-cross) prefetches consume
//! real bandwidth and delay demand traffic.

use crate::config::DramConfig;
use pagecross_types::LineAddr;

/// The DRAM device.
#[derive(Clone, Debug)]
pub struct Dram {
    latency: u64,
    cycles_per_transfer: u64,
    busy_until: Vec<u64>,
    /// Total transfers served.
    pub transfers: u64,
    /// Cycles requests spent queued behind busy channels.
    pub queue_cycles: u64,
}

impl Dram {
    /// Builds the device from a [`DramConfig`].
    ///
    /// # Panics
    ///
    /// Panics if the channel count is zero.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.channels > 0, "DRAM needs at least one channel");
        Self {
            latency: cfg.latency,
            cycles_per_transfer: cfg.cycles_per_transfer,
            busy_until: vec![0; cfg.channels as usize],
            transfers: 0,
            queue_cycles: 0,
        }
    }

    /// Issues a 64 B read/fill for `line` at `cycle`; returns the cycle the
    /// data is available.
    pub fn access(&mut self, line: LineAddr, cycle: u64) -> u64 {
        self.transfers += 1;
        let ch = (line.raw() % self.busy_until.len() as u64) as usize;
        let start = cycle.max(self.busy_until[ch]);
        self.queue_cycles += start - cycle;
        self.busy_until[ch] = start + self.cycles_per_transfer;
        start + self.latency
    }

    /// Configured access latency.
    pub fn latency(&self) -> u64 {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig {
            latency: 100,
            cycles_per_transfer: 10,
            channels: 1,
            capacity_bytes: 1 << 30,
        })
    }

    #[test]
    fn idle_access_takes_latency() {
        let mut d = dram();
        assert_eq!(d.access(LineAddr(1), 50), 150);
    }

    #[test]
    fn back_to_back_requests_serialise() {
        let mut d = dram();
        let a = d.access(LineAddr(1), 0);
        let b = d.access(LineAddr(2), 0);
        assert_eq!(a, 100);
        assert_eq!(b, 110, "second transfer waits one transfer slot");
        assert_eq!(d.queue_cycles, 10);
    }

    #[test]
    fn channels_are_independent() {
        let mut d = Dram::new(DramConfig {
            latency: 100,
            cycles_per_transfer: 10,
            channels: 2,
            capacity_bytes: 1 << 30,
        });
        let a = d.access(LineAddr(0), 0); // channel 0
        let b = d.access(LineAddr(1), 0); // channel 1
        assert_eq!(a, 100);
        assert_eq!(b, 100, "different channels do not serialise");
    }

    #[test]
    fn channel_frees_over_time() {
        let mut d = dram();
        d.access(LineAddr(1), 0);
        assert_eq!(
            d.access(LineAddr(2), 500),
            600,
            "idle again after the burst"
        );
    }

    #[test]
    fn transfer_count() {
        let mut d = dram();
        for i in 0..5 {
            d.access(LineAddr(i), i * 1000);
        }
        assert_eq!(d.transfers, 5);
    }
}
