//! Memory-hierarchy configuration with the paper's Table IV defaults.

/// Geometry and timing of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Access latency in cycles (added on hit; accumulated on the miss path).
    pub latency: u64,
    /// Number of MSHR entries.
    pub mshr_entries: u32,
}

impl CacheConfig {
    /// Number of sets implied by size/ways and a 64 B line.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * pagecross_types::LINE_SIZE)
    }
}

/// Geometry and timing of one TLB level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: u32,
    /// Associativity.
    pub ways: u32,
    /// Access latency in cycles.
    pub latency: u64,
}

impl TlbConfig {
    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.entries / self.ways
    }
}

/// Page-structure cache sizes per radix level (paper: split PSC,
/// L5: 1, L4: 2, L3: 8, L2: 32 entries, 1-cycle parallel lookup).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PscConfig {
    /// Entries caching PML5-level results.
    pub l5_entries: u32,
    /// Entries caching PML4-level results.
    pub l4_entries: u32,
    /// Entries caching PDPT-level results.
    pub l3_entries: u32,
    /// Entries caching PD-level results.
    pub l2_entries: u32,
}

/// DRAM timing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Baseline access latency in cycles.
    pub latency: u64,
    /// Minimum cycles between successive transfers on one channel
    /// (models 3200 MT/s bandwidth at 4 GHz).
    pub cycles_per_transfer: u64,
    /// Number of independent channels.
    pub channels: u32,
    /// Physical memory capacity in bytes.
    pub capacity_bytes: u64,
}

/// Complete memory-system configuration (Table IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemConfig {
    /// First-level instruction cache (32 KB, 8-way, 4-cycle).
    pub l1i: CacheConfig,
    /// First-level data cache (48 KB, 12-way, 5-cycle, VIPT).
    pub l1d: CacheConfig,
    /// Second-level cache (512 KB, 8-way, 10-cycle).
    pub l2c: CacheConfig,
    /// Last-level cache (2 MB/core, 16-way, 20-cycle).
    pub llc: CacheConfig,
    /// First-level data TLB (64-entry, 4-way, 1-cycle).
    pub dtlb: TlbConfig,
    /// First-level instruction TLB (64-entry, 4-way, 1-cycle).
    pub itlb: TlbConfig,
    /// Last-level TLB (1536-entry, 12-way, 8-cycle).
    pub stlb: TlbConfig,
    /// Split page-structure caches.
    pub psc: PscConfig,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Latency charged per page-table level access that the walker resolves
    /// from the PSC (1-cycle parallel search).
    pub psc_latency: u64,
}

impl MemConfig {
    /// Table IV configuration for an `n_cores`-core system. The LLC scales
    /// to 2 MB per core and DRAM capacity to 4 GB (1-core) / 16 GB (8-core).
    pub fn table_iv(n_cores: u32) -> Self {
        Self {
            l1i: CacheConfig {
                size_bytes: 32 << 10,
                ways: 8,
                latency: 4,
                mshr_entries: 8,
            },
            l1d: CacheConfig {
                size_bytes: 48 << 10,
                ways: 12,
                latency: 5,
                mshr_entries: 16,
            },
            l2c: CacheConfig {
                size_bytes: 512 << 10,
                ways: 8,
                latency: 10,
                mshr_entries: 32,
            },
            llc: CacheConfig {
                size_bytes: (2u64 << 20) * n_cores as u64,
                ways: 16,
                latency: 20,
                mshr_entries: 64,
            },
            dtlb: TlbConfig {
                entries: 64,
                ways: 4,
                latency: 1,
            },
            itlb: TlbConfig {
                entries: 64,
                ways: 4,
                latency: 1,
            },
            stlb: TlbConfig {
                entries: 1536,
                ways: 12,
                latency: 8,
            },
            psc: PscConfig {
                l5_entries: 1,
                l4_entries: 2,
                l3_entries: 8,
                l2_entries: 32,
            },
            dram: DramConfig {
                latency: 160,
                cycles_per_transfer: 10,
                channels: if n_cores > 1 { 4 } else { 2 },
                capacity_bytes: if n_cores > 1 { 16u64 << 30 } else { 4u64 << 30 },
            },
            psc_latency: 1,
        }
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        Self::table_iv(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_geometry() {
        let c = MemConfig::table_iv(1);
        assert_eq!(c.l1d.sets(), 64); // 48KB / (12 * 64B)
        assert_eq!(c.l1i.sets(), 64);
        assert_eq!(c.l2c.sets(), 1024);
        assert_eq!(c.llc.sets(), 2048);
        assert_eq!(c.dtlb.sets(), 16);
        assert_eq!(c.stlb.sets(), 128);
    }

    #[test]
    fn llc_scales_with_cores() {
        let c8 = MemConfig::table_iv(8);
        assert_eq!(c8.llc.size_bytes, 16u64 << 20);
        assert_eq!(c8.dram.capacity_bytes, 16u64 << 30);
    }

    #[test]
    fn default_is_single_core() {
        assert_eq!(MemConfig::default(), MemConfig::table_iv(1));
    }
}
