//! A set-associative cache with LRU replacement and per-block prefetch
//! metadata.
//!
//! The cache is purely *structural*: it answers hit/miss, installs fills and
//! reports evictions. Timing (latencies, MSHR merging, DRAM queuing) lives
//! in [`crate::system::MemorySystem`], which composes levels into the
//! Table IV hierarchy.
//!
//! Each block carries the paper's **Page-Cross Bit (PCB)** — "MOKA augments
//! each L1D block with an additional bit indicating whether the block has
//! been fetched in L1D by a page-cross prefetch or not" (§III-C2) — plus a
//! prefetched bit and a demand-hit counter so fill-side usefulness
//! (useful = served ≥ 1 demand hit before eviction) can be classified.

use crate::config::CacheConfig;
use pagecross_types::{CacheStats, LineAddr};

/// Provenance of a block fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FillKind {
    /// Demand fill.
    Demand,
    /// Prefetch fill that stayed within the triggering page.
    PrefetchInPage,
    /// Prefetch fill that crossed a 4 KB page boundary (sets the PCB).
    PrefetchPageCross,
}

impl FillKind {
    /// True for either prefetch variant.
    #[inline]
    pub const fn is_prefetch(self) -> bool {
        !matches!(self, FillKind::Demand)
    }
}

#[derive(Clone, Copy, Debug)]
struct Block {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Fetched by a prefetch (any kind).
    prefetched: bool,
    /// Page-Cross Bit: fetched by a page-cross prefetch.
    pcb: bool,
    /// Demand hits served since fill.
    hits: u32,
    /// LRU timestamp.
    lru: u64,
}

impl Block {
    const INVALID: Block = Block {
        tag: 0,
        valid: false,
        dirty: false,
        prefetched: false,
        pcb: false,
        hits: 0,
        lru: 0,
    };
}

/// Description of a block evicted by a fill, delivered to the caller so
/// filter training (pUB negative training on useless PCB evictions) and
/// writeback accounting can run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Eviction {
    /// Line address of the evicted block.
    pub line: LineAddr,
    /// The evicted block was dirty.
    pub dirty: bool,
    /// The evicted block was brought in by a prefetch.
    pub prefetched: bool,
    /// The evicted block's Page-Cross Bit.
    pub pcb: bool,
    /// Demand hits the block served during its lifetime.
    pub hits: u32,
}

/// Result of a demand lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lookup {
    /// The line was present.
    pub hit: bool,
    /// On a hit: the block had been brought in by a prefetch and this is its
    /// first demand hit (the "promote prefetch to useful" event).
    pub first_hit_on_prefetch: bool,
    /// On a hit: the block's PCB (page-cross prefetched block).
    pub pcb: bool,
}

/// A set-associative, write-back, write-allocate cache with LRU replacement.
#[derive(Clone, Debug)]
pub struct Cache {
    name: &'static str,
    sets: u64,
    ways: usize,
    blocks: Vec<Block>,
    tick: u64,
    /// Aggregate statistics (demand/prefetch split).
    pub stats: CacheStats,
}

impl Cache {
    /// Builds a cache from a [`CacheConfig`].
    ///
    /// # Panics
    ///
    /// Panics if the configured set count is not a power of two or is zero.
    pub fn new(name: &'static str, cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "{name}: set count must be a power of two"
        );
        Self {
            name,
            sets,
            ways: cfg.ways as usize,
            blocks: vec![Block::INVALID; (sets * cfg.ways as u64) as usize],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Cache name (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.sets
    }

    /// Associativity.
    pub fn num_ways(&self) -> usize {
        self.ways
    }

    #[inline]
    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let set = (line.raw() & (self.sets - 1)) as usize;
        let base = set * self.ways;
        base..base + self.ways
    }

    #[inline]
    fn tag(line: LineAddr) -> u64 {
        line.raw()
    }

    /// Checks presence without updating LRU or statistics.
    pub fn probe(&self, line: LineAddr) -> bool {
        let tag = Self::tag(line);
        self.blocks[self.set_range(line)]
            .iter()
            .any(|b| b.valid && b.tag == tag)
    }

    /// Performs a demand lookup, updating LRU, hit counters, and statistics.
    /// Does **not** fill on miss — the owner decides what to fill after the
    /// lower levels respond (see [`Cache::fill`]).
    pub fn demand_access(&mut self, line: LineAddr, is_store: bool) -> Lookup {
        self.tick += 1;
        self.stats.demand_accesses += 1;
        let tag = Self::tag(line);
        let tick = self.tick;
        let range = self.set_range(line);
        for b in &mut self.blocks[range] {
            if b.valid && b.tag == tag {
                b.lru = tick;
                b.dirty |= is_store;
                b.hits += 1;
                let first = b.prefetched && b.hits == 1;
                if first {
                    self.stats.prefetch_useful += 1;
                    if b.pcb {
                        self.stats.pgc_useful += 1;
                    }
                }
                return Lookup {
                    hit: true,
                    first_hit_on_prefetch: first,
                    pcb: b.pcb,
                };
            }
        }
        self.stats.demand_misses += 1;
        Lookup {
            hit: false,
            first_hit_on_prefetch: false,
            pcb: false,
        }
    }

    /// Touches a line on behalf of a prefetch probe (no demand statistics,
    /// no LRU update). Returns presence.
    pub fn prefetch_probe(&self, line: LineAddr) -> bool {
        self.probe(line)
    }

    /// Performs a prefetch lookup: counted under the prefetch statistics
    /// (never demand), refreshing LRU on a hit so prefetch traffic keeps
    /// resident lines warm. Misses are left for the owner to fill (or not);
    /// a prefetch probe is not a demand hit, so the block's usefulness
    /// counter is untouched.
    pub fn prefetch_access(&mut self, line: LineAddr) -> bool {
        self.stats.prefetch_accesses += 1;
        let tag = Self::tag(line);
        let range = self.set_range(line);
        for b in &mut self.blocks[range] {
            if b.valid && b.tag == tag {
                self.tick += 1;
                b.lru = self.tick;
                self.stats.prefetch_hits += 1;
                return true;
            }
        }
        false
    }

    /// Installs a line, evicting the LRU victim if the set is full.
    ///
    /// Re-filling a resident line only refreshes metadata (this happens when
    /// two misses to the same line race through the MSHR path).
    pub fn fill(&mut self, line: LineAddr, kind: FillKind, dirty: bool) -> Option<Eviction> {
        self.tick += 1;
        if kind.is_prefetch() {
            self.stats.prefetch_fills += 1;
            if matches!(kind, FillKind::PrefetchPageCross) {
                self.stats.pgc_fills += 1;
            }
        }
        let tag = Self::tag(line);
        let tick = self.tick;
        let range = self.set_range(line);

        // Already resident: refresh.
        if let Some(b) = self.blocks[range.clone()]
            .iter_mut()
            .find(|b| b.valid && b.tag == tag)
        {
            b.lru = tick;
            b.dirty |= dirty;
            return None;
        }

        // Free way?
        if let Some(b) = self.blocks[range.clone()].iter_mut().find(|b| !b.valid) {
            *b = Block {
                tag,
                valid: true,
                dirty,
                prefetched: kind.is_prefetch(),
                pcb: matches!(kind, FillKind::PrefetchPageCross),
                hits: 0,
                lru: tick,
            };
            return None;
        }

        // Evict LRU.
        let victim = self.blocks[range]
            .iter_mut()
            .min_by_key(|b| b.lru)
            .expect("set has at least one way");
        let ev = Eviction {
            line: LineAddr(victim.tag),
            dirty: victim.dirty,
            prefetched: victim.prefetched,
            pcb: victim.pcb,
            hits: victim.hits,
        };
        if ev.prefetched && ev.hits == 0 {
            self.stats.prefetch_useless += 1;
            if ev.pcb {
                self.stats.pgc_useless += 1;
            }
        }
        if ev.dirty {
            self.stats.writebacks += 1;
        }
        *victim = Block {
            tag,
            valid: true,
            dirty,
            prefetched: kind.is_prefetch(),
            pcb: matches!(kind, FillKind::PrefetchPageCross),
            hits: 0,
            lru: tick,
        };
        Some(ev)
    }

    /// Invalidates a line if present, returning its eviction record.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Eviction> {
        let tag = Self::tag(line);
        let range = self.set_range(line);
        for b in &mut self.blocks[range] {
            if b.valid && b.tag == tag {
                let ev = Eviction {
                    line: LineAddr(b.tag),
                    dirty: b.dirty,
                    prefetched: b.prefetched,
                    pcb: b.pcb,
                    hits: b.hits,
                };
                *b = Block::INVALID;
                return Some(ev);
            }
        }
        None
    }

    /// Number of valid blocks (occupancy), mainly for tests and reports.
    pub fn occupancy(&self) -> usize {
        self.blocks.iter().filter(|b| b.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways of 64B lines = 512B.
        Cache::new(
            "tiny",
            CacheConfig {
                size_bytes: 512,
                ways: 2,
                latency: 1,
                mshr_entries: 4,
            },
        )
    }

    fn line(n: u64) -> LineAddr {
        LineAddr(n)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(!c.demand_access(line(5), false).hit);
        assert!(c.fill(line(5), FillKind::Demand, false).is_none());
        assert!(c.demand_access(line(5), false).hit);
        assert_eq!(c.stats.demand_accesses, 2);
        assert_eq!(c.stats.demand_misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.fill(line(0), FillKind::Demand, false);
        c.fill(line(4), FillKind::Demand, false);
        // Touch line 0 so line 4 becomes LRU.
        c.demand_access(line(0), false);
        let ev = c.fill(line(8), FillKind::Demand, false).expect("eviction");
        assert_eq!(ev.line, line(4));
        assert!(c.probe(line(0)));
        assert!(!c.probe(line(4)));
    }

    #[test]
    fn pcb_set_only_for_page_cross_fills() {
        let mut c = tiny();
        c.fill(line(1), FillKind::PrefetchPageCross, false);
        c.fill(line(2), FillKind::PrefetchInPage, false);
        let l1 = c.demand_access(line(1), false);
        let l2 = c.demand_access(line(2), false);
        assert!(l1.pcb);
        assert!(!l2.pcb);
        assert_eq!(c.stats.pgc_fills, 1);
        assert_eq!(c.stats.prefetch_fills, 2);
    }

    #[test]
    fn first_demand_hit_promotes_prefetch_to_useful() {
        let mut c = tiny();
        c.fill(line(9), FillKind::PrefetchPageCross, false);
        let first = c.demand_access(line(9), false);
        assert!(first.first_hit_on_prefetch);
        let second = c.demand_access(line(9), false);
        assert!(!second.first_hit_on_prefetch);
        assert_eq!(c.stats.prefetch_useful, 1);
        assert_eq!(c.stats.pgc_useful, 1);
    }

    #[test]
    fn useless_prefetch_counted_on_eviction() {
        let mut c = tiny();
        c.fill(line(0), FillKind::PrefetchPageCross, false);
        c.fill(line(4), FillKind::Demand, false);
        // Evict line 0 (LRU) without it ever serving a hit.
        let ev = c.fill(line(8), FillKind::Demand, false).unwrap();
        assert_eq!(ev.line, line(0));
        assert!(ev.pcb && ev.hits == 0);
        assert_eq!(c.stats.prefetch_useless, 1);
        assert_eq!(c.stats.pgc_useless, 1);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.fill(line(0), FillKind::Demand, false);
        c.demand_access(line(0), true); // store dirties the block
        c.fill(line(4), FillKind::Demand, false);
        c.fill(line(8), FillKind::Demand, false); // evicts line 0 or 4
        c.fill(line(12), FillKind::Demand, false);
        assert!(c.stats.writebacks >= 1);
    }

    #[test]
    fn refill_of_resident_line_does_not_evict() {
        let mut c = tiny();
        c.fill(line(3), FillKind::Demand, false);
        assert!(c.fill(line(3), FillKind::Demand, true).is_none());
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c = tiny();
        c.fill(line(7), FillKind::Demand, true);
        let ev = c.invalidate(line(7)).unwrap();
        assert!(ev.dirty);
        assert!(!c.probe(line(7)));
        assert!(c.invalidate(line(7)).is_none());
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        for n in 0..4 {
            c.fill(line(n), FillKind::Demand, false);
        }
        assert_eq!(c.occupancy(), 4);
        for n in 0..4 {
            assert!(c.probe(line(n)));
        }
    }

    #[test]
    fn prefetch_access_keeps_demand_counters_disjoint() {
        let mut c = tiny();
        c.fill(line(5), FillKind::Demand, false);
        assert!(c.prefetch_access(line(5)));
        assert!(!c.prefetch_access(line(6)));
        // Prefetch traffic lands only in the prefetch counters...
        assert_eq!(c.stats.prefetch_accesses, 2);
        assert_eq!(c.stats.prefetch_hits, 1);
        assert_eq!(c.stats.demand_accesses, 0);
        assert_eq!(c.stats.demand_misses, 0);
        // ...and demand traffic only in the demand counters.
        c.demand_access(line(5), false);
        c.demand_access(line(6), false);
        assert_eq!(c.stats.demand_accesses, 2);
        assert_eq!(c.stats.demand_misses, 1);
        assert_eq!(c.stats.prefetch_accesses, 2);
        assert_eq!(c.stats.prefetch_hits, 1);
    }

    #[test]
    fn prefetch_access_refreshes_lru() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0.
        c.fill(line(0), FillKind::Demand, false);
        c.fill(line(4), FillKind::Demand, false);
        // A prefetch hit on line 0 makes line 4 the LRU victim.
        assert!(c.prefetch_access(line(0)));
        let ev = c.fill(line(8), FillKind::Demand, false).expect("eviction");
        assert_eq!(ev.line, line(4));
        assert!(c.probe(line(0)));
    }

    #[test]
    fn prefetch_access_does_not_promote_usefulness() {
        let mut c = tiny();
        c.fill(line(9), FillKind::PrefetchPageCross, false);
        assert!(c.prefetch_access(line(9)));
        // A prefetch probe is not a demand hit: no usefulness promotion.
        assert_eq!(c.stats.prefetch_useful, 0);
        let first = c.demand_access(line(9), false);
        assert!(first.first_hit_on_prefetch);
        assert_eq!(c.stats.prefetch_useful, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        let _ = Cache::new(
            "bad",
            CacheConfig {
                size_bytes: 3 * 64,
                ways: 1,
                latency: 1,
                mshr_entries: 1,
            },
        );
    }
}
