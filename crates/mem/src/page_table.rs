//! 5-level radix page table, split page-structure caches, and the hardware
//! page-table walker.
//!
//! The walker models the three properties the paper's methodology calls out
//! (§IV): (i) the *variable latency* of walks — the number of memory
//! references depends on how deep the page-structure caches (PSCs) reach;
//! (ii) walk references go *through the cache hierarchy* (the walker emits a
//! [`WalkPlan`] of PTE physical addresses that [`crate::system::MemorySystem`]
//! plays through the caches, pointer-chased sequentially); and (iii) *cache
//! locality* in walks — adjacent virtual pages share PT nodes, so their PTEs
//! fall on the same cache lines.
//!
//! 2 MB mappings terminate at the PD level (one reference fewer), matching
//! x86.

use crate::config::PscConfig;
use crate::tlb::Translation;
use crate::vmem::{FrameAllocator, OomError, Vmem};
use pagecross_types::{PageSize, PhysAddr, VirtAddr, PAGE_SHIFT_4K};
use std::collections::HashMap;

/// Radix levels of the 5-level table, from root to leaf.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// PML5 (root).
    L5,
    /// PML4.
    L4,
    /// PDPT.
    L3,
    /// PD (leaf for 2 MB pages).
    L2,
    /// PT (leaf for 4 KB pages).
    L1,
}

impl Level {
    /// Bit position of this level's index within the virtual address.
    pub const fn shift(self) -> u32 {
        match self {
            Level::L5 => 48,
            Level::L4 => 39,
            Level::L3 => 30,
            Level::L2 => 21,
            Level::L1 => 12,
        }
    }

    /// 9-bit index for `va` at this level.
    pub fn index(self, va: VirtAddr) -> u64 {
        (va.raw() >> self.shift()) & 0x1FF
    }
}

/// A fully-associative, LRU page-structure cache for one radix level.
#[derive(Clone, Debug)]
struct Psc {
    entries: Vec<(u64, u64)>, // (key, lru)
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Psc {
    fn new(capacity: u32) -> Self {
        Self {
            entries: Vec::with_capacity(capacity as usize),
            capacity: capacity.max(1) as usize,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn lookup(&mut self, key: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            e.1 = tick;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    fn fill(&mut self, key: u64) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            e.1 = tick;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((key, tick));
        } else if let Some(victim) = self.entries.iter_mut().min_by_key(|(_, lru)| *lru) {
            *victim = (key, tick);
        }
    }

    /// Drops the entry for `key` (shootdown); no statistics side effects.
    fn invalidate(&mut self, key: u64) -> bool {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.swap_remove(i);
            true
        } else {
            false
        }
    }
}

/// The plan for one page walk: the PTE lines to reference (pointer-chased in
/// order), the resulting translation, and how many levels the PSCs skipped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalkPlan {
    /// Physical addresses of the PTEs to access, root-most first.
    pub refs: Vec<PhysAddr>,
    /// The translation produced by the walk.
    pub translation: Translation,
    /// Radix levels skipped thanks to PSC hits.
    pub levels_skipped: u32,
}

/// Per-address-space page table with walker state (PSCs + node directory).
#[derive(Clone, Debug)]
pub struct PageWalker {
    /// Core this walker's address space belongs to (selects the PT-node
    /// frame slice in the allocator).
    core: u32,
    /// Root (PML5) node frame.
    root_frame: u64,
    /// Interior node frames keyed by (level-below-the-node, va prefix).
    nodes: HashMap<(u8, u64), u64>,
    psc_l5: Psc,
    psc_l4: Psc,
    psc_l3: Psc,
    psc_l2: Psc,
}

impl PageWalker {
    /// Creates a core-0 walker with the given PSC geometry; allocates the
    /// root node.
    pub fn new(cfg: PscConfig, frames: &mut FrameAllocator) -> Self {
        Self::for_core(cfg, frames, 0)
    }

    /// Creates a walker whose PT nodes come from `core`'s frame slice.
    pub fn for_core(cfg: PscConfig, frames: &mut FrameAllocator, core: u32) -> Self {
        Self {
            core,
            root_frame: frames.alloc_pt_node(core),
            nodes: HashMap::new(),
            psc_l5: Psc::new(cfg.l5_entries),
            psc_l4: Psc::new(cfg.l4_entries),
            psc_l3: Psc::new(cfg.l3_entries),
            psc_l2: Psc::new(cfg.l2_entries),
        }
    }

    fn node_frame(&mut self, level: u8, prefix: u64, frames: &mut FrameAllocator) -> u64 {
        let core = self.core;
        *self
            .nodes
            .entry((level, prefix))
            .or_insert_with(|| frames.alloc_pt_node(core))
    }

    fn pte_addr(frame: u64, index: u64) -> PhysAddr {
        PhysAddr::new((frame << PAGE_SHIFT_4K) | (index * 8))
    }

    /// Performs a walk for `va`, consulting and updating the PSCs, and
    /// returns the ordered PTE references plus the final translation.
    ///
    /// The address-space mapping itself comes from `vmem` (allocated on
    /// first touch, so a speculative prefetch walk also materialises the
    /// mapping — the simulator equivalent of the OS having pre-populated the
    /// page table).
    pub fn walk(
        &mut self,
        va: VirtAddr,
        vmem: &mut Vmem,
        frames: &mut FrameAllocator,
    ) -> Result<WalkPlan, OomError> {
        let translation = vmem.translate(va, frames)?;
        let is_huge = translation.size == PageSize::Huge2M;

        let p5 = va.raw() >> Level::L5.shift(); // key for PSC-L5 (PML5E result)
        let p4 = va.raw() >> Level::L4.shift();
        let p3 = va.raw() >> Level::L3.shift();
        let p2 = va.raw() >> Level::L2.shift();

        // Deepest-first PSC probe; a hit at level k means levels >= k are
        // already resolved and the walk resumes below it.
        // For 4 KB pages the deepest useful PSC is L2 (points at the PT
        // node); for 2 MB pages the leaf is the PDE, so the deepest useful
        // PSC is L3 (points at the PD node).
        let mut refs = Vec::with_capacity(5);
        let mut skipped = 0u32;

        let start_level: u8 = if !is_huge && self.psc_l2.lookup(p2) {
            skipped = 4;
            1
        } else if self.psc_l3.lookup(p3) {
            skipped = 3;
            2
        } else if self.psc_l4.lookup(p4) {
            skipped = 2;
            3
        } else if self.psc_l5.lookup(p5) {
            skipped = 1;
            4
        } else {
            5
        };

        // Walk remaining levels, root-most first.
        if start_level >= 5 {
            refs.push(Self::pte_addr(self.root_frame, Level::L5.index(va)));
        }
        if start_level >= 4 {
            let f = self.node_frame(4, p5, frames);
            refs.push(Self::pte_addr(f, Level::L4.index(va)));
        }
        if start_level >= 3 {
            let f = self.node_frame(3, p4, frames);
            refs.push(Self::pte_addr(f, Level::L3.index(va)));
        }
        if start_level >= 2 {
            let f = self.node_frame(2, p3, frames);
            refs.push(Self::pte_addr(f, Level::L2.index(va)));
        }
        if !is_huge && start_level >= 1 {
            let f = self.node_frame(1, p2, frames);
            refs.push(Self::pte_addr(f, Level::L1.index(va)));
        }

        // Fill the PSCs for every level the walk resolved.
        self.psc_l5.fill(p5);
        self.psc_l4.fill(p4);
        self.psc_l3.fill(p3);
        if !is_huge {
            self.psc_l2.fill(p2);
        }

        Ok(WalkPlan {
            refs,
            translation,
            levels_skipped: skipped,
        })
    }

    /// Total PSC hits across all levels (diagnostics).
    pub fn psc_hits(&self) -> u64 {
        self.psc_l5.hits + self.psc_l4.hits + self.psc_l3.hits + self.psc_l2.hits
    }

    /// Shootdown of a single 4 KB page: conservatively drops the PSC-L2
    /// entry covering it (the cached PT-node pointer may now lead to a
    /// stale leaf). Returns whether an entry was dropped.
    pub fn invalidate_psc_page(&mut self, vpn4k: u64) -> bool {
        self.psc_l2.invalidate(vpn4k >> 9)
    }

    /// Shootdown of an aligned 2 MB region after THP promotion/demotion:
    /// drops the PSC-L2 entry for the region and, conservatively, the
    /// PSC-L3 entry above it (the PD leaf changed shape). Returns the
    /// number of entries dropped.
    pub fn invalidate_psc_region(&mut self, vpn2m: u64) -> u32 {
        u32::from(self.psc_l2.invalidate(vpn2m)) + u32::from(self.psc_l3.invalidate(vpn2m >> 9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vmem::HugePagePolicy;

    fn setup() -> (PageWalker, Vmem, FrameAllocator) {
        let mut fa = FrameAllocator::new(4u64 << 30, 7);
        let w = PageWalker::new(
            PscConfig {
                l5_entries: 1,
                l4_entries: 2,
                l3_entries: 8,
                l2_entries: 32,
            },
            &mut fa,
        );
        (w, Vmem::new(HugePagePolicy::None, 9), fa)
    }

    #[test]
    fn cold_walk_references_five_levels() {
        let (mut w, mut vm, mut fa) = setup();
        let plan = w
            .walk(VirtAddr::new(0x7000_1234), &mut vm, &mut fa)
            .unwrap();
        assert_eq!(plan.refs.len(), 5);
        assert_eq!(plan.levels_skipped, 0);
        assert_eq!(plan.translation.size, PageSize::Base4K);
    }

    #[test]
    fn warm_walk_hits_psc_l2_single_reference() {
        let (mut w, mut vm, mut fa) = setup();
        let a = VirtAddr::new(0x7000_1000);
        let b = VirtAddr::new(0x7000_2000); // same PT node (same 2MB region)
        w.walk(a, &mut vm, &mut fa).unwrap();
        let plan = w.walk(b, &mut vm, &mut fa).unwrap();
        assert_eq!(
            plan.refs.len(),
            1,
            "PSC-L2 hit leaves only the PT reference"
        );
        assert_eq!(plan.levels_skipped, 4);
    }

    #[test]
    fn adjacent_pages_share_pte_cache_line() {
        let (mut w, mut vm, mut fa) = setup();
        let a = w
            .walk(VirtAddr::new(0x7000_0000), &mut vm, &mut fa)
            .unwrap();
        let b = w
            .walk(VirtAddr::new(0x7000_1000), &mut vm, &mut fa)
            .unwrap();
        let pte_a = *a.refs.last().unwrap();
        let pte_b = *b.refs.last().unwrap();
        assert_eq!(pte_a.line(), pte_b.line(), "adjacent PTEs share a 64B line");
        assert_ne!(pte_a, pte_b);
    }

    #[test]
    fn distant_region_misses_deep_psc() {
        let (mut w, mut vm, mut fa) = setup();
        w.walk(VirtAddr::new(0x7000_1000), &mut vm, &mut fa)
            .unwrap();
        // Different 1GB region: PSC-L2/L3 miss, PSC-L4 should hit.
        let plan = w
            .walk(VirtAddr::new(0x40_7000_1000), &mut vm, &mut fa)
            .unwrap();
        assert_eq!(plan.refs.len(), 3, "PSC-L4 hit walks PDPT, PD, PT");
    }

    #[test]
    fn huge_page_walk_terminates_at_pd() {
        let mut fa = FrameAllocator::new(4u64 << 30, 7);
        let mut w = PageWalker::new(
            PscConfig {
                l5_entries: 1,
                l4_entries: 2,
                l3_entries: 8,
                l2_entries: 32,
            },
            &mut fa,
        );
        let mut vm = Vmem::new(HugePagePolicy::All, 9);
        let plan = w
            .walk(VirtAddr::new(0x7000_1234), &mut vm, &mut fa)
            .unwrap();
        assert_eq!(plan.refs.len(), 4, "2MB walk: PML5, PML4, PDPT, PD");
        assert_eq!(plan.translation.size, PageSize::Huge2M);
        // Second walk in the same region: PSC-L3 hit -> single PD reference.
        let plan2 = w
            .walk(VirtAddr::new(0x7000_1234 + 0x3000), &mut vm, &mut fa)
            .unwrap();
        assert_eq!(plan2.refs.len(), 1);
    }

    #[test]
    fn translation_matches_vmem() {
        let (mut w, mut vm, mut fa) = setup();
        let va = VirtAddr::new(0x1234_5678);
        let plan = w.walk(va, &mut vm, &mut fa).unwrap();
        let direct = vm.translate(va, &mut fa).unwrap();
        assert_eq!(plan.translation, direct);
    }

    #[test]
    fn level_indices() {
        let va = VirtAddr::new(
            (3u64 << 48) | (5u64 << 39) | (7u64 << 30) | (9u64 << 21) | (11u64 << 12),
        );
        assert_eq!(Level::L5.index(va), 3);
        assert_eq!(Level::L4.index(va), 5);
        assert_eq!(Level::L3.index(va), 7);
        assert_eq!(Level::L2.index(va), 9);
        assert_eq!(Level::L1.index(va), 11);
    }

    #[test]
    fn psc_hit_counter_increases() {
        let (mut w, mut vm, mut fa) = setup();
        w.walk(VirtAddr::new(0x1000), &mut vm, &mut fa).unwrap();
        let before = w.psc_hits();
        w.walk(VirtAddr::new(0x2000), &mut vm, &mut fa).unwrap();
        assert!(w.psc_hits() > before);
    }

    #[test]
    fn psc_invalidation_forces_a_deeper_walk() {
        let (mut w, mut vm, mut fa) = setup();
        let va = VirtAddr::new(0x7000_1000);
        w.walk(va, &mut vm, &mut fa).unwrap();
        assert_eq!(
            w.walk(va, &mut vm, &mut fa).unwrap().refs.len(),
            1,
            "warm walk: PSC-L2 hit"
        );
        assert!(w.invalidate_psc_page(va.raw() >> PAGE_SHIFT_4K));
        assert_eq!(
            w.walk(va, &mut vm, &mut fa).unwrap().refs.len(),
            2,
            "PSC-L2 shot down, PSC-L3 still warm: PD + PT references"
        );
        assert_eq!(w.invalidate_psc_region(va.raw() >> Level::L2.shift()), 2);
        assert_eq!(
            w.walk(va, &mut vm, &mut fa).unwrap().refs.len(),
            3,
            "region shootdown drops PSC-L2 and PSC-L3: PDPT, PD, PT"
        );
    }
}
