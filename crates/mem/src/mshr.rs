//! Miss Status Holding Registers.
//!
//! An MSHR tracks in-flight misses per cache so that a second miss to the
//! same line *merges* into the outstanding request instead of issuing a
//! duplicate memory access, and so that the filter's system snapshot can
//! report in-flight L1D misses (an adaptive-thresholding input, Fig. 8).
//!
//! Entries are retired lazily: a lookup at cycle `c` first drops every entry
//! whose fill completed at or before `c`.

use pagecross_types::LineAddr;

#[derive(Clone, Copy, Debug)]
struct Entry {
    line: LineAddr,
    completes_at: u64,
    demand: bool,
}

/// A fixed-capacity MSHR file.
#[derive(Clone, Debug)]
pub struct Mshr {
    entries: Vec<Entry>,
    capacity: usize,
    /// Misses that merged into an existing entry.
    pub merges: u64,
    /// Misses that found the MSHR full (charged a retry penalty by the owner).
    pub full_stalls: u64,
}

impl Mshr {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "MSHR capacity must be positive");
        Self {
            entries: Vec::with_capacity(capacity as usize),
            capacity: capacity as usize,
            merges: 0,
            full_stalls: 0,
        }
    }

    fn expire(&mut self, now: u64) {
        self.entries.retain(|e| e.completes_at > now);
    }

    /// Looks up an in-flight miss for `line`; returns its completion cycle.
    pub fn lookup(&mut self, line: LineAddr, now: u64) -> Option<u64> {
        self.expire(now);
        let hit = self
            .entries
            .iter()
            .find(|e| e.line == line)
            .map(|e| e.completes_at);
        if hit.is_some() {
            self.merges += 1;
        }
        hit
    }

    /// Extra cycles charged when a miss finds the MSHR file full (retry
    /// after a slot frees). A fixed penalty keeps back-pressure bounded:
    /// deriving the delay from resident completion times compounds, because
    /// delayed entries become the reference for later allocations.
    const FULL_PENALTY: u64 = 8;

    /// Allocates an entry completing at `completes_at`. When the file is
    /// full, the request is charged a retry penalty and replaces the
    /// earliest-completing entry (the slot that frees first).
    pub fn allocate(&mut self, line: LineAddr, now: u64, completes_at: u64) -> u64 {
        self.allocate_kind(line, now, completes_at, true)
    }

    /// [`Mshr::allocate`] with an explicit demand/prefetch tag; prefetch
    /// entries are excluded from [`Mshr::demand_occupancy`].
    pub fn allocate_kind(
        &mut self,
        line: LineAddr,
        now: u64,
        completes_at: u64,
        demand: bool,
    ) -> u64 {
        self.expire(now);
        if self.entries.len() >= self.capacity {
            self.full_stalls += 1;
            let delayed = completes_at + Self::FULL_PENALTY;
            if let Some(slot) = self.entries.iter_mut().min_by_key(|e| e.completes_at) {
                *slot = Entry {
                    line,
                    completes_at: delayed,
                    demand,
                };
            }
            return delayed;
        }
        self.entries.push(Entry {
            line,
            completes_at,
            demand,
        });
        completes_at
    }

    /// Number of in-flight entries at `now`.
    pub fn occupancy(&mut self, now: u64) -> u32 {
        self.expire(now);
        self.entries.len() as u32
    }

    /// Number of in-flight *demand* entries at `now` — the "many in-flight
    /// L1D misses" input of the adaptive thresholding scheme; prefetch
    /// entries are excluded so healthy prefetch-saturated phases do not
    /// trip the ROB-pressure rule.
    pub fn demand_occupancy(&mut self, now: u64) -> u32 {
        self.expire(now);
        self.entries.iter().filter(|e| e.demand).count() as u32
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr(n)
    }

    #[test]
    fn merge_returns_existing_completion() {
        let mut m = Mshr::new(4);
        m.allocate(line(1), 0, 100);
        assert_eq!(m.lookup(line(1), 10), Some(100));
        assert_eq!(m.merges, 1);
    }

    #[test]
    fn entries_expire() {
        let mut m = Mshr::new(4);
        m.allocate(line(1), 0, 100);
        assert_eq!(m.lookup(line(1), 100), None);
        assert_eq!(m.occupancy(150), 0);
    }

    #[test]
    fn full_mshr_delays() {
        let mut m = Mshr::new(2);
        m.allocate(line(1), 0, 50);
        m.allocate(line(2), 0, 80);
        let done = m.allocate(line(3), 0, 200);
        assert_eq!(
            done,
            200 + Mshr::FULL_PENALTY,
            "full MSHR adds the retry penalty"
        );
        assert_eq!(m.full_stalls, 1);
    }

    #[test]
    fn demand_occupancy_excludes_prefetches() {
        let mut m = Mshr::new(8);
        m.allocate_kind(line(1), 0, 100, true);
        m.allocate_kind(line(2), 0, 100, false);
        m.allocate_kind(line(3), 0, 100, false);
        assert_eq!(m.occupancy(10), 3);
        assert_eq!(m.demand_occupancy(10), 1);
    }

    #[test]
    fn occupancy_tracks_inflight() {
        let mut m = Mshr::new(8);
        m.allocate(line(1), 0, 100);
        m.allocate(line(2), 0, 120);
        assert_eq!(m.occupancy(50), 2);
        assert_eq!(m.occupancy(110), 1);
        assert_eq!(m.occupancy(130), 0);
    }

    #[test]
    fn different_lines_do_not_merge() {
        let mut m = Mshr::new(4);
        m.allocate(line(1), 0, 100);
        assert_eq!(m.lookup(line(2), 0), None);
        assert_eq!(m.merges, 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Mshr::new(0);
    }
}
