//! Bounded, sampling-gated buffer for structured trace events.

use pagecross_types::{TimedEvent, TraceEvent};
use std::collections::VecDeque;

/// A ring buffer of [`TimedEvent`]s with 1-in-N sampling.
///
/// `sample = 1` records every offered event; `sample = N` keeps every Nth.
/// When the buffer is full the oldest event is dropped, so the ring always
/// holds the most recent window of activity. `seen`/`kept`/`dropped`
/// counters let exporters report how much of the stream survived.
#[derive(Clone, Debug)]
pub struct EventRing {
    buf: VecDeque<TimedEvent>,
    capacity: usize,
    sample: u64,
    /// Events offered to the ring (before sampling).
    seen: u64,
    /// Events discarded by the sampling gate.
    sampled_out: u64,
    /// Events evicted because the ring was full.
    overwritten: u64,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events, keeping one in
    /// every `sample` offered events (`sample` is clamped to ≥ 1).
    pub fn new(capacity: usize, sample: u64) -> Self {
        Self {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            sample: sample.max(1),
            seen: 0,
            sampled_out: 0,
            overwritten: 0,
        }
    }

    /// Offers an event; the sampling gate and capacity decide its fate.
    pub fn push(&mut self, cycle: u64, core: u32, event: TraceEvent) {
        self.seen += 1;
        if self.sample > 1 && self.seen % self.sample != 1 {
            self.sampled_out += 1;
            return;
        }
        if self.buf.len() >= self.capacity {
            self.buf.pop_front();
            self.overwritten += 1;
        }
        self.buf.push_back(TimedEvent { cycle, core, event });
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.buf.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events offered (before the sampling gate).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events discarded by the sampling gate.
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out
    }

    /// Events evicted because the ring was full.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Drains the ring into a `Vec`, oldest first.
    pub fn into_events(self) -> Vec<TimedEvent> {
        self.buf.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent::Fill {
            line: i,
            prefetch: false,
            page_cross: false,
        }
    }

    #[test]
    fn keeps_most_recent_when_full() {
        let mut r = EventRing::new(3, 1);
        for i in 0..5 {
            r.push(i, 0, ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.seen(), 5);
        assert_eq!(r.overwritten(), 2);
        let cycles: Vec<u64> = r.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn sampling_keeps_one_in_n() {
        let mut r = EventRing::new(100, 4);
        for i in 0..16 {
            r.push(i, 0, ev(i));
        }
        assert_eq!(r.len(), 4, "every 4th of 16");
        assert_eq!(r.sampled_out(), 12);
        // The first offered event is always kept (seen % sample == 1).
        assert_eq!(r.events().next().unwrap().cycle, 0);
    }

    #[test]
    fn zero_sample_clamps_to_one() {
        let mut r = EventRing::new(8, 0);
        r.push(1, 0, ev(1));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn into_events_preserves_order() {
        let mut r = EventRing::new(4, 1);
        for i in 0..4 {
            r.push(i, 1, ev(i));
        }
        let v = r.into_events();
        assert_eq!(v.len(), 4);
        assert!(v.windows(2).all(|w| w[0].cycle < w[1].cycle));
        assert!(v.iter().all(|e| e.core == 1));
    }
}
