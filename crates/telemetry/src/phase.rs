//! Host-side phase profiling: wall-clock spent in each simulation phase.

use std::time::Duration;

/// Wall-clock time per simulation phase of one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Building the memory system, engine and workload stream.
    pub setup: Duration,
    /// Warm-up instructions.
    pub warmup: Duration,
    /// Measured instructions (including finalisation).
    pub measure: Duration,
}

impl PhaseTimings {
    /// Total wall-clock across all phases.
    pub fn total(&self) -> Duration {
        self.setup + self.warmup + self.measure
    }

    /// Adds another run's timings phase-wise (campaign aggregation).
    pub fn accumulate(&mut self, other: &PhaseTimings) {
        self.setup += other.setup;
        self.warmup += other.warmup;
        self.measure += other.measure;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_accumulate() {
        let a = PhaseTimings {
            setup: Duration::from_millis(2),
            warmup: Duration::from_millis(5),
            measure: Duration::from_millis(13),
        };
        assert_eq!(a.total(), Duration::from_millis(20));
        let mut sum = PhaseTimings::default();
        sum.accumulate(&a);
        sum.accumulate(&a);
        assert_eq!(sum.measure, Duration::from_millis(26));
        assert_eq!(sum.total(), Duration::from_millis(40));
    }
}
