//! Interval sampling: cumulative counter captures diffed into a
//! per-interval time series.

use crate::ring::EventRing;
use pagecross_types::{IntervalRecord, PolicyTelemetry, TelemetryCounters, TimedEvent};

/// What to collect during a run.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Retired instructions per sampling interval.
    pub interval: u64,
    /// Whether to record structured trace events.
    pub events: bool,
    /// Event-ring capacity (most recent events kept).
    pub event_capacity: usize,
    /// Keep one in every N offered events.
    pub event_sample: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            interval: 10_000,
            events: false,
            event_capacity: 65_536,
            event_sample: 1,
        }
    }
}

impl TelemetryConfig {
    /// Builds the event ring this config describes (when events are on).
    pub fn make_ring(&self) -> Option<EventRing> {
        if self.events {
            Some(EventRing::new(self.event_capacity, self.event_sample))
        } else {
            None
        }
    }
}

/// Everything a telemetry-enabled run collected.
#[derive(Clone, Debug, Default)]
pub struct TelemetryRun {
    /// Closed sampling intervals, in order.
    pub intervals: Vec<IntervalRecord>,
    /// Structured trace events (empty unless event tracing was on).
    pub events: Vec<TimedEvent>,
    /// Events offered to the ring before sampling/eviction (0 when off).
    pub events_seen: u64,
}

/// Counts retired instructions and closes an interval every N of them.
///
/// The engine calls [`on_retire`](IntervalSampler::on_retire) once per
/// retired instruction; when it returns `true` the engine captures the
/// current cumulative [`TelemetryCounters`] and hands them to
/// [`sample`](IntervalSampler::sample). After the run,
/// [`flush`](IntervalSampler::flush) closes the final partial interval so
/// the deltas telescope to the run totals exactly.
#[derive(Clone, Debug)]
pub struct IntervalSampler {
    interval: u64,
    since_sample: u64,
    base: TelemetryCounters,
    next_seq: u64,
    intervals: Vec<IntervalRecord>,
}

impl IntervalSampler {
    /// A sampler closing an interval every `interval` retired
    /// instructions (clamped to ≥ 1).
    pub fn new(interval: u64) -> Self {
        Self {
            interval: interval.max(1),
            since_sample: 0,
            base: TelemetryCounters::default(),
            next_seq: 0,
            intervals: Vec::new(),
        }
    }

    /// Notes one retired instruction; `true` when an interval just closed
    /// and the caller must capture counters and call
    /// [`sample`](IntervalSampler::sample).
    pub fn on_retire(&mut self) -> bool {
        self.since_sample += 1;
        if self.since_sample >= self.interval {
            self.since_sample = 0;
            true
        } else {
            false
        }
    }

    /// Closes an interval at the cumulative capture `now`.
    pub fn sample(&mut self, now: TelemetryCounters, policy: Option<PolicyTelemetry>) {
        self.intervals.push(IntervalRecord {
            seq: self.next_seq,
            end_instructions: now.instructions,
            end_cycles: now.cycles,
            delta: now.delta(&self.base),
            policy,
        });
        self.next_seq += 1;
        self.base = now;
    }

    /// Closes the final partial interval, if the run progressed past the
    /// last sample point. Without this the tail of the run (including the
    /// drain cycles added by `finish()`) would be missing and the summed
    /// deltas would not reconcile with the final report.
    pub fn flush(&mut self, now: TelemetryCounters, policy: Option<PolicyTelemetry>) {
        if now != self.base {
            self.sample(now, policy);
        }
    }

    /// The closed intervals, consuming the sampler.
    pub fn into_intervals(self) -> Vec<IntervalRecord> {
        self.intervals
    }

    /// Closed intervals so far.
    pub fn intervals(&self) -> &[IntervalRecord] {
        &self.intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(instructions: u64, cycles: u64, l1d_misses: u64) -> TelemetryCounters {
        TelemetryCounters {
            instructions,
            cycles,
            l1d_misses,
            ..Default::default()
        }
    }

    #[test]
    fn on_retire_fires_every_interval() {
        let mut s = IntervalSampler::new(3);
        let fired: Vec<bool> = (0..7).map(|_| s.on_retire()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, true, false]);
    }

    #[test]
    fn deltas_telescope_to_final_totals() {
        let mut s = IntervalSampler::new(10);
        s.sample(counters(10, 25, 3), None);
        s.sample(counters(20, 47, 5), None);
        s.flush(counters(24, 60, 9), None);
        let iv = s.into_intervals();
        assert_eq!(iv.len(), 3);
        assert_eq!(iv[0].delta.instructions, 10);
        assert_eq!(iv[1].delta.instructions, 10);
        assert_eq!(iv[2].delta.instructions, 4);
        let mut sum = TelemetryCounters::default();
        for r in &iv {
            sum.accumulate(&r.delta);
        }
        assert_eq!(sum, counters(24, 60, 9));
        assert_eq!(iv.last().unwrap().end_cycles, 60);
    }

    #[test]
    fn flush_is_a_no_op_when_nothing_changed() {
        let mut s = IntervalSampler::new(10);
        let c = counters(10, 20, 1);
        s.sample(c, None);
        s.flush(c, None);
        assert_eq!(s.intervals().len(), 1);
    }

    #[test]
    fn seq_is_dense_and_zero_based() {
        let mut s = IntervalSampler::new(1);
        for i in 1..=4 {
            s.sample(counters(i, i * 2, 0), None);
        }
        let seqs: Vec<u64> = s.intervals().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn config_default_matches_cli_default() {
        let c = TelemetryConfig::default();
        assert_eq!(c.interval, 10_000);
        assert!(!c.events);
        assert!(c.make_ring().is_none());
        let on = TelemetryConfig {
            events: true,
            ..Default::default()
        };
        assert!(on.make_ring().is_some());
    }
}
