//! Chrome trace-event JSON export (the format Perfetto and
//! `chrome://tracing` load).
//!
//! Simulated cycles are mapped 1:1 onto trace microseconds. Page walks
//! have duration and become complete events (`ph: "X"`); fills, evictions
//! and policy decisions are instants (`ph: "i"`, thread scope). Each core
//! is a thread under a single "simulator" process.

use pagecross_types::{TimedEvent, TraceEvent};
use std::fmt::Write as _;

fn push_args(out: &mut String, event: &TraceEvent) {
    match event {
        TraceEvent::Fill {
            line,
            prefetch,
            page_cross,
        } => {
            let _ = write!(
                out,
                "{{\"line\":{line},\"prefetch\":{prefetch},\"page_cross\":{page_cross}}}"
            );
        }
        TraceEvent::Evict {
            line,
            pcb,
            dirty,
            served_hits,
        } => {
            let _ = write!(
                out,
                "{{\"line\":{line},\"pcb\":{pcb},\"dirty\":{dirty},\"served_hits\":{served_hits}}}"
            );
        }
        TraceEvent::Walk {
            va_page,
            latency,
            refs,
            psc_skipped,
            speculative,
        } => {
            let _ = write!(
                out,
                "{{\"va_page\":{va_page},\"latency\":{latency},\"refs\":{refs},\
                 \"psc_skipped\":{psc_skipped},\"speculative\":{speculative}}}"
            );
        }
        TraceEvent::Decision {
            pc,
            target_va,
            issued,
            threshold,
        } => {
            let _ = write!(
                out,
                "{{\"pc\":{pc},\"target_va\":{target_va},\"issued\":{issued}"
            );
            match threshold {
                Some(t) => {
                    let _ = write!(out, ",\"threshold\":{t}}}");
                }
                None => out.push_str(",\"threshold\":null}"),
            }
        }
        TraceEvent::Os {
            op,
            va_page,
            cycles,
        } => {
            let _ = write!(
                out,
                "{{\"op\":\"{}\",\"va_page\":{va_page},\"cycles\":{cycles}}}",
                op.label()
            );
        }
    }
}

/// Renders events as a Chrome trace-event JSON document
/// (`{"traceEvents": [...]}`).
pub fn chrome_trace_json(events: &[TimedEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name = e.event.kind();
        let tid = e.core + 1; // Perfetto hides tid 0.
        match e.event {
            TraceEvent::Walk { latency, .. } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"cat\":\"walk\",\"ph\":\"X\",\"ts\":{},\
                     \"dur\":{},\"pid\":1,\"tid\":{tid},\"args\":",
                    e.cycle,
                    latency.max(1)
                );
            }
            _ => {
                let cat = match e.event {
                    TraceEvent::Decision { .. } => "policy",
                    TraceEvent::Os { .. } => "os",
                    _ => "cache",
                };
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{},\"pid\":1,\"tid\":{tid},\"args\":",
                    e.cycle
                );
            }
        }
        push_args(&mut out, &e.event);
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_is_a_complete_event_with_duration() {
        let events = [TimedEvent {
            cycle: 100,
            core: 0,
            event: TraceEvent::Walk {
                va_page: 42,
                latency: 30,
                refs: 4,
                psc_skipped: 2,
                speculative: true,
            },
        }];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":30"));
        assert!(json.contains("\"ts\":100"));
        assert!(json.contains("\"speculative\":true"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn instants_have_thread_scope() {
        let events = [
            TimedEvent {
                cycle: 5,
                core: 0,
                event: TraceEvent::Fill {
                    line: 9,
                    prefetch: true,
                    page_cross: true,
                },
            },
            TimedEvent {
                cycle: 6,
                core: 0,
                event: TraceEvent::Decision {
                    pc: 0x400,
                    target_va: 0x7000,
                    issued: false,
                    threshold: Some(-2),
                },
            },
        ];
        let json = chrome_trace_json(&events);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 2);
        assert_eq!(json.matches("\"s\":\"t\"").count(), 2);
        assert!(json.contains("\"threshold\":-2"));
        assert!(json.contains("\"cat\":\"policy\""));
    }

    #[test]
    fn os_events_are_instants_in_their_own_category() {
        let events = [TimedEvent {
            cycle: 77,
            core: 1,
            event: TraceEvent::Os {
                op: pagecross_types::OsOp::Promote,
                va_page: 0x99,
                cycles: 2_000,
            },
        }];
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"name\":\"os\""));
        assert!(json.contains("\"cat\":\"os\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"op\":\"promote\""));
        assert!(json.contains("\"cycles\":2000"));
    }

    #[test]
    fn empty_trace_is_still_a_document() {
        let json = chrome_trace_json(&[]);
        assert!(json.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn zero_latency_walk_gets_min_duration() {
        let events = [TimedEvent {
            cycle: 0,
            core: 2,
            event: TraceEvent::Walk {
                va_page: 1,
                latency: 0,
                refs: 0,
                psc_skipped: 0,
                speculative: false,
            },
        }];
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"dur\":1"));
        assert!(json.contains("\"tid\":3"));
    }
}
