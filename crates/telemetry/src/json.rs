//! JSONL emission and validation for interval records.
//!
//! The workspace is zero-dependency, so both directions are hand-rolled:
//! the emitter writes one flat JSON object per interval, and the validator
//! parses that flat shape back (string/number/bool/null scalar values
//! only — no nesting) to check the stream a run produced.
//!
//! # Interval schema (one object per line)
//!
//! | key                 | type          | meaning                            |
//! |---------------------|---------------|------------------------------------|
//! | `seq`               | int           | interval index, dense from 0       |
//! | `instructions`      | int           | cumulative retired at interval end |
//! | `cycles`            | int           | cumulative cycles at interval end  |
//! | `ipc`               | float         | interval IPC (deltas)              |
//! | `threshold`         | int \| null   | policy threshold (filter policies) |
//! | `weight_saturation` | float \| null | saturated perceptron weight frac.  |
//! | `d_<counter>`       | int           | interval delta, one per counter in |
//! |                     |               | `TelemetryCounters::FIELD_NAMES`   |

use pagecross_types::{IntervalRecord, TelemetryCounters};
use std::fmt::Write as _;

/// Serialises one interval record as a single JSON line (no trailing
/// newline).
pub fn interval_to_json(r: &IntervalRecord) -> String {
    let mut s = String::with_capacity(512);
    let _ = write!(
        s,
        "{{\"seq\":{},\"instructions\":{},\"cycles\":{},\"ipc\":{:.6}",
        r.seq,
        r.end_instructions,
        r.end_cycles,
        r.ipc()
    );
    match &r.policy {
        Some(p) => {
            let _ = write!(
                s,
                ",\"threshold\":{},\"weight_saturation\":{:.6}",
                p.threshold, p.weight_saturation
            );
        }
        None => {
            s.push_str(",\"threshold\":null,\"weight_saturation\":null");
        }
    }
    for (name, value) in r.delta.entries() {
        let _ = write!(s, ",\"d_{name}\":{value}");
    }
    s.push('}');
    s
}

/// What JSONL validation found wrong, with the offending line (1-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonlError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// Aggregates a valid JSONL stream.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JsonlSummary {
    /// Number of interval lines.
    pub lines: usize,
    /// Sum of every `d_*` delta across all lines — equals the run's final
    /// cumulative counters when the stream is complete.
    pub totals: TelemetryCounters,
    /// Cumulative instruction count on the last line (0 when empty).
    pub final_instructions: u64,
    /// Cumulative cycle count on the last line (0 when empty).
    pub final_cycles: u64,
}

/// A parsed flat-JSON scalar value.
#[derive(Clone, Debug, PartialEq)]
enum Scalar {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
}

/// Parses a flat JSON object (scalar values only) into key/value pairs.
///
/// Supports exactly the shape this crate emits: one object, string keys,
/// values that are numbers, strings (with `\"`/`\\`/`\n`/`\t`/`\r`/`\/`
/// `\b`/`\f`/`\uXXXX` escapes), booleans or null. Nested objects/arrays
/// are rejected.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Scalar)>, String> {
    let b = line.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\r' | b'\n') {
            *i += 1;
        }
    }

    fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
        if b.get(*i) != Some(&b'"') {
            return Err("expected '\"'".into());
        }
        *i += 1;
        let mut s = String::new();
        while *i < b.len() {
            match b[*i] {
                b'"' => {
                    *i += 1;
                    return Ok(s);
                }
                b'\\' => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*i + 1..*i + 5)
                                .ok_or("truncated \\u escape")
                                .and_then(|h| {
                                    std::str::from_utf8(h).map_err(|_| "bad \\u escape")
                                })?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            *i += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    *i += 1;
                }
                c if c < 0x20 => return Err("control character in string".into()),
                _ => {
                    // Copy the full UTF-8 sequence starting here.
                    let start = *i;
                    *i += 1;
                    while *i < b.len() && (b[*i] & 0xC0) == 0x80 {
                        *i += 1;
                    }
                    s.push_str(std::str::from_utf8(&b[start..*i]).map_err(|_| "invalid UTF-8")?);
                }
            }
        }
        Err("unterminated string".into())
    }

    skip_ws(b, &mut i);
    if b.get(i) != Some(&b'{') {
        return Err("expected '{'".into());
    }
    i += 1;
    skip_ws(b, &mut i);
    if b.get(i) == Some(&b'}') {
        i += 1;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err("trailing characters after object".into());
        }
        return Ok(out);
    }
    loop {
        skip_ws(b, &mut i);
        let key = parse_string(b, &mut i)?;
        skip_ws(b, &mut i);
        if b.get(i) != Some(&b':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        i += 1;
        skip_ws(b, &mut i);
        let value = match b.get(i) {
            Some(b'"') => Scalar::Str(parse_string(b, &mut i)?),
            Some(b't') => {
                if b[i..].starts_with(b"true") {
                    i += 4;
                    Scalar::Bool(true)
                } else {
                    return Err("bad literal".into());
                }
            }
            Some(b'f') => {
                if b[i..].starts_with(b"false") {
                    i += 5;
                    Scalar::Bool(false)
                } else {
                    return Err("bad literal".into());
                }
            }
            Some(b'n') => {
                if b[i..].starts_with(b"null") {
                    i += 4;
                    Scalar::Null
                } else {
                    return Err("bad literal".into());
                }
            }
            Some(b'{') | Some(b'[') => {
                return Err("nested values are not part of the schema".into())
            }
            Some(_) => {
                let start = i;
                while i < b.len() && matches!(b[i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    i += 1;
                }
                let text = std::str::from_utf8(&b[start..i]).map_err(|_| "invalid UTF-8")?;
                let num: f64 = text.parse().map_err(|_| format!("bad number {text:?}"))?;
                Scalar::Num(num)
            }
            None => return Err("truncated object".into()),
        };
        out.push((key, value));
        skip_ws(b, &mut i);
        match b.get(i) {
            Some(b',') => {
                i += 1;
            }
            Some(b'}') => {
                i += 1;
                skip_ws(b, &mut i);
                if i != b.len() {
                    return Err("trailing characters after object".into());
                }
                return Ok(out);
            }
            _ => return Err("expected ',' or '}'".into()),
        }
    }
}

fn get_num(kv: &[(String, Scalar)], key: &str) -> Option<f64> {
    kv.iter().find_map(|(k, v)| {
        if k == key {
            match v {
                Scalar::Num(n) => Some(*n),
                _ => None,
            }
        } else {
            None
        }
    })
}

/// Validates a telemetry JSONL stream.
///
/// Checks, per the schema in the module docs:
/// * every line parses as a flat JSON object;
/// * `seq` is dense from 0;
/// * cumulative `instructions`/`cycles` are monotone non-decreasing;
/// * every `d_<counter>` key is present exactly once, integral and ≥ 0
///   (non-negative deltas);
/// * `ipc` is present and finite; `threshold`/`weight_saturation` are
///   present (value or null).
///
/// Returns the line count and summed deltas on success (for reconciliation
/// against a final `Report`).
pub fn validate_jsonl(text: &str) -> Result<JsonlSummary, JsonlError> {
    let mut summary = JsonlSummary::default();
    let mut prev_instructions = 0u64;
    let mut prev_cycles = 0u64;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let err = |message: String| JsonlError {
            line: lineno,
            message,
        };
        if raw.trim().is_empty() {
            return Err(err("blank line in JSONL stream".into()));
        }
        let kv = parse_flat_object(raw).map_err(err)?;

        let seq = get_num(&kv, "seq").ok_or_else(|| err("missing numeric \"seq\"".into()))?;
        if seq != idx as f64 {
            return Err(err(format!("seq {seq} but expected {idx} (dense from 0)")));
        }
        let instructions = get_num(&kv, "instructions")
            .ok_or_else(|| err("missing numeric \"instructions\"".into()))?;
        let cycles =
            get_num(&kv, "cycles").ok_or_else(|| err("missing numeric \"cycles\"".into()))?;
        if instructions < 0.0
            || instructions.fract() != 0.0
            || cycles < 0.0
            || cycles.fract() != 0.0
        {
            return Err(err(
                "cumulative counters must be non-negative integers".into()
            ));
        }
        let (instructions, cycles) = (instructions as u64, cycles as u64);
        if instructions < prev_instructions {
            return Err(err(format!(
                "cumulative instructions went backwards: {prev_instructions} -> {instructions}"
            )));
        }
        if cycles < prev_cycles {
            return Err(err(format!(
                "cumulative cycles went backwards: {prev_cycles} -> {cycles}"
            )));
        }
        prev_instructions = instructions;
        prev_cycles = cycles;

        let ipc = get_num(&kv, "ipc").ok_or_else(|| err("missing numeric \"ipc\"".into()))?;
        if !ipc.is_finite() {
            return Err(err("non-finite ipc".into()));
        }
        for key in ["threshold", "weight_saturation"] {
            let present = kv
                .iter()
                .any(|(k, v)| k == key && matches!(v, Scalar::Num(_) | Scalar::Null));
            if !present {
                return Err(err(format!("missing \"{key}\" (number or null)")));
            }
        }

        for name in TelemetryCounters::FIELD_NAMES {
            let key = format!("d_{name}");
            let matches: Vec<&Scalar> = kv
                .iter()
                .filter_map(|(k, v)| if *k == key { Some(v) } else { None })
                .collect();
            if matches.len() != 1 {
                return Err(err(format!(
                    "key \"{key}\" present {} times, expected exactly once",
                    matches.len()
                )));
            }
            let v = match matches[0] {
                Scalar::Num(n) => *n,
                _ => return Err(err(format!("\"{key}\" is not a number"))),
            };
            if v < 0.0 || v.fract() != 0.0 {
                return Err(err(format!(
                    "\"{key}\" = {v} is not a non-negative integer"
                )));
            }
            assert!(summary.totals.add_named(name, v as u64));
        }

        summary.lines = lineno;
        summary.final_instructions = instructions;
        summary.final_cycles = cycles;
    }

    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagecross_types::{IntervalRecord, PolicyTelemetry};

    fn record(seq: u64, instrs: u64, cycles: u64) -> IntervalRecord {
        let mut delta = TelemetryCounters::default();
        delta.instructions = instrs;
        delta.cycles = cycles;
        delta.l1d_misses = 3;
        IntervalRecord {
            seq,
            end_instructions: (seq + 1) * instrs,
            end_cycles: (seq + 1) * cycles,
            delta,
            policy: None,
        }
    }

    #[test]
    fn emit_then_validate_round_trips() {
        let lines: Vec<String> = (0..3)
            .map(|s| interval_to_json(&record(s, 100, 250)))
            .collect();
        let text = lines.join("\n");
        let summary = validate_jsonl(&text).expect("valid stream");
        assert_eq!(summary.lines, 3);
        assert_eq!(summary.totals.instructions, 300);
        assert_eq!(summary.totals.cycles, 750);
        assert_eq!(summary.totals.l1d_misses, 9);
        assert_eq!(summary.final_instructions, 300);
        assert_eq!(summary.final_cycles, 750);
    }

    #[test]
    fn policy_fields_serialise_as_numbers_or_null() {
        let mut r = record(0, 10, 20);
        assert!(interval_to_json(&r).contains("\"threshold\":null"));
        r.policy = Some(PolicyTelemetry {
            threshold: -4,
            weight_saturation: 0.125,
            decisions: 10,
            issued: 4,
            discarded: 6,
        });
        let line = interval_to_json(&r);
        assert!(line.contains("\"threshold\":-4"));
        assert!(line.contains("\"weight_saturation\":0.125000"));
        validate_jsonl(&line).expect("policy line validates");
    }

    #[test]
    fn rejects_unparseable_line() {
        let e = validate_jsonl("{not json").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn rejects_non_dense_seq() {
        let a = interval_to_json(&record(0, 10, 20));
        let b = interval_to_json(&record(2, 10, 20));
        let e = validate_jsonl(&format!("{a}\n{b}")).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("seq"));
    }

    #[test]
    fn rejects_backwards_cumulative_counters() {
        let mut r0 = record(0, 10, 20);
        r0.end_instructions = 1_000;
        let mut r1 = record(1, 10, 20);
        r1.end_instructions = 500;
        r1.end_cycles = r0.end_cycles + 1;
        let text = format!("{}\n{}", interval_to_json(&r0), interval_to_json(&r1));
        let e = validate_jsonl(&text).unwrap_err();
        assert!(e.message.contains("backwards"), "{}", e.message);
    }

    #[test]
    fn rejects_missing_delta_key() {
        let line = interval_to_json(&record(0, 10, 20));
        let broken = line.replace(",\"d_l1d_misses\":3", "");
        let e = validate_jsonl(&broken).unwrap_err();
        assert!(e.message.contains("d_l1d_misses"), "{}", e.message);
    }

    #[test]
    fn rejects_negative_delta() {
        let line = interval_to_json(&record(0, 10, 20));
        let broken = line.replace("\"d_l1d_misses\":3", "\"d_l1d_misses\":-3");
        let e = validate_jsonl(&broken).unwrap_err();
        assert!(e.message.contains("non-negative"), "{}", e.message);
    }

    #[test]
    fn rejects_blank_lines() {
        let line = interval_to_json(&record(0, 10, 20));
        let e = validate_jsonl(&format!("{line}\n\n")).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn empty_stream_is_vacuously_valid() {
        let s = validate_jsonl("").expect("empty stream");
        assert_eq!(s.lines, 0);
        assert_eq!(s.totals, TelemetryCounters::default());
    }

    #[test]
    fn flat_parser_handles_escapes_and_rejects_nesting() {
        let kv = parse_flat_object(r#"{"a":"x\"y\\z","b":true,"c":null}"#).unwrap();
        assert_eq!(kv.len(), 3);
        assert_eq!(kv[0].1, Scalar::Str("x\"y\\z".into()));
        assert!(parse_flat_object(r#"{"a":{"b":1}}"#).is_err());
        assert!(parse_flat_object(r#"{"a":[1]}"#).is_err());
        assert!(parse_flat_object(r#"{"a":1} trailing"#).is_err());
    }
}
