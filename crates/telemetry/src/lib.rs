//! Observability layer for the `pagecross` simulator: interval sampling of
//! counter deltas, a ring-buffered structured event trace, JSONL/Chrome
//! trace exporters, and host-side phase profiling.
//!
//! # Design: zero cost when disabled
//!
//! Every collection point in the simulator is guarded by an `Option` that
//! is `None` unless telemetry was explicitly requested. Collection is pure
//! observation — samplers read counters the simulator already maintains and
//! never feed anything back into timing, replacement, training or policy
//! state — so a run with telemetry enabled produces a `Report` bit-identical
//! to the same run with it disabled (`tests/telemetry.rs` locks this).
//!
//! # Pieces
//!
//! * [`IntervalSampler`] — snapshots cumulative [`TelemetryCounters`] every
//!   N retired instructions and stores per-interval deltas. The deltas
//!   telescope: summed over all intervals they reproduce the final
//!   cumulative counters exactly, which is how the JSONL stream is
//!   reconciled against the run's final `Report`.
//! * [`EventRing`] — bounded, sampling-gated buffer of structured
//!   [`TimedEvent`](pagecross_types::TimedEvent)s (fills, evictions, page
//!   walks, policy decisions).
//! * [`json`] — JSONL emission plus a hand-rolled validator (no external
//!   JSON dependency anywhere in the workspace).
//! * [`chrome`] — Chrome trace-event JSON export, viewable in Perfetto.
//! * [`PhaseTimings`] — wall-clock per simulation phase (setup / warm-up /
//!   measure) for the host-side perf view.

pub mod chrome;
pub mod json;
pub mod phase;
pub mod ring;
pub mod sampler;

pub use chrome::chrome_trace_json;
pub use json::{interval_to_json, validate_jsonl, JsonlError, JsonlSummary};
pub use phase::PhaseTimings;
pub use ring::EventRing;
pub use sampler::{IntervalSampler, TelemetryConfig, TelemetryRun};

// Re-export the vocabulary types so downstream crates can use a single
// `telemetry::` namespace.
pub use pagecross_types::telemetry::{
    IntervalRecord, PolicyTelemetry, StallBreakdown, StallCause, TelemetryCounters, TimedEvent,
    TraceEvent, EVENT_KINDS,
};
