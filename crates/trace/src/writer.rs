//! Recording: serialise an instruction stream to a `.pct` file.

use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

use pagecross_cpu::trace::{Instr, TraceFactory};

use crate::codec::{crc32, encode_records, write_varint};
use crate::format::{encode_header, TraceMeta, CHUNK_RECORDS, CHUNK_TAG, END_TAG, VERSION};
use crate::TraceError;

/// Streams instruction records into a `.pct` file, chunk by chunk.
///
/// The header is written immediately with `instr_count == 0`;
/// [`TraceWriter::finish`] writes the end-of-stream marker and seeks back
/// to patch the real count (and header CRC) in place. A writer that is
/// dropped without `finish()` therefore leaves a file that readers reject
/// as truncated — a crashed recording can never masquerade as a complete
/// trace.
pub struct TraceWriter {
    file: BufWriter<File>,
    meta: TraceMeta,
    pending: Vec<Instr>,
    chunk_records: usize,
    total: u64,
    finished: bool,
}

impl TraceWriter {
    /// Creates `path` (truncating any existing file) and writes the
    /// provisional header.
    pub fn create(path: &Path, name: &str, core_count: u32, seed: u64) -> Result<Self, TraceError> {
        let meta = TraceMeta {
            version: VERSION,
            core_count,
            instr_count: 0,
            seed,
            name: name.to_string(),
        };
        let mut file = BufWriter::new(File::create(path)?);
        file.write_all(&encode_header(&meta))?;
        Ok(Self {
            file,
            meta,
            pending: Vec::with_capacity(CHUNK_RECORDS),
            chunk_records: CHUNK_RECORDS,
            total: 0,
            finished: false,
        })
    }

    /// Overrides the records-per-chunk granularity (tests exercise
    /// multi-chunk files without writing 4096-record traces).
    pub fn chunk_records(mut self, n: usize) -> Self {
        self.chunk_records = n.max(1);
        self
    }

    /// Appends one instruction record.
    pub fn push(&mut self, instr: &Instr) -> Result<(), TraceError> {
        self.pending.push(*instr);
        self.total += 1;
        if self.pending.len() >= self.chunk_records {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<(), TraceError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let payload = encode_records(&self.pending);
        let mut frame = Vec::with_capacity(payload.len() + 16);
        frame.push(CHUNK_TAG);
        write_varint(&mut frame, self.pending.len() as u64);
        write_varint(&mut frame, payload.len() as u64);
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.file.write_all(&frame)?;
        self.pending.clear();
        Ok(())
    }

    /// Flushes the last chunk, writes the end-of-stream marker, patches the
    /// header's instruction count, and syncs the file. Returns the final
    /// metadata.
    pub fn finish(mut self) -> Result<TraceMeta, TraceError> {
        self.flush_chunk()?;
        self.file.write_all(&[END_TAG])?;
        self.file.write_all(&self.total.to_le_bytes())?;
        self.meta.instr_count = self.total;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&encode_header(&self.meta))?;
        self.file.flush()?;
        self.finished = true;
        Ok(self.meta.clone())
    }

    /// Records appended so far.
    pub fn records_written(&self) -> u64 {
        self.total
    }
}

impl Drop for TraceWriter {
    fn drop(&mut self) {
        if !self.finished {
            // Best-effort flush so the partial file is inspectable; the
            // zero instr_count header marks it unfinished regardless.
            let _ = self.file.flush();
        }
    }
}

/// Records `instructions` instructions of a fresh stream from `factory`
/// into `path`. `seed` is stored in the header as provenance (use the
/// workload's generator seed).
///
/// To replay a simulation exactly, record `warmup + measured` instructions
/// — the engine consumes precisely that prefix, so the replayed counters
/// are bit-identical to the direct run.
pub fn record(
    factory: &dyn TraceFactory,
    instructions: u64,
    seed: u64,
    path: &Path,
) -> Result<TraceMeta, TraceError> {
    let mut writer = TraceWriter::create(path, factory.name(), 1, seed)?;
    let mut src = factory.build();
    for _ in 0..instructions {
        writer.push(&src.next_instr())?;
    }
    writer.finish()
}
