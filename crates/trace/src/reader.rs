//! Blocking `.pct` reading: header validation, chunk-at-a-time decode,
//! full-file loads and integrity scans.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::Path;

use pagecross_cpu::trace::Instr;

use crate::codec::{crc32, decode_records};
use crate::format::{decode_header, TraceMeta, CHUNK_TAG, END_TAG, MAX_CHUNK_PAYLOAD};
use crate::TraceError;

/// A validated, positioned `.pct` file, decoded one chunk at a time.
pub struct TraceReader {
    file: BufReader<File>,
    meta: TraceMeta,
    /// File offset of the first chunk (rewind target).
    data_start: u64,
    /// Index of the next chunk to be read.
    chunk_index: u64,
    /// Records decoded since the last rewind.
    records_seen: u64,
}

impl TraceReader {
    /// Opens `path`, validating the header (magic, version, CRC). A header
    /// whose instruction count is still zero marks a recording that never
    /// finished and is rejected as truncated.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        let mut file = BufReader::new(File::open(path)?);
        // Headers are small; over-read a prefix, then seek to the real end.
        let mut prefix = vec![0u8; 4096];
        let mut got = 0usize;
        while got < prefix.len() {
            let n = file.read(&mut prefix[got..])?;
            if n == 0 {
                break;
            }
            got += n;
        }
        let (meta, header_len) = decode_header(&prefix[..got])?;
        if meta.instr_count == 0 {
            return Err(TraceError::Truncated(
                "header instruction count is zero — the recording was never finished".to_string(),
            ));
        }
        file.seek(SeekFrom::Start(header_len as u64))?;
        Ok(Self {
            file,
            meta,
            data_start: header_len as u64,
            chunk_index: 0,
            records_seen: 0,
        })
    }

    /// The header metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    fn read_exact_or_truncated(&mut self, buf: &mut [u8], what: &str) -> Result<(), TraceError> {
        self.file.read_exact(buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                TraceError::Truncated(format!(
                    "file ends inside {what} (chunk {})",
                    self.chunk_index
                ))
            } else {
                TraceError::Io(e)
            }
        })
    }

    /// Reads a varint byte-by-byte from the file.
    fn read_varint_file(&mut self, what: &str) -> Result<u64, TraceError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let mut byte = [0u8; 1];
            self.read_exact_or_truncated(&mut byte, what)?;
            let b = byte[0];
            if (shift == 63 && b > 1) || shift > 63 {
                return Err(TraceError::ChunkCorrupt {
                    chunk: self.chunk_index,
                    detail: format!("malformed varint in {what}"),
                });
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Decodes the next chunk into `out` (replacing its contents).
    ///
    /// Returns `Ok(true)` when a chunk was decoded, `Ok(false)` at a clean
    /// end-of-stream (marker present and the record counts agree). Any
    /// other condition — early EOF, CRC mismatch, count disagreement — is
    /// an error.
    pub fn next_chunk(&mut self, out: &mut Vec<Instr>) -> Result<bool, TraceError> {
        let mut tag = [0u8; 1];
        self.read_exact_or_truncated(&mut tag, "a chunk tag")?;
        match tag[0] {
            END_TAG => {
                let mut total = [0u8; 8];
                self.read_exact_or_truncated(&mut total, "the end-of-stream marker")?;
                let total = u64::from_le_bytes(total);
                if total != self.records_seen {
                    return Err(TraceError::CountMismatch {
                        expected: total,
                        actual: self.records_seen,
                    });
                }
                if total != self.meta.instr_count {
                    return Err(TraceError::CountMismatch {
                        expected: self.meta.instr_count,
                        actual: total,
                    });
                }
                Ok(false)
            }
            CHUNK_TAG => {
                let n_records = self.read_varint_file("a chunk record count")?;
                let payload_len = self.read_varint_file("a chunk payload length")?;
                if payload_len > MAX_CHUNK_PAYLOAD || n_records > MAX_CHUNK_PAYLOAD {
                    return Err(TraceError::ChunkCorrupt {
                        chunk: self.chunk_index,
                        detail: format!(
                            "implausible chunk framing ({n_records} records, {payload_len} bytes)"
                        ),
                    });
                }
                let mut payload = vec![0u8; payload_len as usize];
                self.read_exact_or_truncated(&mut payload, "a chunk payload")?;
                let mut stored = [0u8; 4];
                self.read_exact_or_truncated(&mut stored, "a chunk checksum")?;
                let stored = u32::from_le_bytes(stored);
                let actual = crc32(&payload);
                if stored != actual {
                    return Err(TraceError::ChunkCorrupt {
                        chunk: self.chunk_index,
                        detail: format!(
                            "payload checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"
                        ),
                    });
                }
                *out = decode_records(&payload, n_records).map_err(|detail| {
                    TraceError::ChunkCorrupt {
                        chunk: self.chunk_index,
                        detail,
                    }
                })?;
                self.records_seen += n_records;
                self.chunk_index += 1;
                Ok(true)
            }
            other => Err(TraceError::ChunkCorrupt {
                chunk: self.chunk_index,
                detail: format!("unknown frame tag {other:#04x}"),
            }),
        }
    }

    /// Repositions at the first chunk (trace repeat).
    pub fn rewind(&mut self) -> Result<(), TraceError> {
        self.file.seek(SeekFrom::Start(self.data_start))?;
        self.chunk_index = 0;
        self.records_seen = 0;
        Ok(())
    }
}

/// Loads an entire trace into memory, verifying every checksum and the
/// end-of-stream marker.
pub fn read_all(path: &Path) -> Result<(TraceMeta, Vec<Instr>), TraceError> {
    let mut reader = TraceReader::open(path)?;
    let mut all = Vec::with_capacity(reader.meta().instr_count as usize);
    let mut chunk = Vec::new();
    while reader.next_chunk(&mut chunk)? {
        all.extend_from_slice(&chunk);
    }
    let meta = reader.meta().clone();
    Ok((meta, all))
}

/// Scans a trace end to end — every chunk CRC, the record counts, the end
/// marker — without keeping the records. Returns the metadata on success.
pub fn verify_file(path: &Path) -> Result<TraceMeta, TraceError> {
    let mut reader = TraceReader::open(path)?;
    let mut chunk = Vec::new();
    while reader.next_chunk(&mut chunk)? {}
    Ok(reader.meta().clone())
}
