//! On-disk instruction traces: the `.pct` format, recording, and replay.
//!
//! The paper's methodology is trace-driven — ChampSim traces with a warm-up
//! region followed by a detailed-simulation region. This crate gives the
//! reproduction the same substrate: any [`TraceFactory`](
//! pagecross_cpu::trace::TraceFactory) can be **recorded** to a compact
//! binary `.pct` file, and a recorded file **replays** as a drop-in
//! `TraceFactory`, bit-for-bit identical to the original in-memory stream
//! (the engine consumes exactly the instructions that were recorded, so
//! every golden counter reproduces).
//!
//! # Wire format (`.pct`)
//!
//! A fixed header (magic, version, core count, instruction count, workload
//! seed and name, CRC-protected) followed by chunks of varint + delta
//! encoded [`Instr`](pagecross_cpu::trace::Instr) records, each chunk
//! closed by a CRC-32 of its payload, and an explicit end-of-stream marker
//! carrying the total record count — truncation and corruption are
//! detected, never silently replayed. See `DESIGN.md` §9 for the full byte
//! layout.
//!
//! # Reading modes
//!
//! * [`BlockingSource`] decodes chunks inline on the simulation thread;
//! * [`StreamingSource`] decodes on a background `std::thread` into a
//!   double-buffered channel so decode overlaps simulation (the default for
//!   [`TraceReplay`]).
//!
//! Both rewind to the first chunk when the file is exhausted, preserving
//! the infinite-stream `TraceSource` contract (like ChampSim's trace
//! repeat).
//!
//! # Example
//!
//! ```
//! use pagecross_trace::{record, TraceReplay};
//! use pagecross_cpu::trace::{Instr, Op, TraceFactory, TraceSource};
//!
//! struct Count;
//! struct CountSrc(u64);
//! impl TraceSource for CountSrc {
//!     fn next_instr(&mut self) -> Instr {
//!         self.0 += 4;
//!         Instr { pc: 0x40_0000 + self.0, op: Op::Alu }
//!     }
//! }
//! impl TraceFactory for Count {
//!     fn name(&self) -> &str { "count" }
//!     fn build(&self) -> Box<dyn TraceSource> { Box::new(CountSrc(0)) }
//! }
//!
//! let path = std::env::temp_dir().join(format!("pct-doc-{}.pct", std::process::id()));
//! let meta = record(&Count, 1_000, 7, &path).unwrap();
//! assert_eq!(meta.instr_count, 1_000);
//! let replay = TraceReplay::open(&path).unwrap();
//! let mut a = Count.build();
//! let mut b = replay.build();
//! for _ in 0..1_000 {
//!     assert_eq!(a.next_instr(), b.next_instr());
//! }
//! std::fs::remove_file(&path).ok();
//! ```

pub mod codec;
pub mod format;
pub mod reader;
pub mod replay;
pub mod writer;

pub use format::TraceMeta;
pub use reader::{read_all, verify_file, TraceReader};
pub use replay::{BlockingSource, StreamingSource, TraceReplay};
pub use writer::{record, TraceWriter};

/// Errors of the trace subsystem. Every variant carries enough context for
/// a descriptive user-facing message (`Display`).
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the `.pct` magic.
    NotATrace,
    /// The file's format version is newer than this reader understands.
    UnsupportedVersion(u16),
    /// The header failed validation (bad CRC, malformed name, …).
    HeaderCorrupt(String),
    /// The file ended before the end-of-stream marker.
    Truncated(String),
    /// A record chunk failed validation (CRC mismatch, malformed varint,
    /// unknown tag, …).
    ChunkCorrupt {
        /// Zero-based index of the offending chunk.
        chunk: u64,
        /// What went wrong.
        detail: String,
    },
    /// The end-of-stream marker's record count disagrees with the header
    /// or with the records actually decoded.
    CountMismatch {
        /// Count the header/end marker promised.
        expected: u64,
        /// Count observed.
        actual: u64,
    },
    /// The trace holds no instructions (replay would spin forever).
    Empty,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::NotATrace => {
                write!(f, "not a .pct trace (bad magic; expected 'PCT1')")
            }
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported .pct version {v} (this build reads version {})",
                    format::VERSION
                )
            }
            TraceError::HeaderCorrupt(d) => write!(f, "corrupt trace header: {d}"),
            TraceError::Truncated(d) => {
                write!(f, "truncated trace (no end-of-stream marker): {d}")
            }
            TraceError::ChunkCorrupt { chunk, detail } => {
                write!(f, "corrupt trace chunk {chunk}: {detail}")
            }
            TraceError::CountMismatch { expected, actual } => {
                write!(
                    f,
                    "trace record-count mismatch: expected {expected}, found {actual}"
                )
            }
            TraceError::Empty => write!(f, "trace contains no instructions"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}
