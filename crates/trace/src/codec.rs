//! The record codec: LEB128 varints, zigzag deltas and CRC-32.
//!
//! Records are encoded relative to the previous record of the *same chunk*
//! (delta state resets at every chunk boundary), so chunks decode
//! independently — a seek, a rewind, or a background decoder never needs
//! context from an earlier chunk.
//!
//! Per record:
//!
//! ```text
//! [kind u8] [varint zigzag(Δpc)] [varint zigzag(Δva)]?   (Δva only for loads/stores)
//! ```
//!
//! Deltas are wrapping `u64` subtractions reinterpreted as `i64` and
//! zigzag-folded, which is lossless for every possible address while
//! keeping sequential pcs/vas (the common case) to one or two bytes.

use pagecross_cpu::trace::{Instr, Op};
use pagecross_types::VirtAddr;

/// Record kind tags (one byte each).
const K_ALU: u8 = 0;
const K_BRANCH_NT: u8 = 1;
const K_BRANCH_T: u8 = 2;
const K_LOAD: u8 = 3;
const K_LOAD_DEP: u8 = 4;
const K_STORE: u8 = 5;

/// Appends `v` as an LEB128 varint (7 bits per byte, MSB = continuation).
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint at `*pos`, advancing it. Errors on overlong
/// encodings (> 10 bytes) and on running off the end of the buffer.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf
            .get(*pos)
            .ok_or("varint runs past the end of the chunk payload")?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err("varint overflows u64".to_string());
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err("varint longer than 10 bytes".to_string());
        }
    }
}

/// Zigzag-folds a signed delta into an unsigned varint-friendly value.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[inline]
fn write_delta(buf: &mut Vec<u8>, prev: &mut u64, cur: u64) {
    write_varint(buf, zigzag(cur.wrapping_sub(*prev) as i64));
    *prev = cur;
}

#[inline]
fn read_delta(buf: &[u8], pos: &mut usize, prev: &mut u64) -> Result<u64, String> {
    let d = unzigzag(read_varint(buf, pos)?);
    *prev = prev.wrapping_add(d as u64);
    Ok(*prev)
}

/// Encodes `records` into a chunk payload (delta state starts at zero).
pub fn encode_records(records: &[Instr]) -> Vec<u8> {
    // Sequential code dominates: ~2 bytes per ALU/branch, ~4 per memory op.
    let mut buf = Vec::with_capacity(records.len() * 4);
    let (mut prev_pc, mut prev_va) = (0u64, 0u64);
    for r in records {
        match r.op {
            Op::Alu => buf.push(K_ALU),
            Op::Branch { taken } => buf.push(if taken { K_BRANCH_T } else { K_BRANCH_NT }),
            Op::Load {
                depends_on_prev, ..
            } => buf.push(if depends_on_prev { K_LOAD_DEP } else { K_LOAD }),
            Op::Store { .. } => buf.push(K_STORE),
        }
        write_delta(&mut buf, &mut prev_pc, r.pc);
        match r.op {
            Op::Load { va, .. } | Op::Store { va } => {
                write_delta(&mut buf, &mut prev_va, va.raw());
            }
            _ => {}
        }
    }
    buf
}

/// Decodes exactly `count` records from a chunk payload. Errors when the
/// payload is malformed, too short, or carries trailing bytes.
pub fn decode_records(payload: &[u8], count: u64) -> Result<Vec<Instr>, String> {
    let mut out = Vec::with_capacity(count as usize);
    let (mut prev_pc, mut prev_va) = (0u64, 0u64);
    let mut pos = 0usize;
    for i in 0..count {
        let &kind = payload
            .get(pos)
            .ok_or_else(|| format!("payload ends at record {i} of {count}"))?;
        pos += 1;
        let pc = read_delta(payload, &mut pos, &mut prev_pc)?;
        let op = match kind {
            K_ALU => Op::Alu,
            K_BRANCH_NT => Op::Branch { taken: false },
            K_BRANCH_T => Op::Branch { taken: true },
            K_LOAD | K_LOAD_DEP => {
                let va = read_delta(payload, &mut pos, &mut prev_va)?;
                Op::Load {
                    va: VirtAddr::new(va),
                    depends_on_prev: kind == K_LOAD_DEP,
                }
            }
            K_STORE => {
                let va = read_delta(payload, &mut pos, &mut prev_va)?;
                Op::Store {
                    va: VirtAddr::new(va),
                }
            }
            other => return Err(format!("unknown record kind {other:#04x} at record {i}")),
        };
        out.push(Instr { pc, op });
    }
    if pos != payload.len() {
        return Err(format!(
            "{} trailing byte(s) after the last record",
            payload.len() - pos
        ));
    }
    Ok(out)
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    static TABLE: [u32; 256] = table();
    let mut crc = !0u32;
    for &b in data {
        crc = TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagecross_types::prop::{check, vec_of, Config, Shrink};
    use pagecross_types::{prop_assert, prop_assert_eq, Rng64};

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_overlong_and_truncated() {
        // 11 continuation bytes: too long for a u64.
        let overlong = vec![0x80u8; 11];
        assert!(read_varint(&overlong, &mut 0).is_err());
        // Continuation bit set on the last available byte.
        let truncated = vec![0x80u8];
        assert!(read_varint(&truncated, &mut 0).is_err());
        // 10th byte carrying more than the single remaining bit.
        let mut overflow = vec![0xFFu8; 9];
        overflow.push(0x7F);
        assert!(read_varint(&overflow, &mut 0).is_err());
    }

    #[test]
    fn zigzag_is_a_bijection_on_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 4096, -4096] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    /// Local wrapper so the foreign `Instr` can ride through the in-repo
    /// property harness (which needs `Shrink`).
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct ArbInstr(Instr);

    impl Shrink for ArbInstr {}

    /// An arbitrary instruction over the full 64-bit pc/va space — the
    /// codec must be lossless even for addresses no sane trace contains.
    fn arb_instr(rng: &mut Rng64) -> ArbInstr {
        let pc = rng.next_u64();
        let op = match rng.below(6) {
            0 => Op::Alu,
            1 => Op::Branch { taken: false },
            2 => Op::Branch { taken: true },
            3 => Op::Load {
                va: VirtAddr::new(rng.next_u64()),
                depends_on_prev: false,
            },
            4 => Op::Load {
                va: VirtAddr::new(rng.next_u64()),
                depends_on_prev: true,
            },
            _ => Op::Store {
                va: VirtAddr::new(rng.next_u64()),
            },
        };
        ArbInstr(Instr { pc, op })
    }

    #[test]
    fn prop_records_round_trip() {
        check(
            &Config::cases(128).seed(0x9C75),
            |rng| vec_of(rng, 0, 300, arb_instr),
            |instrs: &Vec<ArbInstr>| {
                let plain: Vec<Instr> = instrs.iter().map(|a| a.0).collect();
                let payload = encode_records(&plain);
                let back = decode_records(&payload, plain.len() as u64)
                    .map_err(|e| format!("decode failed: {e}"))?;
                prop_assert_eq!(&back, &plain, "round trip diverged");
                Ok(())
            },
        );
    }

    #[test]
    fn prop_truncated_payload_rejected() {
        check(
            &Config::cases(64).seed(0x7AC3),
            |rng| vec_of(rng, 1, 100, arb_instr),
            |instrs: &Vec<ArbInstr>| {
                let plain: Vec<Instr> = instrs.iter().map(|a| a.0).collect();
                let payload = encode_records(&plain);
                // Dropping the final byte must never decode cleanly: either
                // a record is cut short or a trailing-length check fires.
                let cut = &payload[..payload.len() - 1];
                prop_assert!(
                    decode_records(cut, plain.len() as u64).is_err(),
                    "truncated payload decoded cleanly"
                );
                Ok(())
            },
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        let records = vec![
            Instr {
                pc: 0x400000,
                op: Op::Alu,
            },
            Instr {
                pc: 0x400004,
                op: Op::Alu,
            },
        ];
        let mut payload = encode_records(&records);
        payload.push(0);
        let err = decode_records(&payload, 2).unwrap_err();
        assert!(err.contains("trailing"), "got: {err}");
    }

    #[test]
    fn sequential_code_is_compact() {
        // A realistic basic block: sequential pcs, striding loads. The
        // format exists to be compact — keep it honest.
        let mut records = Vec::new();
        for i in 0..1024u64 {
            let pc = 0x40_0000 + i * 4;
            let op = if i % 4 == 0 {
                Op::Load {
                    va: VirtAddr::new(0x10_0000 + i * 64),
                    depends_on_prev: false,
                }
            } else {
                Op::Alu
            };
            records.push(Instr { pc, op });
        }
        let payload = encode_records(&records);
        assert!(
            payload.len() < records.len() * 4,
            "expected < 4 bytes/record, got {} for {}",
            payload.len(),
            records.len()
        );
    }
}
