//! `.pct` file layout: header, chunk framing and the end-of-stream marker.
//!
//! ```text
//! header   := "PCT1" | version u16 LE | flags u16 LE (0) | core_count u32 LE
//!           | instr_count u64 LE | seed u64 LE
//!           | name_len u16 LE | name (UTF-8) | crc32(header bytes so far) u32 LE
//! chunk    := 0xC1 | varint record_count | varint payload_len
//!           | payload | crc32(payload) u32 LE
//! end      := 0xE5 | total_records u64 LE
//! file     := header chunk* end
//! ```
//!
//! `instr_count` is written as zero by [`crate::TraceWriter::create`] and
//! patched (together with the header CRC) by `finish()` — a file whose
//! header still reads zero, or that ends without the `0xE5` marker, was
//! never finished and is rejected as truncated.

use crate::codec::crc32;
use crate::TraceError;

/// File magic: "PCT1" (Page-Cross Trace, layout 1).
pub const MAGIC: [u8; 4] = *b"PCT1";

/// Current format version.
pub const VERSION: u16 = 1;

/// Frame tag opening a record chunk.
pub const CHUNK_TAG: u8 = 0xC1;

/// Frame tag of the end-of-stream marker.
pub const END_TAG: u8 = 0xE5;

/// Records per chunk written by [`crate::TraceWriter`] (decode granularity
/// of the streaming reader's double buffer).
pub const CHUNK_RECORDS: usize = 4096;

/// Upper bound a reader accepts for one chunk's payload, guarding against
/// absurd lengths from corrupt framing. Generous: even 10-byte worst-case
/// records stay far below this.
pub const MAX_CHUNK_PAYLOAD: u64 = 32 << 20;

/// Trace identity and provenance, as stored in the header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceMeta {
    /// Format version the file was written with.
    pub version: u16,
    /// Cores the recording targeted (1 for single-workload records).
    pub core_count: u32,
    /// Total instruction records in the file.
    pub instr_count: u64,
    /// Seed of the generator the trace was recorded from.
    pub seed: u64,
    /// Workload name (replay reports carry it, so replayed and direct runs
    /// produce identical reports).
    pub name: String,
}

/// Serialises a header for `meta` (CRC included).
pub fn encode_header(meta: &TraceMeta) -> Vec<u8> {
    let name = meta.name.as_bytes();
    assert!(
        name.len() <= u16::MAX as usize,
        "workload name too long for the header"
    );
    let mut buf = Vec::with_capacity(34 + name.len());
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&meta.version.to_le_bytes());
    buf.extend_from_slice(&0u16.to_le_bytes()); // flags (reserved)
    buf.extend_from_slice(&meta.core_count.to_le_bytes());
    buf.extend_from_slice(&meta.instr_count.to_le_bytes());
    buf.extend_from_slice(&meta.seed.to_le_bytes());
    buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
    buf.extend_from_slice(name);
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Parses and validates a header from the start of `buf`, returning the
/// metadata and the header's total byte length.
///
/// `buf` may extend beyond the header (callers hand in a prefix of the
/// file); it must merely be long enough.
pub fn decode_header(buf: &[u8]) -> Result<(TraceMeta, usize), TraceError> {
    const FIXED: usize = 4 + 2 + 2 + 4 + 8 + 8 + 2;
    if buf.len() < FIXED {
        return Err(TraceError::Truncated(format!(
            "file holds {} byte(s), a header needs at least {}",
            buf.len(),
            FIXED + 4
        )));
    }
    if buf[0..4] != MAGIC {
        return Err(TraceError::NotATrace);
    }
    let u16_at = |o: usize| u16::from_le_bytes([buf[o], buf[o + 1]]);
    let version = u16_at(4);
    if version != VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let core_count = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    let instr_count = u64::from_le_bytes(buf[12..20].try_into().unwrap());
    let seed = u64::from_le_bytes(buf[20..28].try_into().unwrap());
    let name_len = u16_at(28) as usize;
    let total = FIXED + name_len + 4;
    if buf.len() < total {
        return Err(TraceError::Truncated(format!(
            "header declares a {name_len}-byte name but the file ends first"
        )));
    }
    let name = std::str::from_utf8(&buf[FIXED..FIXED + name_len])
        .map_err(|_| TraceError::HeaderCorrupt("workload name is not UTF-8".to_string()))?
        .to_string();
    let stored_crc = u32::from_le_bytes(buf[total - 4..total].try_into().unwrap());
    let actual_crc = crc32(&buf[..total - 4]);
    if stored_crc != actual_crc {
        return Err(TraceError::HeaderCorrupt(format!(
            "header checksum mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
        )));
    }
    Ok((
        TraceMeta {
            version,
            core_count,
            instr_count,
            seed,
            name,
        },
        total,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> TraceMeta {
        TraceMeta {
            version: VERSION,
            core_count: 1,
            instr_count: 123_456,
            seed: 0xC0FFEE,
            name: "gap.s00".to_string(),
        }
    }

    #[test]
    fn header_round_trips() {
        let m = meta();
        let bytes = encode_header(&m);
        let (back, len) = decode_header(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(len, bytes.len());
        // Decoding tolerates trailing file content.
        let mut longer = bytes.clone();
        longer.extend_from_slice(&[1, 2, 3]);
        assert_eq!(decode_header(&longer).unwrap().1, bytes.len());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_header(&meta());
        bytes[0] = b'X';
        assert!(matches!(decode_header(&bytes), Err(TraceError::NotATrace)));
    }

    #[test]
    fn future_version_rejected() {
        let mut m = meta();
        m.version = VERSION + 1;
        let bytes = encode_header(&m);
        assert!(matches!(
            decode_header(&bytes),
            Err(TraceError::UnsupportedVersion(v)) if v == VERSION + 1
        ));
    }

    #[test]
    fn flipped_bit_fails_the_crc() {
        let mut bytes = encode_header(&meta());
        bytes[13] ^= 0x40; // inside instr_count
        let err = decode_header(&bytes).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "got: {err}");
    }

    #[test]
    fn short_buffer_is_truncated() {
        let bytes = encode_header(&meta());
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert!(
                matches!(decode_header(&bytes[..cut]), Err(TraceError::Truncated(_))),
                "prefix of {cut} bytes must read as truncated"
            );
        }
    }
}
