//! Replay: recorded traces as drop-in [`TraceFactory`] implementations.
//!
//! [`TraceReplay::build`] hands the engine a [`StreamingSource`] by
//! default: chunks are decoded on a background `std::thread` and passed
//! through a bounded two-slot channel, so the decode of chunk *n+1* (and
//! *n+2*) overlaps the simulation of chunk *n* — the double-buffering the
//! paper's ChampSim methodology gets from its gzip pipe. The blocking
//! variant decodes inline and exists as the baseline the `micro_trace`
//! benchmark compares against.

use std::path::{Path, PathBuf};
use std::sync::mpsc::{sync_channel, Receiver};

use pagecross_cpu::trace::{Instr, TraceFactory, TraceSource};

use crate::format::TraceMeta;
use crate::reader::TraceReader;
use crate::TraceError;

/// Batches buffered between the decoder thread and the consumer: one being
/// consumed, one ready, one in decode — classic double buffering with a
/// bounded channel.
const STREAM_DEPTH: usize = 2;

/// A recorded trace, openable as a workload.
///
/// Implements [`TraceFactory`], so a `.pct` file drops into
/// `SimulationBuilder::run_workload`, `run_mix` and campaign grids
/// unchanged. `name()` reports the recorded workload's name — a replayed
/// report is indistinguishable from (and bit-identical to) the direct run
/// it was recorded from.
#[derive(Clone, Debug)]
pub struct TraceReplay {
    path: PathBuf,
    meta: TraceMeta,
    streaming: bool,
}

impl TraceReplay {
    /// Opens and validates `path` (header magic, version, CRC; non-empty).
    /// The records themselves are decoded lazily at `build()` time.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let path = path.as_ref().to_path_buf();
        let reader = TraceReader::open(&path)?;
        let meta = reader.meta().clone();
        if meta.instr_count == 0 {
            return Err(TraceError::Empty);
        }
        Ok(Self {
            path,
            meta,
            streaming: true,
        })
    }

    /// Switches `build()` to the inline (blocking) decoder.
    pub fn blocking(mut self) -> Self {
        self.streaming = false;
        self
    }

    /// Header metadata of the underlying file.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// The file being replayed.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl TraceFactory for TraceReplay {
    fn name(&self) -> &str {
        &self.meta.name
    }

    fn build(&self) -> Box<dyn TraceSource> {
        // `open` already validated the header; failures here are
        // environmental (file deleted/corrupted between open and build) and
        // the infallible TraceSource contract leaves panicking with a
        // descriptive message as the only honest option.
        if self.streaming {
            Box::new(
                StreamingSource::spawn(&self.path)
                    .unwrap_or_else(|e| panic!("replay of {}: {e}", self.path.display())),
            )
        } else {
            Box::new(
                BlockingSource::open(&self.path)
                    .unwrap_or_else(|e| panic!("replay of {}: {e}", self.path.display())),
            )
        }
    }
}

/// Inline decoder: each chunk is decoded on the simulation thread when the
/// previous one runs out. Rewinds at end-of-stream (infinite stream).
pub struct BlockingSource {
    reader: TraceReader,
    path: PathBuf,
    chunk: Vec<Instr>,
    pos: usize,
}

impl BlockingSource {
    /// Opens `path` for inline replay.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        let reader = TraceReader::open(path)?;
        if reader.meta().instr_count == 0 {
            return Err(TraceError::Empty);
        }
        Ok(Self {
            reader,
            path: path.to_path_buf(),
            chunk: Vec::new(),
            pos: 0,
        })
    }

    fn refill(&mut self) {
        loop {
            match self.reader.next_chunk(&mut self.chunk) {
                Ok(true) => {
                    self.pos = 0;
                    return;
                }
                Ok(false) => {
                    // Clean end of the recording: repeat from the top.
                    if let Err(e) = self.reader.rewind() {
                        panic!("replay of {}: {e}", self.path.display());
                    }
                }
                Err(e) => panic!("replay of {}: {e}", self.path.display()),
            }
        }
    }
}

impl TraceSource for BlockingSource {
    fn next_instr(&mut self) -> Instr {
        if self.pos >= self.chunk.len() {
            self.refill();
        }
        let i = self.chunk[self.pos];
        self.pos += 1;
        i
    }
}

/// Streaming decoder: chunks are decoded ahead of the consumer on a named
/// background thread (`pct-decode`) and handed over through a bounded
/// two-slot channel, so decode overlaps simulation.
///
/// Overlap needs a second hardware thread. On a single-core machine a
/// background decoder can only *add* context-switch cost on top of the
/// same decode work, so [`StreamingSource::spawn`] degrades to inline
/// decoding there (measured in the `micro_trace` benchmark); use
/// [`StreamingSource::spawn_background`] to force the decoder thread.
///
/// The decoder thread exits when the source is dropped (the channel
/// disconnects and `send` fails) or when it hits a decode error, which it
/// forwards so the consumer can report it.
pub struct StreamingSource {
    inner: StreamImpl,
    path: PathBuf,
    chunk: Vec<Instr>,
    pos: usize,
}

enum StreamImpl {
    /// Chunks arrive pre-decoded from the `pct-decode` thread.
    Background(Receiver<Result<Vec<Instr>, TraceError>>),
    /// Single-core fallback: decode inline on the consumer thread.
    Inline(TraceReader),
}

impl StreamingSource {
    /// Opens `path` for streaming replay: decode on a background thread
    /// when a second hardware thread exists, inline otherwise.
    pub fn spawn(path: &Path) -> Result<Self, TraceError> {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores >= 2 {
            return Self::spawn_background(path);
        }
        let reader = TraceReader::open(path)?;
        if reader.meta().instr_count == 0 {
            return Err(TraceError::Empty);
        }
        Ok(Self {
            inner: StreamImpl::Inline(reader),
            path: path.to_path_buf(),
            chunk: Vec::new(),
            pos: 0,
        })
    }

    /// Opens `path` and unconditionally spawns the decoder thread.
    pub fn spawn_background(path: &Path) -> Result<Self, TraceError> {
        let mut reader = TraceReader::open(path)?;
        if reader.meta().instr_count == 0 {
            return Err(TraceError::Empty);
        }
        let (tx, rx) = sync_channel::<Result<Vec<Instr>, TraceError>>(STREAM_DEPTH);
        std::thread::Builder::new()
            .name("pct-decode".to_string())
            .spawn(move || {
                loop {
                    let mut chunk = Vec::new();
                    let msg = match reader.next_chunk(&mut chunk) {
                        Ok(true) => Ok(chunk),
                        Ok(false) => match reader.rewind() {
                            Ok(()) => continue, // repeat from the first chunk
                            Err(e) => Err(e),
                        },
                        Err(e) => Err(e),
                    };
                    let fatal = msg.is_err();
                    // A send fails only when the consumer is gone — done
                    // either way.
                    if tx.send(msg).is_err() || fatal {
                        return;
                    }
                }
            })
            .map_err(TraceError::Io)?;
        Ok(Self {
            inner: StreamImpl::Background(rx),
            path: path.to_path_buf(),
            chunk: Vec::new(),
            pos: 0,
        })
    }

    /// True when chunks come from the background decoder thread.
    pub fn is_background(&self) -> bool {
        matches!(self.inner, StreamImpl::Background(_))
    }

    fn refill(&mut self) {
        loop {
            match &mut self.inner {
                StreamImpl::Background(rx) => match rx.recv() {
                    Ok(Ok(chunk)) => {
                        self.chunk = chunk;
                        self.pos = 0;
                        return;
                    }
                    Ok(Err(e)) => panic!("replay of {}: {e}", self.path.display()),
                    Err(_) => panic!(
                        "replay of {}: decoder thread exited unexpectedly",
                        self.path.display()
                    ),
                },
                StreamImpl::Inline(reader) => match reader.next_chunk(&mut self.chunk) {
                    Ok(true) => {
                        self.pos = 0;
                        return;
                    }
                    Ok(false) => {
                        // Clean end of the recording: repeat from the top.
                        if let Err(e) = reader.rewind() {
                            panic!("replay of {}: {e}", self.path.display());
                        }
                    }
                    Err(e) => panic!("replay of {}: {e}", self.path.display()),
                },
            }
        }
    }
}

impl TraceSource for StreamingSource {
    fn next_instr(&mut self) -> Instr {
        if self.pos >= self.chunk.len() {
            self.refill();
        }
        let i = self.chunk[self.pos];
        self.pos += 1;
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::{read_all, verify_file};
    use crate::writer::{record, TraceWriter};
    use pagecross_cpu::trace::{Op, TraceFactory};
    use pagecross_types::{Rng64, VirtAddr};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique temp path per test invocation.
    fn tmp(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("pct-test-{}-{tag}-{n}.pct", std::process::id()))
    }

    /// A deterministic pseudo-random workload exercising every record kind.
    struct RandomWorkload {
        seed: u64,
    }

    struct RandomSrc(Rng64);

    impl TraceSource for RandomSrc {
        fn next_instr(&mut self) -> Instr {
            let rng = &mut self.0;
            let pc = 0x40_0000 + rng.below(1 << 20) * 4;
            let op = match rng.below(6) {
                0 | 1 => Op::Alu,
                2 => Op::Branch {
                    taken: rng.chance(0.7),
                },
                3 => Op::Load {
                    va: VirtAddr::new(rng.next_u64() >> 16),
                    depends_on_prev: false,
                },
                4 => Op::Load {
                    va: VirtAddr::new(rng.next_u64() >> 16),
                    depends_on_prev: true,
                },
                _ => Op::Store {
                    va: VirtAddr::new(rng.next_u64() >> 16),
                },
            };
            Instr { pc, op }
        }
    }

    impl TraceFactory for RandomWorkload {
        fn name(&self) -> &str {
            "random"
        }

        fn build(&self) -> Box<dyn TraceSource> {
            Box::new(RandomSrc(Rng64::new(self.seed)))
        }
    }

    fn reference_stream(factory: &dyn TraceFactory, n: u64) -> Vec<Instr> {
        let mut src = factory.build();
        (0..n).map(|_| src.next_instr()).collect()
    }

    #[test]
    fn record_then_read_all_round_trips() {
        let path = tmp("roundtrip");
        let w = RandomWorkload { seed: 11 };
        let n = 10_000u64; // several chunks at the default granularity
        let meta = record(&w, n, 11, &path).unwrap();
        assert_eq!(meta.instr_count, n);
        assert_eq!(meta.name, "random");
        let (meta2, instrs) = read_all(&path).unwrap();
        assert_eq!(meta2, meta);
        assert_eq!(instrs, reference_stream(&w, n));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn blocking_and_streaming_sources_agree_and_wrap() {
        let path = tmp("sources");
        let w = RandomWorkload { seed: 23 };
        let n = 2_500u64;
        record(&w, n, 23, &path).unwrap();
        let replay = TraceReplay::open(&path).unwrap();
        assert_eq!(replay.meta().instr_count, n);
        let mut blocking = BlockingSource::open(&path).unwrap();
        // Force the decoder thread so this covers the background path even
        // on single-core CI (adaptive spawn would decode inline there).
        let mut streaming = StreamingSource::spawn_background(&path).unwrap();
        assert!(streaming.is_background());
        let mut direct = w.build();
        // Read past the end of the recording: both sources must wrap to the
        // first record (direct reference: restart the generator).
        for i in 0..n {
            let d = direct.next_instr();
            assert_eq!(blocking.next_instr(), d, "blocking diverged at {i}");
            assert_eq!(streaming.next_instr(), d, "streaming diverged at {i}");
        }
        let mut direct = w.build();
        for i in 0..500 {
            let d = direct.next_instr();
            assert_eq!(blocking.next_instr(), d, "blocking wrap diverged at {i}");
            assert_eq!(streaming.next_instr(), d, "streaming wrap diverged at {i}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dropping_streaming_source_stops_decoder() {
        let path = tmp("drop");
        record(&RandomWorkload { seed: 3 }, 1_000, 3, &path).unwrap();
        let mut s = StreamingSource::spawn_background(&path).unwrap();
        let _ = s.next_instr();
        drop(s);
        // The decoder notices the closed channel and exits; nothing to
        // assert beyond not hanging (the test harness would time out).
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn adaptive_spawn_matches_background_stream() {
        let path = tmp("adaptive");
        let w = RandomWorkload { seed: 41 };
        record(&w, 1_200, 41, &path).unwrap();
        // Whichever implementation spawn() picked for this machine, the
        // instruction stream is the same.
        let mut adaptive = StreamingSource::spawn(&path).unwrap();
        let mut forced = StreamingSource::spawn_background(&path).unwrap();
        for i in 0..2_400 {
            assert_eq!(
                adaptive.next_instr(),
                forced.next_instr(),
                "diverged at {i}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_rejected_with_description() {
        let path = tmp("truncated");
        record(&RandomWorkload { seed: 5 }, 5_000, 5, &path).unwrap();
        let full = std::fs::metadata(&path).unwrap().len();
        // Cut into the middle of the record chunks.
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 100).unwrap();
        drop(f);
        let err = read_all(&path).unwrap_err();
        let msg = err.to_string();
        assert!(
            matches!(err, TraceError::Truncated(_)) && msg.contains("truncated"),
            "expected a descriptive truncation error, got: {msg}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unfinished_recording_is_rejected() {
        let path = tmp("unfinished");
        let mut w = TraceWriter::create(&path, "w", 1, 0).unwrap();
        for i in 0..100u64 {
            w.push(&Instr {
                pc: i * 4,
                op: Op::Alu,
            })
            .unwrap();
        }
        drop(w); // no finish(): header still says zero instructions
        let err = TraceReplay::open(&path).unwrap_err();
        assert!(
            err.to_string().contains("never finished"),
            "expected unfinished-recording rejection, got: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_in_payload_is_rejected_with_checksum_error() {
        let path = tmp("bitflip");
        record(&RandomWorkload { seed: 7 }, 5_000, 7, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit well inside the chunk payloads (past the header).
        let target = bytes.len() / 2;
        bytes[target] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let err = verify_file(&path).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("checksum mismatch")
                || msg.contains("corrupt trace chunk")
                || msg.contains("record-count mismatch"),
            "expected a descriptive corruption error, got: {msg}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn end_marker_count_mismatch_is_rejected() {
        let path = tmp("endcount");
        record(&RandomWorkload { seed: 9 }, 300, 9, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // The final 8 bytes are the end marker's record count.
        let n = bytes.len();
        bytes[n - 8] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            matches!(verify_file(&path), Err(TraceError::CountMismatch { .. })),
            "tampered end marker must be rejected"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multi_chunk_files_decode_identically_to_single_chunk() {
        let w = RandomWorkload { seed: 31 };
        let n = 1_000u64;
        let small = tmp("chunks-small");
        let big = tmp("chunks-big");
        // 64-record chunks vs one giant chunk.
        let mut ws = TraceWriter::create(&small, "random", 1, 31)
            .unwrap()
            .chunk_records(64);
        let mut wb = TraceWriter::create(&big, "random", 1, 31)
            .unwrap()
            .chunk_records(1 << 20);
        let mut src = w.build();
        for _ in 0..n {
            let i = src.next_instr();
            ws.push(&i).unwrap();
            wb.push(&i).unwrap();
        }
        ws.finish().unwrap();
        wb.finish().unwrap();
        assert_eq!(read_all(&small).unwrap().1, read_all(&big).unwrap().1);
        std::fs::remove_file(&small).ok();
        std::fs::remove_file(&big).ok();
    }

    #[test]
    fn open_missing_file_is_io_error() {
        let err = TraceReplay::open(tmp("missing")).unwrap_err();
        assert!(matches!(err, TraceError::Io(_)));
    }
}
