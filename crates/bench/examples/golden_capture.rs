//! Regenerates the constants locked by `tests/golden.rs`.
//!
//! Run `cargo run --release -p pagecross-bench --example golden_capture`
//! after an *intentional* behaviour change and copy the printed counters
//! into the golden table. Debug and release builds must print identical
//! values (the simulator is integer-deterministic); if they ever differ,
//! that is itself a bug.

use pagecross_cpu::trace::TraceFactory;
use pagecross_cpu::{PgcPolicyKind, PrefetcherKind, SimulationBuilder};
use pagecross_workloads::{suite, SuiteId};

fn main() {
    let cases = [
        (
            "gap.s00",
            SuiteId::Gap,
            0,
            PrefetcherKind::Berti,
            PgcPolicyKind::Dripper,
        ),
        (
            "spec06.s00",
            SuiteId::Spec06,
            0,
            PrefetcherKind::Berti,
            PgcPolicyKind::PermitPgc,
        ),
        (
            "ligra.s01",
            SuiteId::Ligra,
            1,
            PrefetcherKind::Bop,
            PgcPolicyKind::Dripper,
        ),
        (
            "qmm_int.s00",
            SuiteId::QmmInt,
            0,
            PrefetcherKind::Ipcp,
            PgcPolicyKind::DiscardPgc,
        ),
    ];
    for (name, sid, idx, pf, pol) in cases {
        let w = &suite(sid).workloads()[idx];
        assert_eq!(
            w.name(),
            name,
            "registry order changed; update the case list"
        );
        let r = SimulationBuilder::new()
            .prefetcher(pf)
            .pgc_policy(pol)
            .warmup(5_000)
            .instructions(20_000)
            .run_workload(w);
        println!(
            "(\"{}\", {:?}, {:?}): cycles={} l1d_acc={} l1d_miss={} dtlb_miss={} stlb_miss={} \
             pgc_cand={} pgc_issued={} pgc_disc={} demand_walks={} ipc={:.6} l1d_mpki={:.6} dtlb_mpki={:.6}",
            name,
            pf,
            pol,
            r.core.cycles,
            r.l1d.demand_accesses,
            r.l1d.demand_misses,
            r.dtlb.misses,
            r.stlb.misses,
            r.prefetch.pgc_candidates,
            r.prefetch.pgc_issued,
            r.prefetch.pgc_discarded,
            r.walks.demand_walks,
            r.ipc(),
            r.l1d_mpki(),
            r.dtlb_mpki()
        );
    }
}
