//! Fig. 19 — 8-core mixes (§V-B10): distribution of weighted speedups of
//! Permit PGC and DRIPPER over Discard PGC across random mixes.
//!
//! Paper's shape: across 300 random 8-core mixes, DRIPPER beats Permit
//! (+3.3%) and Discard (+2.0%) in geomean and wins for the vast majority
//! of mixes. This harness runs a scaled-down campaign (default 8 mixes,
//! `PAGECROSS_MIXES` to change).

use pagecross_bench::{fmt_pct, print_header, print_row, Summary};
use pagecross_cpu::{PgcPolicyKind, PrefetcherKind, SimulationBuilder, TraceFactory};
use pagecross_types::geomean;
use pagecross_workloads::random_mixes;

fn run_mix(policy: PgcPolicyKind, mix: &[&'static pagecross_workloads::Workload]) -> Vec<f64> {
    let ws: Vec<&dyn TraceFactory> = mix.iter().map(|w| *w as &dyn TraceFactory).collect();
    SimulationBuilder::new()
        .prefetcher(PrefetcherKind::Berti)
        .pgc_policy(policy)
        .warmup(8_000)
        .instructions(16_000)
        .run_mix(&ws)
        .ipcs()
}

fn main() {
    let n_mixes = std::env::var("PAGECROSS_MIXES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(8)
        .clamp(1, 300);
    let mixes = random_mixes(n_mixes, 8, 0xFEED);

    print_header(
        "fig19",
        &["mix", "permit weighted speedup", "dripper weighted speedup"],
    );
    let mut permit_ws = Vec::new();
    let mut dripper_ws = Vec::new();
    for (i, mix) in mixes.iter().enumerate() {
        let base = run_mix(PgcPolicyKind::DiscardPgc, mix);
        let permit = run_mix(PgcPolicyKind::PermitPgc, mix);
        let dripper = run_mix(PgcPolicyKind::Dripper, mix);
        // Weighted speedup over the Discard baseline: per-core relative IPC
        // summed, normalised by core count.
        let wsp =
            |v: &[f64]| v.iter().zip(&base).map(|(a, b)| a / b).sum::<f64>() / base.len() as f64;
        let (p, d) = (wsp(&permit), wsp(&dripper));
        permit_ws.push(p);
        dripper_ws.push(d);
        print_row("fig19", &[format!("mix{i:02}"), fmt_pct(p), fmt_pct(d)]);
    }
    let gp = geomean(&permit_ws).unwrap_or(1.0);
    let gd = geomean(&dripper_ws).unwrap_or(1.0);
    print_row("fig19", &["GEOMEAN".into(), fmt_pct(gp), fmt_pct(gd)]);

    let wins = dripper_ws
        .iter()
        .zip(&permit_ws)
        .filter(|(d, p)| d >= p)
        .count();
    Summary {
        experiment: "fig19".into(),
        paper: "8-core mixes: DRIPPER beats Permit (+3.3%) and Discard (+2.0%) in geomean; \
                we require DRIPPER > Permit and a majority of mixes (see EXPERIMENTS.md)"
            .into(),
        measured: format!(
            "dripper {} vs permit {} over discard; dripper >= permit on {wins}/{} mixes",
            fmt_pct(gd),
            fmt_pct(gp),
            mixes.len()
        ),
        shape_holds: gd > gp && wins * 2 >= mixes.len(),
    }
    .print();
}
