//! Fig. 16 — evaluation with both 4 KB and 2 MB pages (§V-B6): Permit PGC,
//! DRIPPER(filter@2MB) and DRIPPER(filter@4KB) over Discard PGC (Berti),
//! with half the 2 MB regions promoted to huge pages.
//!
//! Paper's shape: DRIPPER@4KB > DRIPPER@2MB > baseline; DRIPPER keeps its
//! benefit when large pages are used (paper: +2.2% over Permit, +1.3%
//! over Discard; @4KB beats @2MB by 0.5%).

use pagecross_bench::{
    env_scale, fmt_pct, geomean_speedup, ipcs_of, print_header, print_row, quick_seen_set, run_all,
    Scheme, Summary,
};
use pagecross_cpu::{BoundaryMode, PgcPolicyKind, PrefetcherKind};
use pagecross_mem::HugePagePolicy;

fn main() {
    let cfg = env_scale();
    let workloads = quick_seen_set();
    let pf = PrefetcherKind::Berti;
    let huge = HugePagePolicy::Fraction(0.5);
    let with = |label: &str, policy, boundary| {
        let mut s = Scheme::new(label, pf, policy);
        s.boundary = boundary;
        s.huge = huge.clone();
        s
    };
    let schemes = vec![
        with(
            "discard-pgc",
            PgcPolicyKind::DiscardPgc,
            BoundaryMode::Fixed4K,
        ),
        with(
            "permit-pgc",
            PgcPolicyKind::PermitPgc,
            BoundaryMode::PageSizeAware,
        ),
        with(
            "dripper@2mb",
            PgcPolicyKind::Dripper,
            BoundaryMode::PageSizeAware,
        ),
        with("dripper@4kb", PgcPolicyKind::Dripper, BoundaryMode::Fixed4K),
    ];
    let results = run_all(&workloads, &schemes, &cfg);
    let base = ipcs_of(&results, "discard-pgc");

    print_header("fig16", &["scheme", "geomean vs discard (4KB+2MB pages)"]);
    let mut geos = Vec::new();
    for s in &schemes[1..] {
        let g = geomean_speedup(&ipcs_of(&results, &s.label), &base);
        print_row("fig16", &[s.label.clone(), fmt_pct(g)]);
        geos.push((s.label.clone(), g));
    }
    let permit = geos[0].1;
    let d2m = geos[1].1;
    let d4k = geos[2].1;
    Summary {
        experiment: "fig16".into(),
        paper: "with 4KB+2MB pages, DRIPPER@4KB ≥ DRIPPER@2MB and both beat Permit; \
                DRIPPER stays ≥ Discard"
            .into(),
        measured: format!(
            "permit {}, dripper@2mb {}, dripper@4kb {}",
            fmt_pct(permit),
            fmt_pct(d2m),
            fmt_pct(d4k)
        ),
        shape_holds: d4k >= d2m - 0.002 && d4k > permit && d4k >= 0.999,
    }
    .print();
}
