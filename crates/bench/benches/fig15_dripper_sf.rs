//! Fig. 15 — DRIPPER vs DRIPPER-SF (system features only): the
//! contribution of the program feature.
//!
//! Paper's shape: DRIPPER beats DRIPPER-SF for the majority of workloads
//! (+0.9% geomean) because the program feature separates individual
//! candidates in ways phase-level system features cannot.

use pagecross_bench::{
    env_scale, fmt_pct, geomean_speedup, ipcs_of, print_header, print_row, quick_seen_set, run_all,
    Scheme, Summary,
};
use pagecross_cpu::{PgcPolicyKind, PrefetcherKind};

fn main() {
    let cfg = env_scale();
    let workloads = quick_seen_set();
    let pf = PrefetcherKind::Berti;
    let schemes = vec![
        Scheme::new("discard-pgc", pf, PgcPolicyKind::DiscardPgc),
        Scheme::new("dripper-sf", pf, PgcPolicyKind::DripperSf),
        Scheme::new("dripper", pf, PgcPolicyKind::Dripper),
    ];
    let results = run_all(&workloads, &schemes, &cfg);
    let base = ipcs_of(&results, "discard-pgc");
    let sf = ipcs_of(&results, "dripper-sf");
    let full = ipcs_of(&results, "dripper");

    print_header("fig15", &["workload", "dripper-sf", "dripper"]);
    let mut dripper_wins = 0;
    for (i, chunk) in results.chunks(3).enumerate() {
        print_row(
            "fig15",
            &[
                chunk[0].workload.clone(),
                fmt_pct(sf[i] / base[i]),
                fmt_pct(full[i] / base[i]),
            ],
        );
        if full[i] >= sf[i] - 1e-9 {
            dripper_wins += 1;
        }
    }
    let g_sf = geomean_speedup(&sf, &base);
    let g_full = geomean_speedup(&full, &base);
    print_row("fig15", &["GEOMEAN".into(), fmt_pct(g_sf), fmt_pct(g_full)]);

    Summary {
        experiment: "fig15".into(),
        paper: "DRIPPER > DRIPPER-SF for the majority of workloads (+0.9% geomean)".into(),
        measured: format!(
            "dripper {} vs dripper-sf {}; dripper >= sf on {}/{} workloads",
            fmt_pct(g_full),
            fmt_pct(g_sf),
            dripper_wins,
            workloads.len()
        ),
        shape_holds: g_full >= g_sf && dripper_wins * 2 >= workloads.len(),
    }
    .print();
}
