//! Fig. 13 — distributions of useful and useless page-cross prefetches
//! per kilo-instruction, Permit PGC vs DRIPPER (Berti).
//!
//! Paper's shape: the useful-PGC distributions of Permit and DRIPPER are
//! nearly identical, while DRIPPER's useless-PGC distribution concentrates
//! near zero and Permit's does not.

use pagecross_bench::{
    core_schemes, env_scale, print_header, print_row, quick_seen_set, run_all, Summary,
};
use pagecross_cpu::PrefetcherKind;

fn main() {
    let cfg = env_scale();
    let workloads = quick_seen_set();
    let schemes = core_schemes(PrefetcherKind::Berti);
    let results = run_all(&workloads, &schemes, &cfg);

    print_header(
        "fig13",
        &[
            "workload",
            "useful/KI permit",
            "useful/KI dripper",
            "useless/KI permit",
            "useless/KI dripper",
        ],
    );
    let (mut pu, mut du, mut pw, mut dw) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for chunk in results.chunks(3) {
        let permit = &chunk[1].report;
        let dripper = &chunk[2].report;
        pu.push(permit.pgc_useful_pki());
        du.push(dripper.pgc_useful_pki());
        pw.push(permit.pgc_useless_pki());
        dw.push(dripper.pgc_useless_pki());
        print_row(
            "fig13",
            &[
                chunk[0].workload.clone(),
                format!("{:.3}", permit.pgc_useful_pki()),
                format!("{:.3}", dripper.pgc_useful_pki()),
                format!("{:.3}", permit.pgc_useless_pki()),
                format!("{:.3}", dripper.pgc_useless_pki()),
            ],
        );
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    print_row(
        "fig13",
        &[
            "MEAN".into(),
            format!("{:.3}", mean(&pu)),
            format!("{:.3}", mean(&du)),
            format!("{:.3}", mean(&pw)),
            format!("{:.3}", mean(&dw)),
        ],
    );

    // Shape: DRIPPER keeps a meaningful share of the useful prefetches but
    // cuts the useless ones by far more.
    let useful_kept = if mean(&pu) > 0.0 {
        mean(&du) / mean(&pu)
    } else {
        1.0
    };
    let useless_kept = if mean(&pw) > 0.0 {
        mean(&dw) / mean(&pw)
    } else {
        0.0
    };
    Summary {
        experiment: "fig13".into(),
        paper: "DRIPPER has almost the same useful-PGC volume as Permit and far fewer \
                useless PGC prefetches (concentrated near zero)"
            .into(),
        measured: format!(
            "useful kept {:.0}%, useless kept {:.0}%",
            useful_kept * 100.0,
            useless_kept * 100.0
        ),
        shape_holds: useless_kept < useful_kept && useless_kept < 0.5,
    }
    .print();
}
