//! THP sensitivity — page-cross prefetch volume vs transparent-huge-page
//! aggressiveness under the imitation-OS model (§II-A1 context: huge pages
//! shrink the number of 4 KB boundaries a prefetcher can cross).
//!
//! Sweeps THP fraction {0, 0.25, 0.5, 0.75, 1.0} at two physical-memory
//! pressures (64 MB and 128 MB) with Berti + Permit PGC and a
//! page-size-aware boundary: as khugepaged promotes more regions to 2 MB,
//! in-region 4 KB crossings stop being page crossings, so the issued
//! page-cross prefetch volume must fall monotonically with the THP
//! fraction.

use pagecross_bench::{
    env_scale, ipcs_of, print_header, print_row, run_all, Scheme, Summary, WorkloadResult,
};
use pagecross_cpu::{BoundaryMode, OsConfig, PgcPolicyKind, PrefetcherKind};
use pagecross_workloads::representative_seen;

const THP_LEVELS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
const PHYS_LEVELS: [(&str, u64); 2] = [("64M", 64 << 20), ("128M", 128 << 20)];

fn label(phys: &str, thp: f64) -> String {
    format!("thp{thp:.2}@{phys}")
}

/// Sums a page-cross/OS counter of one scheme across every workload.
fn total_of(results: &[WorkloadResult], scheme: &str, f: impl Fn(&WorkloadResult) -> u64) -> u64 {
    results.iter().filter(|r| r.scheme == scheme).map(f).sum()
}

fn geomean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    (v.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / v.len() as f64).exp()
}

fn main() {
    let cfg = env_scale();
    let workloads = representative_seen(1);
    let schemes: Vec<Scheme> = PHYS_LEVELS
        .iter()
        .flat_map(|&(phys_label, phys_bytes)| {
            THP_LEVELS.map(|thp| {
                let mut s = Scheme::new(
                    &label(phys_label, thp),
                    PrefetcherKind::Berti,
                    PgcPolicyKind::PermitPgc,
                );
                s.boundary = BoundaryMode::PageSizeAware;
                s.os = Some(OsConfig {
                    phys_mem_bytes: phys_bytes,
                    thp,
                    ..OsConfig::default()
                });
                s
            })
        })
        .collect();
    let results = run_all(&workloads, &schemes, &cfg);
    for r in &results {
        assert!(
            r.error.is_none(),
            "{}:{} failed: {:?}",
            r.workload,
            r.scheme,
            r.error
        );
    }

    print_header(
        "fig_thp",
        &[
            "scheme",
            "pgc-issued",
            "faults",
            "reclaims",
            "promotions",
            "shootdowns",
            "geo-ipc",
        ],
    );
    let mut monotone = true;
    let mut endpoints = Vec::new();
    for &(phys_label, _) in &PHYS_LEVELS {
        let mut prev: Option<u64> = None;
        for thp in THP_LEVELS {
            let s = label(phys_label, thp);
            let pgc = total_of(&results, &s, |r| r.report.prefetch.pgc_issued);
            let faults = total_of(&results, &s, |r| r.report.os.faults());
            let reclaims = total_of(&results, &s, |r| r.report.os.reclaims);
            let promotions = total_of(&results, &s, |r| r.report.os.thp_promotions);
            let shootdowns = total_of(&results, &s, |r| r.report.os.shootdowns);
            let geo = geomean(&ipcs_of(&results, &s));
            print_row(
                "fig_thp",
                &[
                    s.clone(),
                    pgc.to_string(),
                    faults.to_string(),
                    reclaims.to_string(),
                    promotions.to_string(),
                    shootdowns.to_string(),
                    format!("{geo:.4}"),
                ],
            );
            // Weakly monotone per pressure level, with 2% slack for timing
            // noise from reclamation churn.
            if let Some(p) = prev {
                monotone &= pgc as f64 <= p as f64 * 1.02;
            }
            prev = Some(pgc);
        }
        let first = total_of(&results, &label(phys_label, THP_LEVELS[0]), |r| {
            r.report.prefetch.pgc_issued
        });
        let last = total_of(
            &results,
            &label(phys_label, *THP_LEVELS.last().unwrap()),
            |r| r.report.prefetch.pgc_issued,
        );
        endpoints.push((phys_label, first, last));
    }
    let strictly_falls = endpoints.iter().all(|&(_, first, last)| last < first);

    Summary {
        experiment: "fig_thp".into(),
        paper: "huge pages remove 4KB boundaries (§II-A1): page-cross prefetch volume \
                falls monotonically as THP promotion gets more aggressive"
            .into(),
        measured: endpoints
            .iter()
            .map(|&(p, f, l)| format!("{p}: pgc {f} -> {l}"))
            .collect::<Vec<_>>()
            .join(", "),
        shape_holds: monotone && strictly_falls,
    }
    .print();
}
