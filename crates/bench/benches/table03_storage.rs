//! Table III — DRIPPER's storage overhead breakdown.
//!
//! This is a static computation over the configuration, printed in the
//! paper's rows. Note: Table III's printed "1×512×5 bits" is inconsistent
//! with its own 0.625 KB line item and 1.44 KB total, which imply ~1024
//! entries; this implementation uses 1024 (see `FilterConfig`).

use moka_pgc::dripper::{dripper_config, TargetPrefetcher};
use pagecross_bench::{print_header, print_row, Summary};

fn main() {
    let cfg = dripper_config(TargetPrefetcher::Berti);
    print_header("table03", &["component", "geometry", "KB"]);

    let wt_bits =
        cfg.program_features.len() as u64 * cfg.wt_entries as u64 * cfg.weight_bits as u64;
    print_row(
        "table03",
        &[
            "program features".into(),
            format!(
                "{}x{}x{} bits",
                cfg.program_features.len(),
                cfg.wt_entries,
                cfg.weight_bits
            ),
            format!("{:.5}", wt_bits as f64 / 8.0 / 1000.0),
        ],
    );
    let sf_bits = cfg.system_features.len() as u64 * cfg.weight_bits as u64;
    print_row(
        "table03",
        &[
            "system features".into(),
            format!("{}x{} bits", cfg.system_features.len(), cfg.weight_bits),
            format!("{:.5}", sf_bits as f64 / 8.0 / 1000.0),
        ],
    );
    let vub_bits = cfg.vub_entries as u64 * 48;
    let pub_bits = cfg.pub_entries as u64 * 48;
    print_row(
        "table03",
        &[
            "vUB".into(),
            format!("{}x(36+12) bits", cfg.vub_entries),
            format!("{:.5}", vub_bits as f64 / 8.0 / 1000.0),
        ],
    );
    print_row(
        "table03",
        &[
            "pUB".into(),
            format!("{}x(36+12) bits", cfg.pub_entries),
            format!("{:.5}", pub_bits as f64 / 8.0 / 1000.0),
        ],
    );
    let total = cfg.storage_kb();
    print_row(
        "table03",
        &["TOTAL".into(), "".into(), format!("{total:.3}")],
    );

    // Same budget for every prefetcher's DRIPPER.
    let same = [
        TargetPrefetcher::Berti,
        TargetPrefetcher::Ipcp,
        TargetPrefetcher::Bop,
    ]
    .iter()
    .all(|&t| (dripper_config(t).storage_kb() - total).abs() < 1e-9);

    Summary {
        experiment: "table03".into(),
        paper: "DRIPPER requires 1.44 KB per core, identical for all prefetchers".into(),
        measured: format!("{total:.3} KB, identical across prefetchers: {same}"),
        shape_holds: (total - 1.44).abs() < 0.05 && same,
    }
    .print();
}
