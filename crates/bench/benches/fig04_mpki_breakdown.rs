//! Fig. 4 — impact of "Permit PGC" on dTLB/sTLB/L1D/LLC MPKIs over
//! "Discard PGC" (Berti), split by which policy wins each workload.
//!
//! Paper's shape: where Permit wins, it reduces dTLB (strongly), sTLB
//! (mildly), L1D and LLC MPKIs; where Discard wins, Permit *increases*
//! pressure across the same structures.

use pagecross_bench::{
    env_scale, motivation_set, print_header, print_row, run_all, Scheme, Summary,
};
use pagecross_cpu::trace::TraceFactory;
use pagecross_cpu::{PgcPolicyKind, PrefetcherKind};

fn main() {
    let cfg = env_scale();
    let workloads = motivation_set();
    let schemes = [
        Scheme::new("discard", PrefetcherKind::Berti, PgcPolicyKind::DiscardPgc),
        Scheme::new("permit", PrefetcherKind::Berti, PgcPolicyKind::PermitPgc),
    ];
    print_header(
        "fig04",
        &["group", "workload", "d_dtlb", "d_stlb", "d_l1d", "d_llc"],
    );

    // (winner-is-permit, deltas)
    let mut permit_wins: Vec<[f64; 4]> = Vec::new();
    let mut discard_wins: Vec<[f64; 4]> = Vec::new();
    for w in &workloads {
        let rs = run_all(&[w], &schemes, &cfg);
        let (d, p) = (&rs[0].report, &rs[1].report);
        let deltas = [
            p.dtlb_mpki() - d.dtlb_mpki(),
            p.stlb_mpki() - d.stlb_mpki(),
            p.l1d_mpki() - d.l1d_mpki(),
            p.llc_mpki() - d.llc_mpki(),
        ];
        let permit_better = p.ipc() > d.ipc();
        print_row(
            "fig04",
            &[
                if permit_better {
                    "permit-wins"
                } else {
                    "discard-wins"
                }
                .to_string(),
                w.name().to_string(),
                format!("{:+.2}", deltas[0]),
                format!("{:+.2}", deltas[1]),
                format!("{:+.2}", deltas[2]),
                format!("{:+.2}", deltas[3]),
            ],
        );
        if permit_better {
            permit_wins.push(deltas);
        } else {
            discard_wins.push(deltas);
        }
    }

    let mean = |v: &[[f64; 4]], i: usize| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().map(|d| d[i]).sum::<f64>() / v.len() as f64
        }
    };
    for (label, group) in [
        ("permit-wins", &permit_wins),
        ("discard-wins", &discard_wins),
    ] {
        print_row(
            "fig04",
            &[
                label.to_string(),
                "MEAN".into(),
                format!("{:+.2}", mean(group, 0)),
                format!("{:+.2}", mean(group, 1)),
                format!("{:+.2}", mean(group, 2)),
                format!("{:+.2}", mean(group, 3)),
            ],
        );
    }

    // Shape: in the permit-wins group the mean dTLB and L1D deltas are
    // strongly negative (pressure relieved); in the discard-wins group
    // there is essentially nothing to gain (deltas near zero) while
    // Permit's speculative walks are pure overhead. In this model the
    // cost of wrong page-cross prefetches shows up as wasted walk/bandwidth
    // work more than as MPKI pollution; see EXPERIMENTS.md.
    let shape = !permit_wins.is_empty()
        && !discard_wins.is_empty()
        && mean(&permit_wins, 0) < -0.5
        && mean(&permit_wins, 2) < -0.5
        && mean(&permit_wins, 0) < 5.0 * mean(&discard_wins, 0)
        && mean(&permit_wins, 2) < 5.0 * mean(&discard_wins, 2);
    Summary {
        experiment: "fig04".into(),
        paper: "permit-wins group: dTLB/sTLB/L1D/LLC MPKIs drop strongly; discard-wins \
                group: essentially nothing to gain (paper shows increases; here the cost \
                is wasted walks/bandwidth instead)"
            .into(),
        measured: format!(
            "permit-wins mean deltas: dtlb {:+.2}, stlb {:+.2}, l1d {:+.2}, llc {:+.2}; \
             discard-wins: dtlb {:+.2}, stlb {:+.2}, l1d {:+.2}, llc {:+.2}",
            mean(&permit_wins, 0),
            mean(&permit_wins, 1),
            mean(&permit_wins, 2),
            mean(&permit_wins, 3),
            mean(&discard_wins, 0),
            mean(&discard_wins, 1),
            mean(&discard_wins, 2),
            mean(&discard_wins, 3),
        ),
        shape_holds: shape,
    }
    .print();
}
