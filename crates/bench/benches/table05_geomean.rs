//! Table V — geomean speedups of Berti+Permit and Berti+DRIPPER over
//! Berti+Discard across seen, unseen, and all (incl. non-intensive)
//! workloads.
//!
//! Paper's numbers: Permit −0.8%/−0.9%/−0.6%; DRIPPER +1.7%/+1.2%/+0.4%.
//! Shape: DRIPPER positive on every set, shrinking when non-intensive
//! workloads dilute the geomean; Permit negative on every set; DRIPPER
//! never harms the non-intensive workloads.

use pagecross_bench::{
    core_schemes, env_scale, fmt_pct, geomean_speedup, ipcs_of, print_header, print_row, run_all,
    Summary,
};
use pagecross_cpu::PrefetcherKind;
use pagecross_workloads::{non_intensive_workloads, representative_seen, representative_unseen};

fn geo_pair(workloads: &[&'static pagecross_workloads::Workload]) -> (f64, f64) {
    let cfg = env_scale();
    let schemes = core_schemes(PrefetcherKind::Berti);
    let results = run_all(workloads, &schemes, &cfg);
    let base = ipcs_of(&results, "discard-pgc");
    (
        geomean_speedup(&ipcs_of(&results, "permit-pgc"), &base),
        geomean_speedup(&ipcs_of(&results, "dripper"), &base),
    )
}

fn main() {
    let seen = representative_seen(2);
    let unseen = representative_unseen(2);
    let non_intensive: Vec<_> = non_intensive_workloads().into_iter().take(8).collect();
    let mut all = seen.clone();
    all.extend(unseen.iter().copied());
    all.extend(non_intensive.iter().copied());

    print_header("table05", &["set", "permit", "dripper"]);
    let (p_seen, d_seen) = geo_pair(&seen);
    print_row(
        "table05",
        &["seen".into(), fmt_pct(p_seen), fmt_pct(d_seen)],
    );
    let (p_unseen, d_unseen) = geo_pair(&unseen);
    print_row(
        "table05",
        &["unseen".into(), fmt_pct(p_unseen), fmt_pct(d_unseen)],
    );
    let (p_all, d_all) = geo_pair(&all);
    print_row(
        "table05",
        &["all+non-intensive".into(), fmt_pct(p_all), fmt_pct(d_all)],
    );
    let (p_ni, d_ni) = geo_pair(&non_intensive);
    print_row(
        "table05",
        &["non-intensive only".into(), fmt_pct(p_ni), fmt_pct(d_ni)],
    );

    let shape = d_seen > p_seen
        && d_unseen > p_unseen
        && d_all > p_all
        && d_seen >= 0.999
        && d_unseen >= 0.999
        && d_ni >= 0.995; // DRIPPER must not harm non-intensive workloads
    Summary {
        experiment: "table05".into(),
        paper: "Permit: −0.8%/−0.9%/−0.6%; DRIPPER: +1.7%/+1.2%/+0.4% (seen/unseen/all); \
                non-intensive workloads unharmed"
            .into(),
        measured: format!(
            "permit {}/{}/{}; dripper {}/{}/{}; non-intensive dripper {}",
            fmt_pct(p_seen),
            fmt_pct(p_unseen),
            fmt_pct(p_all),
            fmt_pct(d_seen),
            fmt_pct(d_unseen),
            fmt_pct(d_all),
            fmt_pct(d_ni)
        ),
        shape_holds: shape,
    }
    .print();
}
