//! Microbenchmarks: raw throughput of the simulator's hot components —
//! useful when porting or optimising the substrate. Runs on the in-repo
//! [`pagecross_bench::microbench`] harness (median-of-N, monotonic clock).

use moka_pgc::dripper::{dripper, TargetPrefetcher};
use moka_pgc::perceptron::PerceptronBank;
use moka_pgc::{FeatureContext, PgcPolicy, ProgramFeature};
use pagecross_bench::microbench::{black_box, Micro};
use pagecross_cpu::{PgcPolicyKind, PrefetcherKind, SimulationBuilder};
use pagecross_mem::vmem::HugePagePolicy;
use pagecross_mem::{Cache, CacheConfig, FillKind, MemConfig, MemorySystem};
use pagecross_prefetch::{AccessInfo, Berti, L1dPrefetcher};
use pagecross_types::{LineAddr, PrefetchCandidate, Rng64, SystemSnapshot, VirtAddr};
use pagecross_workloads::{suite, SuiteId};

fn bench_cache(c: &mut Micro) {
    let mut g = c.benchmark_group("cache");
    g.throughput(1024);
    g.bench_function("access_fill_mix", |b| {
        let mut cache = Cache::new(
            "bench",
            CacheConfig {
                size_bytes: 48 << 10,
                ways: 12,
                latency: 5,
                mshr_entries: 16,
            },
        );
        let mut rng = Rng64::new(1);
        b.iter(|| {
            for _ in 0..1024 {
                let line = LineAddr(rng.below(1 << 16));
                if !cache.demand_access(line, false).hit {
                    cache.fill(line, FillKind::Demand, false);
                }
            }
        });
    });
    g.finish();
}

fn bench_tlb_ptw(c: &mut Micro) {
    let mut g = c.benchmark_group("tlb_ptw");
    g.throughput(256);
    g.bench_function("demand_translate_cold_and_warm", |b| {
        let mut mem = MemorySystem::new(MemConfig::table_iv(1), 1, HugePagePolicy::None, 5);
        let mut rng = Rng64::new(2);
        let mut cycle = 0u64;
        b.iter(|| {
            for _ in 0..256 {
                // Bounded VA space: the harness runs many iterations and the
                // frame allocator must not exhaust physical memory.
                let va = VirtAddr::new(rng.below(1 << 27) & !63);
                cycle += 50;
                black_box(
                    mem.demand_data(0, va, false, cycle)
                        .expect("no OS model, no OOM"),
                );
            }
        });
    });
    g.finish();
}

fn bench_perceptron(c: &mut Micro) {
    let mut g = c.benchmark_group("perceptron");
    g.throughput(1024);
    g.bench_function("predict_55_features", |b| {
        let bank = PerceptronBank::new(&ProgramFeature::bouquet(), 1024, 5);
        let ctx = FeatureContext {
            pc: 0x401000,
            va: 0x7000_1234,
            delta: 5,
            ..Default::default()
        };
        b.iter(|| {
            for i in 0..1024u64 {
                let mut c = ctx;
                c.va = c.va.wrapping_add(i * 64);
                black_box(bank.predict(&c));
            }
        });
    });
    g.bench_function("dripper_decide", |b| {
        let mut policy = dripper(TargetPrefetcher::Berti);
        let snap = SystemSnapshot::default();
        b.iter(|| {
            for i in 0..1024u64 {
                let trigger = VirtAddr::new(0x10_0000 + i * 4096 + 0xFC0);
                let cand = PrefetchCandidate {
                    pc: 0x400100,
                    trigger,
                    target: trigger.offset(64),
                    delta: 1,
                    first_page_access: false,
                };
                let ctx = FeatureContext {
                    pc: cand.pc,
                    va: trigger.raw(),
                    target_va: cand.target.raw(),
                    delta: 1,
                    ..Default::default()
                };
                black_box(policy.decide(&cand, &ctx, &snap));
            }
        });
    });
    g.finish();
}

fn bench_prefetchers(c: &mut Micro) {
    let mut g = c.benchmark_group("prefetchers");
    g.throughput(1024);
    g.bench_function("berti_train_and_issue", |b| {
        let mut pf = Berti::new(1);
        let mut out = Vec::new();
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..1024 {
                i += 1;
                let va = VirtAddr::new(0x10_0000 + i * 64);
                let info = AccessInfo {
                    pc: 0x400,
                    va,
                    hit: !i.is_multiple_of(4),
                    cycle: i * 10,
                    first_page_access: false,
                };
                out.clear();
                pf.on_access(&info, &mut out);
                if !info.hit {
                    pf.on_fill(va, i * 10 + 60);
                }
            }
        });
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Micro) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.throughput(20_000);
    g.bench_function("berti_dripper_20k_instrs", |b| {
        let w = &suite(SuiteId::Gap).workloads()[0];
        b.iter(|| {
            black_box(
                SimulationBuilder::new()
                    .prefetcher(PrefetcherKind::Berti)
                    .pgc_policy(PgcPolicyKind::Dripper)
                    .warmup(2_000)
                    .instructions(20_000)
                    .run_workload(w),
            )
        });
    });
    g.finish();
}

fn main() {
    let mut m = Micro::from_env();
    bench_cache(&mut m);
    bench_tlb_ptw(&mut m);
    bench_perceptron(&mut m);
    bench_prefetchers(&mut m);
    bench_end_to_end(&mut m);
}
