//! Fig. 3 — distribution and average of useful vs useless page-cross
//! prefetches under "Permit PGC" for Berti/BOP/IPCP.
//!
//! Paper's shape: the full spectrum exists (some workloads ~100% useful,
//! some ~100% useless) and on average roughly half the issued page-cross
//! prefetches are useless — prefetchers are not accurate across pages.

use pagecross_bench::{
    env_scale, motivation_set, print_header, print_row, run_all, Scheme, Summary,
};
use pagecross_cpu::trace::TraceFactory;
use pagecross_cpu::{PgcPolicyKind, PrefetcherKind};

fn main() {
    let cfg = env_scale();
    let workloads = motivation_set();
    print_header("fig03", &["prefetcher", "workload", "useful%", "useless%"]);

    let mut summaries = Vec::new();
    for pf in [
        PrefetcherKind::Berti,
        PrefetcherKind::Bop,
        PrefetcherKind::Ipcp,
    ] {
        let schemes = [Scheme::new("permit", pf, PgcPolicyKind::PermitPgc)];
        let mut ratios = Vec::new();
        for w in &workloads {
            let r = &run_all(&[w], &schemes, &cfg)[0].report;
            let resolved = r.l1d.pgc_useful + r.l1d.pgc_useless;
            if resolved == 0 {
                continue;
            }
            let useful = r.l1d.pgc_useful as f64 / resolved as f64;
            ratios.push(useful);
            print_row(
                "fig03",
                &[
                    format!("{pf:?}"),
                    w.name().to_string(),
                    format!("{:.1}", useful * 100.0),
                    format!("{:.1}", (1.0 - useful) * 100.0),
                ],
            );
        }
        let avg = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
        let spread = ratios.iter().cloned().fold(f64::INFINITY, f64::min)
            ..ratios.iter().cloned().fold(0.0, f64::max);
        print_row(
            "fig03",
            &[
                format!("{pf:?}"),
                "AVERAGE".into(),
                format!("{:.1}", avg * 100.0),
                format!("{:.1}", (1.0 - avg) * 100.0),
            ],
        );
        summaries.push((pf, avg, spread));
    }

    let shape = summaries.iter().all(|(_, avg, spread)| {
        // Average in a broad band around 50% and a wide spread.
        (0.2..=0.8).contains(avg) && spread.start < 0.35 && spread.end > 0.65
    });
    Summary {
        experiment: "fig03".into(),
        paper: "~50% of issued page-cross prefetches are useful on average; \
                per-workload values span ~0%..~100%"
            .into(),
        measured: summaries
            .iter()
            .map(|(pf, avg, s)| {
                format!(
                    "{pf:?}: avg {:.0}%, span {:.0}%..{:.0}%",
                    avg * 100.0,
                    s.start * 100.0,
                    s.end * 100.0
                )
            })
            .collect::<Vec<_>>()
            .join("; "),
        shape_holds: shape,
    }
    .print();
}
