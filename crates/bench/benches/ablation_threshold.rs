//! Ablation (Fig. 8's design point) — the adaptive thresholding scheme vs
//! static activation thresholds.
//!
//! Expectation from §III-C3: no single static threshold is best across the
//! workload mix; the adaptive scheme is at least competitive with the best
//! static point and beats the worst by a clear margin.

use pagecross_bench::{
    env_scale, fmt_pct, geomean_speedup, ipcs_of, print_header, print_row, quick_seen_set, run_all,
    Scheme, Summary,
};
use pagecross_cpu::{PgcPolicyKind, PrefetcherKind};

fn main() {
    let cfg = env_scale();
    let workloads = quick_seen_set();
    let pf = PrefetcherKind::Berti;
    let schemes = vec![
        Scheme::new("discard-pgc", pf, PgcPolicyKind::DiscardPgc),
        Scheme::new("static(-4)", pf, PgcPolicyKind::DripperStatic(-4)),
        Scheme::new("static(0)", pf, PgcPolicyKind::DripperStatic(0)),
        Scheme::new("static(6)", pf, PgcPolicyKind::DripperStatic(6)),
        Scheme::new("static(14)", pf, PgcPolicyKind::DripperStatic(14)),
        Scheme::new("adaptive", pf, PgcPolicyKind::Dripper),
    ];
    let results = run_all(&workloads, &schemes, &cfg);
    let base = ipcs_of(&results, "discard-pgc");

    print_header("ablation_threshold", &["threshold", "geomean vs discard"]);
    let mut geos = Vec::new();
    for s in &schemes[1..] {
        let g = geomean_speedup(&ipcs_of(&results, &s.label), &base);
        print_row("ablation_threshold", &[s.label.clone(), fmt_pct(g)]);
        geos.push((s.label.clone(), g));
    }
    let adaptive = geos.last().expect("adaptive last").1;
    let best_static = geos[..geos.len() - 1]
        .iter()
        .map(|(_, g)| *g)
        .fold(0.0, f64::max);
    let worst_static = geos[..geos.len() - 1]
        .iter()
        .map(|(_, g)| *g)
        .fold(f64::INFINITY, f64::min);

    Summary {
        experiment: "ablation_threshold".into(),
        paper: "static thresholds are suboptimal across diverse workloads; the adaptive \
                scheme tunes T_a at runtime (§III-C3)"
            .into(),
        measured: format!(
            "adaptive {}, best static {}, worst static {}",
            fmt_pct(adaptive),
            fmt_pct(best_static),
            fmt_pct(worst_static)
        ),
        shape_holds: adaptive >= worst_static && adaptive >= best_static - 0.01,
    }
    .print();
}
