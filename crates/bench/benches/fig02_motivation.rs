//! Fig. 2 — IPC gains of Berti/BOP/IPCP under "Permit PGC" over
//! "Discard PGC" across memory-intensive workloads.
//!
//! Paper's shape: per-workload gains range from strongly negative
//! (sphinx3-, pr.web-like) to strongly positive (astar-, cc.road-like);
//! no static policy wins everywhere.

use pagecross_bench::{
    env_scale, fmt_pct, motivation_set, print_header, print_row, run_all, Scheme, Summary,
};
use pagecross_cpu::{PgcPolicyKind, PrefetcherKind};

fn main() {
    let cfg = env_scale();
    let workloads = motivation_set();
    print_header("fig02", &["workload", "berti", "bop", "ipcp"]);

    let mut any_pos = 0;
    let mut any_neg = 0;
    for w in &workloads {
        let mut cells = vec![w.name().to_string()];
        for pf in [
            PrefetcherKind::Berti,
            PrefetcherKind::Bop,
            PrefetcherKind::Ipcp,
        ] {
            let schemes = [
                Scheme::new("discard", pf, PgcPolicyKind::DiscardPgc),
                Scheme::new("permit", pf, PgcPolicyKind::PermitPgc),
            ];
            let rs = run_all(&[w], &schemes, &cfg);
            let ratio = rs[1].report.ipc() / rs[0].report.ipc();
            if pf == PrefetcherKind::Berti {
                if ratio > 1.002 {
                    any_pos += 1;
                }
                if ratio < 0.998 {
                    any_neg += 1;
                }
            }
            cells.push(fmt_pct(ratio));
        }
        print_row("fig02", &cells);
    }

    Summary {
        experiment: "fig02".into(),
        paper: "Permit PGC gains vary per workload: some strongly positive, some strongly \
                negative; no static policy wins everywhere"
            .into(),
        measured: format!(
            "{any_pos}/{} workloads gain and {any_neg}/{} lose under Permit (Berti)",
            workloads.len(),
            workloads.len()
        ),
        shape_holds: any_pos > 0 && any_neg > 0,
    }
    .print();
}

use pagecross_cpu::trace::TraceFactory;
