//! Fig. 11 — miss coverage (top) and prefetch accuracy (bottom) of Berti
//! with Permit PGC and DRIPPER, relative to Discard PGC, per suite.
//!
//! Paper's shape: DRIPPER matches Permit's coverage (it issues the useful
//! page-cross prefetches) while achieving clearly higher accuracy (it
//! drops the useless ones).

use pagecross_bench::{
    core_schemes, env_scale, print_header, print_row, quick_seen_set, run_all, Summary,
};
use pagecross_cpu::PrefetcherKind;
use std::collections::BTreeMap;

fn main() {
    let cfg = env_scale();
    let workloads = quick_seen_set();
    let schemes = core_schemes(PrefetcherKind::Berti);
    let results = run_all(&workloads, &schemes, &cfg);

    #[derive(Default)]
    struct Acc {
        cov: [Vec<f64>; 3],
        acc: [Vec<f64>; 3],
    }
    let mut by_suite: BTreeMap<&'static str, Acc> = BTreeMap::new();
    for chunk in results.chunks(3) {
        let e = by_suite.entry(chunk[0].suite).or_default();
        for (i, r) in chunk.iter().enumerate() {
            // An unresolved metric (no prefetches in a cell) contributes 0
            // here, keeping the suite means comparable to earlier runs.
            e.cov[i].push(r.report.coverage().unwrap_or(0.0));
            e.acc[i].push(r.report.prefetch_accuracy().unwrap_or(0.0));
        }
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    print_header(
        "fig11",
        &[
            "suite",
            "cov disc",
            "cov permit",
            "cov dripper",
            "acc disc",
            "acc permit",
            "acc dripper",
        ],
    );
    let (mut cov_gap, mut acc_gain) = (Vec::new(), Vec::new());
    for (suite, a) in &by_suite {
        let row = [
            mean(&a.cov[0]),
            mean(&a.cov[1]),
            mean(&a.cov[2]),
            mean(&a.acc[0]),
            mean(&a.acc[1]),
            mean(&a.acc[2]),
        ];
        print_row(
            "fig11",
            &[
                suite.to_string(),
                format!("{:.3}", row[0]),
                format!("{:.3}", row[1]),
                format!("{:.3}", row[2]),
                format!("{:.3}", row[3]),
                format!("{:.3}", row[4]),
                format!("{:.3}", row[5]),
            ],
        );
        cov_gap.push(row[1] - row[2]); // permit cov - dripper cov
        acc_gain.push(row[5] - row[4]); // dripper acc - permit acc
    }

    let avg_cov_gap = mean(&cov_gap);
    let avg_acc_gain = mean(&acc_gain);
    Summary {
        experiment: "fig11".into(),
        paper: "DRIPPER coverage ≈ Permit coverage (gap ~0.1pp); DRIPPER accuracy > Permit \
                accuracy (paper: +3.8pp overall)"
            .into(),
        measured: format!(
            "avg coverage gap (permit − dripper) = {:.3}; avg accuracy gain (dripper − permit) = {:+.3}",
            avg_cov_gap, avg_acc_gain
        ),
        shape_holds: avg_cov_gap < 0.05 && avg_acc_gain > 0.0,
    }
    .print();
}
