//! Trace record/replay microbenchmarks: encode throughput, and blocking vs
//! background-thread (double-buffered) decode — the streaming reader must
//! be no slower than the blocking one, and under a consumer that does real
//! work per instruction it should win by overlapping decode with
//! simulation. Runs on the in-repo [`pagecross_bench::microbench`] harness.

use pagecross_bench::microbench::{black_box, Micro};
use pagecross_cpu::trace::{TraceFactory, TraceSource};
use pagecross_cpu::{PgcPolicyKind, PrefetcherKind, SimulationBuilder};
use pagecross_trace::{read_all, record, BlockingSource, StreamingSource, TraceReplay};
use pagecross_workloads::{suite, SuiteId};
use std::path::PathBuf;

const TRACE_LEN: u64 = 200_000;

/// Records a fresh trace of the benchmark workload into the temp dir.
fn recorded_trace() -> PathBuf {
    let w = &suite(SuiteId::Gap).workloads()[0];
    let path =
        std::env::temp_dir().join(format!("pct-micro-{}-{}.pct", std::process::id(), w.name()));
    record(w, TRACE_LEN, w.params().seed, &path).expect("recording the bench trace");
    path
}

fn drain<S: TraceSource + ?Sized>(src: &mut S, n: u64) -> u64 {
    let mut acc = 0u64;
    for _ in 0..n {
        acc = acc.wrapping_add(src.next_instr().pc);
    }
    acc
}

fn bench_decode(c: &mut Micro, path: &PathBuf) {
    let mut g = c.benchmark_group("trace_decode");
    g.throughput(TRACE_LEN);
    g.bench_function("read_all", |b| {
        b.iter(|| black_box(read_all(path).expect("verified trace").1.len()));
    });
    g.bench_function("blocking_source", |b| {
        b.iter(|| {
            let mut src = BlockingSource::open(path).expect("verified trace");
            black_box(drain(&mut src, TRACE_LEN))
        });
    });
    g.bench_function("streaming_source", |b| {
        b.iter(|| {
            let mut src = StreamingSource::spawn(path).expect("verified trace");
            black_box(drain(&mut src, TRACE_LEN))
        });
    });
    // Informational: the decoder thread forced on, regardless of core
    // count (on a single-core box this shows the overlap-free overhead
    // the adaptive spawn avoids).
    g.bench_function("streaming_source_forced_bg", |b| {
        b.iter(|| {
            let mut src = StreamingSource::spawn_background(path).expect("verified trace");
            black_box(drain(&mut src, TRACE_LEN))
        });
    });
    g.finish();
}

fn bench_replay_sim(c: &mut Micro, path: &PathBuf) {
    // The case streaming exists for: decode overlapping a consumer that
    // does real work per instruction (the simulation engine).
    let sim = |factory: &dyn TraceFactory| {
        SimulationBuilder::new()
            .prefetcher(PrefetcherKind::Berti)
            .pgc_policy(PgcPolicyKind::Dripper)
            .warmup(5_000)
            .instructions(20_000)
            .run_workload(factory)
    };
    let mut g = c.benchmark_group("trace_replay_sim");
    g.throughput(25_000);
    g.sample_size(10);
    g.bench_function("blocking", |b| {
        let replay = TraceReplay::open(path).expect("verified trace").blocking();
        b.iter(|| black_box(sim(&replay).core.cycles));
    });
    g.bench_function("streaming", |b| {
        let replay = TraceReplay::open(path).expect("verified trace");
        b.iter(|| black_box(sim(&replay).core.cycles));
    });
    g.finish();
}

fn bench_record(c: &mut Micro) {
    let w = &suite(SuiteId::Gap).workloads()[1];
    let path = std::env::temp_dir().join(format!("pct-micro-rec-{}.pct", std::process::id()));
    let mut g = c.benchmark_group("trace_record");
    g.throughput(50_000);
    g.bench_function("record_50k", |b| {
        b.iter(|| {
            let meta = record(w, 50_000, w.params().seed, &path).expect("recording");
            black_box(meta.instr_count)
        });
    });
    g.finish();
    std::fs::remove_file(&path).ok();
}

fn main() {
    let path = recorded_trace();
    let mut m = Micro::from_env();
    bench_record(&mut m);
    bench_decode(&mut m, &path);
    bench_replay_sim(&mut m, &path);
    std::fs::remove_file(&path).ok();
}
