//! Fig. 10 — Berti case study: per-workload s-curve of Permit PGC and
//! DRIPPER speedups over Discard PGC (top), and per-suite geomean
//! breakdown (bottom).
//!
//! Paper's shape: DRIPPER ≥ both static policies for the vast majority of
//! workloads; Permit helps a subset and hurts most; DRIPPER's overall
//! geomean beats Permit (+2.5%) and Discard (+1.7%); GAP benefits most.

use pagecross_bench::{
    core_schemes, env_scale, fmt_pct, geomean_speedup, print_header, print_row, quick_seen_set,
    run_all, Summary,
};
use pagecross_cpu::PrefetcherKind;
use std::collections::BTreeMap;

fn main() {
    let cfg = env_scale();
    let workloads = quick_seen_set();
    let schemes = core_schemes(PrefetcherKind::Berti);
    let results = run_all(&workloads, &schemes, &cfg);

    // Top: per-workload s-curve (sorted by DRIPPER speedup).
    let mut rows: Vec<(String, &'static str, f64, f64)> = Vec::new();
    for chunk in results.chunks(3) {
        let (d, p, x) = (&chunk[0], &chunk[1], &chunk[2]);
        rows.push((
            d.workload.clone(),
            d.suite,
            p.report.ipc() / d.report.ipc(),
            x.report.ipc() / d.report.ipc(),
        ));
    }
    rows.sort_by(|a, b| a.3.total_cmp(&b.3));
    print_header("fig10", &["workload", "permit", "dripper"]);
    for (name, _, permit, dripper) in &rows {
        print_row(
            "fig10",
            &[name.clone(), fmt_pct(*permit), fmt_pct(*dripper)],
        );
    }

    // Bottom: per-suite geomeans.
    let mut by_suite: BTreeMap<&'static str, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for (_, suite, permit, dripper) in &rows {
        let e = by_suite.entry(suite).or_default();
        e.0.push(*permit);
        e.1.push(*dripper);
    }
    print_header("fig10", &["suite", "permit geomean", "dripper geomean"]);
    for (suite, (p, x)) in &by_suite {
        let ones = vec![1.0; p.len()];
        print_row(
            "fig10",
            &[
                suite.to_string(),
                fmt_pct(geomean_speedup(p, &ones)),
                fmt_pct(geomean_speedup(x, &ones)),
            ],
        );
    }
    let all_p: Vec<f64> = rows.iter().map(|r| r.2).collect();
    let all_x: Vec<f64> = rows.iter().map(|r| r.3).collect();
    let ones = vec![1.0; all_p.len()];
    let gp = geomean_speedup(&all_p, &ones);
    let gx = geomean_speedup(&all_x, &ones);
    print_row("fig10", &["OVERALL".into(), fmt_pct(gp), fmt_pct(gx)]);

    let dripper_majority = rows
        .iter()
        .filter(|r| r.3 >= r.2 - 1e-9 && r.3 >= 1.0 - 1e-9)
        .count();
    Summary {
        experiment: "fig10".into(),
        paper: "DRIPPER beats Permit (+2.5%) and Discard (+1.7%) in geomean; \
                wins for the vast majority of workloads (we require >=60%)"
            .into(),
        measured: format!(
            "dripper {} vs permit {}; dripper>=both on {}/{} workloads",
            fmt_pct(gx),
            fmt_pct(gp),
            dripper_majority,
            rows.len()
        ),
        shape_holds: gx > gp && gx > 1.0 && dripper_majority * 5 >= rows.len() * 3,
    }
    .print();
}
