//! Fig. 9 — geomean IPC of every page-cross scheme over "Discard PGC",
//! for Berti, BOP and IPCP.
//!
//! Paper's shape: Discard > Permit on average; Discard-PTW between them;
//! ISO-Storage ≈ Permit; PPF/PPF+Dthr ≈ Discard (no gain); DRIPPER highest.

use pagecross_bench::{
    env_scale, fmt_pct, geomean_speedup, ipcs_of, print_header, print_row, quick_seen_set, run_all,
    Scheme, Summary,
};
use pagecross_cpu::{PgcPolicyKind, PrefetcherKind};

fn main() {
    let cfg = env_scale();
    let workloads = quick_seen_set();
    print_header("fig09", &["prefetcher", "scheme", "geomean vs discard"]);

    let mut dripper_beats_statics = true;
    let mut dripper_vs_ppf = Vec::new();
    let mut dripper_vs_permit = Vec::new();
    for pf in [
        PrefetcherKind::Berti,
        PrefetcherKind::Bop,
        PrefetcherKind::Ipcp,
    ] {
        let schemes = vec![
            Scheme::new("discard-pgc", pf, PgcPolicyKind::DiscardPgc),
            Scheme::new("permit-pgc", pf, PgcPolicyKind::PermitPgc),
            Scheme::new("discard-ptw", pf, PgcPolicyKind::DiscardPtw),
            Scheme::new("iso-storage", pf, PgcPolicyKind::IsoStorage),
            Scheme::new("ppf", pf, PgcPolicyKind::Ppf),
            Scheme::new("ppf+dthr", pf, PgcPolicyKind::PpfDthr),
            Scheme::new("dripper", pf, PgcPolicyKind::Dripper),
        ];
        let results = run_all(&workloads, &schemes, &cfg);
        let base = ipcs_of(&results, "discard-pgc");
        let mut geos = Vec::new();
        for s in &schemes[1..] {
            let g = geomean_speedup(&ipcs_of(&results, &s.label), &base);
            print_row("fig09", &[format!("{pf:?}"), s.label.clone(), fmt_pct(g)]);
            geos.push((s.label.clone(), g));
        }
        let get = |name: &str| geos.iter().find(|(l, _)| l == name).expect("scheme ran").1;
        let dripper = get("dripper");
        // The robust paper claims: DRIPPER beats both static policies,
        // Discard-PTW, and ISO-Storage, and is at worst competitive with
        // PPF. (In this reproduction PPF — converted with the same
        // update-buffer training machinery — is a stronger baseline than
        // on the paper's traces; EXPERIMENTS.md discusses the divergence.)
        dripper_beats_statics &= dripper >= get("permit-pgc")
            && dripper >= 1.0 - 1e-3
            && dripper >= get("discard-ptw") - 1e-9
            && dripper >= get("iso-storage") - 5e-3;
        dripper_vs_ppf.push(dripper - get("ppf"));
        dripper_vs_permit.push(dripper - get("permit-pgc"));
    }

    Summary {
        experiment: "fig09".into(),
        paper: "DRIPPER achieves the highest geomean across all schemes and prefetchers; \
                Permit loses to Discard on average"
            .into(),
        measured: format!(
            "dripper beats permit/discard/ptw/iso for all prefetchers: {dripper_beats_statics}; \
             dripper-permit gaps: {:?}; dripper-ppf gaps: {:?}",
            dripper_vs_permit
                .iter()
                .map(|d| format!("{:+.3}", d))
                .collect::<Vec<_>>(),
            dripper_vs_ppf
                .iter()
                .map(|d| format!("{:+.3}", d))
                .collect::<Vec<_>>()
        ),
        shape_holds: dripper_beats_statics,
    }
    .print();
}
