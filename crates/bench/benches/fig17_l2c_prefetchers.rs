//! Fig. 17 — impact of L2C prefetching (§V-B7): Permit PGC and DRIPPER
//! over Discard PGC (Berti at L1D) with different L2C prefetchers in the
//! baseline: none, SPP, IPCP, BOP.
//!
//! Paper's shape: trends are unchanged — Permit loses, DRIPPER wins — and
//! DRIPPER's margin is slightly larger without an L2C prefetcher.

use pagecross_bench::{
    env_scale, fmt_pct, geomean_speedup, ipcs_of, print_header, print_row, quick_seen_set, run_all,
    Scheme, Summary,
};
use pagecross_cpu::{L2PrefetcherKind, PgcPolicyKind, PrefetcherKind};

fn main() {
    let cfg = env_scale();
    let workloads = quick_seen_set();
    let pf = PrefetcherKind::Berti;
    print_header("fig17", &["l2 prefetcher", "permit", "dripper"]);

    let mut dripper_gains = Vec::new();
    let mut shape = true;
    for l2 in [
        L2PrefetcherKind::None,
        L2PrefetcherKind::Spp,
        L2PrefetcherKind::Ipcp,
        L2PrefetcherKind::Bop,
    ] {
        let with = |label: &str, policy| {
            let mut s = Scheme::new(label, pf, policy);
            s.l2 = l2;
            s
        };
        let schemes = vec![
            with("discard-pgc", PgcPolicyKind::DiscardPgc),
            with("permit-pgc", PgcPolicyKind::PermitPgc),
            with("dripper", PgcPolicyKind::Dripper),
        ];
        let results = run_all(&workloads, &schemes, &cfg);
        let base = ipcs_of(&results, "discard-pgc");
        let permit = geomean_speedup(&ipcs_of(&results, "permit-pgc"), &base);
        let dripper = geomean_speedup(&ipcs_of(&results, "dripper"), &base);
        print_row(
            "fig17",
            &[format!("{l2:?}"), fmt_pct(permit), fmt_pct(dripper)],
        );
        dripper_gains.push(dripper);
        shape &= dripper > permit;
    }

    Summary {
        experiment: "fig17".into(),
        paper: "DRIPPER provides the highest speedups regardless of the L2C prefetcher; \
                Permit degrades performance in every configuration"
            .into(),
        measured: format!(
            "dripper geomeans per L2 config: {:?}",
            dripper_gains
                .iter()
                .map(|g| fmt_pct(*g))
                .collect::<Vec<_>>()
        ),
        shape_holds: shape,
    }
    .print();
}
