//! Ablation — weight-table size sweep.
//!
//! Table III's 1024×5-bit weight table is another empirically tuned point;
//! the paper notes a design "that can dedicate tens of KBs" could use more
//! features/entries for marginal gains. This sweep shows diminishing
//! returns past the chosen size.

use moka_pgc::dripper::dripper_config;
use moka_pgc::TargetPrefetcher;
use pagecross_bench::{env_scale, fmt_pct, print_header, print_row, run_one, Scheme, Summary};
use pagecross_cpu::{PgcPolicyKind, PrefetcherKind, SimulationBuilder};
use pagecross_types::geomean;
use pagecross_workloads::representative_seen;

fn main() {
    let cfg = env_scale();
    let workloads = representative_seen(1);
    print_header(
        "ablation_wt_size",
        &["entries", "storage KB", "geomean vs discard"],
    );

    let mut results = Vec::new();
    for entries in [64usize, 256, 1024, 4096] {
        let mut ratios = Vec::new();
        for w in &workloads {
            let base = run_one(
                w,
                &Scheme::new("discard", PrefetcherKind::Berti, PgcPolicyKind::DiscardPgc),
                &cfg,
            )
            .report
            .ipc();
            let (warm, measure) = w.default_lengths();
            let mut fcfg = dripper_config(TargetPrefetcher::Berti);
            fcfg.wt_entries = entries;
            let storage = fcfg.storage_kb();
            let r = SimulationBuilder::new()
                .prefetcher(PrefetcherKind::Berti)
                .custom_filter(fcfg)
                .warmup((warm as f64 * cfg.warmup_scale) as u64)
                .instructions((measure as f64 * cfg.measure_scale) as u64)
                .run_workload(*w);
            ratios.push(r.ipc() / base);
            if ratios.len() == 1 {
                results.push((entries, storage, 0.0));
            }
        }
        let g = geomean(&ratios).unwrap_or(1.0);
        results.last_mut().expect("pushed").2 = g;
        let (_, storage, _) = *results.last().expect("pushed");
        print_row(
            "ablation_wt_size",
            &[entries.to_string(), format!("{storage:.2}"), fmt_pct(g)],
        );
    }

    let at_1024 = results
        .iter()
        .find(|(e, _, _)| *e == 1024)
        .expect("1024 ran")
        .2;
    let at_4096 = results
        .iter()
        .find(|(e, _, _)| *e == 4096)
        .expect("4096 ran")
        .2;
    Summary {
        experiment: "ablation_wt_size".into(),
        paper: "the ~1K-entry weight table is the knee; bigger budgets give small geomean \
                gains (§III-E1)"
            .into(),
        measured: format!(
            "1024 entries {}, 4096 entries {}",
            fmt_pct(at_1024),
            fmt_pct(at_4096)
        ),
        shape_holds: (at_4096 - at_1024).abs() < 0.02,
    }
    .print();
}
