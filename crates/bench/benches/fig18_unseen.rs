//! Fig. 18 — DRIPPER on *unseen* workloads (§V-B8): workloads from seed
//! spaces disjoint from the ones used during development.
//!
//! Paper's shape: trends match the seen set — DRIPPER beats Permit (+2.1%)
//! and Discard (+1.2%) in geomean over 178 unseen workloads.

use pagecross_bench::{
    core_schemes, env_scale, fmt_pct, geomean_speedup, ipcs_of, print_header, print_row, run_all,
    Summary,
};
use pagecross_cpu::PrefetcherKind;
use pagecross_workloads::representative_unseen;

fn main() {
    let cfg = env_scale();
    let per_suite = std::env::var("PAGECROSS_PER_SUITE")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(4)
        .clamp(1, 64);
    let workloads = representative_unseen(per_suite);
    let schemes = core_schemes(PrefetcherKind::Berti);
    let results = run_all(&workloads, &schemes, &cfg);
    let base = ipcs_of(&results, "discard-pgc");
    let permit = ipcs_of(&results, "permit-pgc");
    let dripper = ipcs_of(&results, "dripper");

    print_header("fig18", &["workload", "permit", "dripper"]);
    for (i, chunk) in results.chunks(3).enumerate() {
        print_row(
            "fig18",
            &[
                chunk[0].workload.clone(),
                fmt_pct(permit[i] / base[i]),
                fmt_pct(dripper[i] / base[i]),
            ],
        );
    }
    let gp = geomean_speedup(&permit, &base);
    let gd = geomean_speedup(&dripper, &base);
    print_row("fig18", &["GEOMEAN".into(), fmt_pct(gp), fmt_pct(gd)]);

    Summary {
        experiment: "fig18".into(),
        paper: "on unseen workloads DRIPPER beats Permit (+2.1%) and Discard (+1.2%)".into(),
        measured: format!(
            "dripper {} vs permit {} over discard",
            fmt_pct(gd),
            fmt_pct(gp)
        ),
        shape_holds: gd > gp && gd >= 0.999,
    }
    .print();
}
