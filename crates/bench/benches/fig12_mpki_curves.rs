//! Fig. 12 — per-workload dTLB/sTLB/L1D/LLC MPKI deltas of Permit PGC and
//! DRIPPER over Discard PGC (Berti), the MPKI counterpart of Fig. 10.
//!
//! Paper's shape: DRIPPER reduces MPKIs for most workloads (average
//! reductions: dTLB 0.6, sTLB 0.1, L1D 2.1, LLC 0.2) and its curve
//! dominates Permit's on the harmful side.

use pagecross_bench::{
    core_schemes, env_scale, print_header, print_row, quick_seen_set, run_all, Summary,
};
use pagecross_cpu::PrefetcherKind;

fn main() {
    let cfg = env_scale();
    let workloads = quick_seen_set();
    let schemes = core_schemes(PrefetcherKind::Berti);
    let results = run_all(&workloads, &schemes, &cfg);

    print_header(
        "fig12",
        &["workload", "scheme", "d_dtlb", "d_stlb", "d_l1d", "d_llc"],
    );
    let mut permit_deltas = [0.0f64; 4];
    let mut dripper_deltas = [0.0f64; 4];
    let mut dripper_worse_l1d = 0usize;
    for chunk in results.chunks(3) {
        let base = &chunk[0].report;
        for (r, acc) in [
            (&chunk[1], &mut permit_deltas),
            (&chunk[2], &mut dripper_deltas),
        ] {
            let d = [
                r.report.dtlb_mpki() - base.dtlb_mpki(),
                r.report.stlb_mpki() - base.stlb_mpki(),
                r.report.l1d_mpki() - base.l1d_mpki(),
                r.report.llc_mpki() - base.llc_mpki(),
            ];
            for i in 0..4 {
                acc[i] += d[i];
            }
            if r.scheme == "dripper" && d[2] > 0.05 {
                dripper_worse_l1d += 1;
            }
            print_row(
                "fig12",
                &[
                    r.workload.clone(),
                    r.scheme.clone(),
                    format!("{:+.3}", d[0]),
                    format!("{:+.3}", d[1]),
                    format!("{:+.3}", d[2]),
                    format!("{:+.3}", d[3]),
                ],
            );
        }
    }
    let n = workloads.len() as f64;
    for d in permit_deltas.iter_mut().chain(dripper_deltas.iter_mut()) {
        *d /= n;
    }
    print_row(
        "fig12",
        &[
            "MEAN".into(),
            "permit".into(),
            format!("{:+.3}", permit_deltas[0]),
            format!("{:+.3}", permit_deltas[1]),
            format!("{:+.3}", permit_deltas[2]),
            format!("{:+.3}", permit_deltas[3]),
        ],
    );
    print_row(
        "fig12",
        &[
            "MEAN".into(),
            "dripper".into(),
            format!("{:+.3}", dripper_deltas[0]),
            format!("{:+.3}", dripper_deltas[1]),
            format!("{:+.3}", dripper_deltas[2]),
            format!("{:+.3}", dripper_deltas[3]),
        ],
    );

    // Shape: DRIPPER's mean deltas are ≤ 0 on every structure, its L1D
    // reduction is comparable to Permit's (≥ 85%), and it rarely hurts
    // L1D MPKI. (In the paper DRIPPER's reductions *exceed* Permit's
    // because Permit's useless prefetches pollute; in this model their
    // cost appears as wasted walks/bandwidth instead — see EXPERIMENTS.md.)
    let shape = (0..4).all(|i| dripper_deltas[i] <= 0.05)
        && dripper_deltas[2] <= 0.85 * permit_deltas[2]
        && dripper_worse_l1d * 4 <= workloads.len();
    Summary {
        experiment: "fig12".into(),
        paper: "DRIPPER reduces dTLB/sTLB/L1D/LLC MPKIs on average (−0.6/−0.1/−2.1/−0.2) and \
                dominates Permit"
            .into(),
        measured: format!(
            "dripper means: dtlb {:+.3} stlb {:+.3} l1d {:+.3} llc {:+.3}; \
             permit means: dtlb {:+.3} stlb {:+.3} l1d {:+.3} llc {:+.3}",
            dripper_deltas[0],
            dripper_deltas[1],
            dripper_deltas[2],
            dripper_deltas[3],
            permit_deltas[0],
            permit_deltas[1],
            permit_deltas[2],
            permit_deltas[3],
        ),
        shape_holds: shape,
    }
    .print();
}
