//! Ablation — vUB/pUB sizing and the value of false-negative training.
//!
//! The paper fixes vUB = 4 and pUB = 128 entries "empirically selected
//! after tuning" (Table III). This sweep regenerates that design decision:
//! the chosen point should be on the knee — shrinking the pUB hurts,
//! removing the vUB (no false-negative training) hurts, and growing both
//! past the chosen sizes buys little.

use moka_pgc::dripper::dripper_config;
use moka_pgc::TargetPrefetcher;
use pagecross_bench::{env_scale, fmt_pct, print_header, print_row, run_one, Scheme, Summary};
use pagecross_cpu::{PgcPolicyKind, PrefetcherKind, SimulationBuilder};
use pagecross_types::geomean;
use pagecross_workloads::representative_seen;

fn geo_with(vub: usize, pubn: usize, workloads: &[&'static pagecross_workloads::Workload]) -> f64 {
    let cfg = env_scale();
    let mut ratios = Vec::new();
    for w in workloads {
        let base = run_one(
            w,
            &Scheme::new("discard", PrefetcherKind::Berti, PgcPolicyKind::DiscardPgc),
            &cfg,
        )
        .report
        .ipc();
        let (warm, measure) = w.default_lengths();
        let mut fcfg = dripper_config(TargetPrefetcher::Berti);
        fcfg.vub_entries = vub;
        fcfg.pub_entries = pubn;
        let r = SimulationBuilder::new()
            .prefetcher(PrefetcherKind::Berti)
            .custom_filter(fcfg)
            .warmup((warm as f64 * cfg.warmup_scale) as u64)
            .instructions((measure as f64 * cfg.measure_scale) as u64)
            .run_workload(*w);
        ratios.push(r.ipc() / base);
    }
    geomean(&ratios).unwrap_or(1.0)
}

fn main() {
    let workloads = representative_seen(1);
    print_header("ablation_buffers", &["vUB", "pUB", "geomean vs discard"]);
    let sweep = [
        (1usize, 128usize),
        (4, 128),
        (16, 128),
        (4, 8),
        (4, 32),
        (4, 512),
    ];
    let mut results = Vec::new();
    for (vub, pubn) in sweep {
        let g = geo_with(vub, pubn, &workloads);
        print_row(
            "ablation_buffers",
            &[vub.to_string(), pubn.to_string(), fmt_pct(g)],
        );
        results.push(((vub, pubn), g));
    }
    let chosen = results
        .iter()
        .find(|(k, _)| *k == (4, 128))
        .expect("chosen point ran")
        .1;
    let tiny_pub = results
        .iter()
        .find(|(k, _)| *k == (4, 8))
        .expect("tiny pUB ran")
        .1;
    let big = results
        .iter()
        .find(|(k, _)| *k == (4, 512))
        .expect("big pUB ran")
        .1;

    Summary {
        experiment: "ablation_buffers".into(),
        paper: "vUB=4, pUB=128 'empirically selected after tuning' (Table III)".into(),
        measured: format!(
            "chosen {}, tiny pUB {}, 4x pUB {}",
            fmt_pct(chosen),
            fmt_pct(tiny_pub),
            fmt_pct(big)
        ),
        // The chosen point is near the asymptote: growing the pUB 4x gains
        // little.
        shape_holds: (big - chosen).abs() < 0.02 && chosen >= tiny_pub - 0.01,
    }
    .print();
}
