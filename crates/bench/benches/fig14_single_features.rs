//! Fig. 14 — DRIPPER vs single-feature page-cross filters (its
//! constituents: Delta, sTLB-MPKI, sTLB-MissRate) over Discard PGC (Berti).
//!
//! Paper's shape: DRIPPER ≥ each constituent alone for the vast majority
//! of workloads — the combination is what wins.

use moka_pgc::{ProgramFeature, SystemFeature};
use pagecross_bench::{
    env_scale, fmt_pct, geomean_speedup, ipcs_of, print_header, print_row, quick_seen_set, run_all,
    Scheme, Summary,
};
use pagecross_cpu::{PgcPolicyKind, PrefetcherKind};

fn main() {
    let cfg = env_scale();
    let workloads = quick_seen_set();
    let pf = PrefetcherKind::Berti;
    let schemes = vec![
        Scheme::new("discard-pgc", pf, PgcPolicyKind::DiscardPgc),
        Scheme::new(
            "delta-only",
            pf,
            PgcPolicyKind::SingleFeature(ProgramFeature::Delta),
        ),
        Scheme::new(
            "stlb-mpki-only",
            pf,
            PgcPolicyKind::SingleSystemFeature(SystemFeature::StlbMpki),
        ),
        Scheme::new(
            "stlb-missrate-only",
            pf,
            PgcPolicyKind::SingleSystemFeature(SystemFeature::StlbMissRate),
        ),
        Scheme::new("dripper", pf, PgcPolicyKind::Dripper),
    ];
    let results = run_all(&workloads, &schemes, &cfg);
    let base = ipcs_of(&results, "discard-pgc");

    print_header("fig14", &["scheme", "geomean vs discard"]);
    let mut geos = Vec::new();
    for s in &schemes[1..] {
        let g = geomean_speedup(&ipcs_of(&results, &s.label), &base);
        print_row("fig14", &[s.label.clone(), fmt_pct(g)]);
        geos.push((s.label.clone(), g));
    }
    let dripper = geos.last().expect("dripper last").1;
    let best_single = geos[..geos.len() - 1]
        .iter()
        .map(|(_, g)| *g)
        .fold(0.0f64, f64::max);
    Summary {
        experiment: "fig14".into(),
        paper: "DRIPPER outperforms each of its constituent single-feature filters".into(),
        measured: format!(
            "dripper {} vs best single {}",
            fmt_pct(dripper),
            fmt_pct(best_single)
        ),
        shape_holds: dripper >= best_single - 0.002,
    }
    .print();
}
