//! A small in-repo micro-benchmark harness (the hermetic replacement for
//! `criterion`).
//!
//! Timing uses [`std::time::Instant`] (monotonic). Each benchmark body is
//! run a configurable number of warm-up iterations, then sampled N times;
//! the reported figure is the **median** sample, which is robust to
//! scheduler noise without criterion's bootstrap machinery. Throughput is
//! derived from an optional per-iteration element count.
//!
//! The API mirrors the criterion surface the bench targets already use
//! (`benchmark_group` → `bench_function(|b| b.iter(..))`), so experiment
//! code ports mechanically:
//!
//! ```
//! use pagecross_bench::microbench::{black_box, Micro};
//!
//! let mut m = Micro::from_env();
//! let mut g = m.benchmark_group("example");
//! g.throughput(1024);
//! g.bench_function("sum", |b| {
//!     b.iter(|| (0..1024u64).map(black_box).sum::<u64>())
//! });
//! g.finish();
//! ```
//!
//! Environment knobs: `PAGECROSS_BENCH_SAMPLES` (default 11) and
//! `PAGECROSS_BENCH_WARMUP` (default 3) control sample and warm-up counts
//! globally.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness-wide options.
#[derive(Clone, Copy, Debug)]
pub struct MicroOpts {
    /// Untimed warm-up iterations before sampling.
    pub warmup: u32,
    /// Timed samples per benchmark; the median is reported.
    pub samples: u32,
}

impl MicroOpts {
    /// Options from the environment (see module docs), with defaults
    /// `warmup = 3`, `samples = 11`.
    pub fn from_env() -> Self {
        let read = |key: &str, default: u32| {
            std::env::var(key)
                .ok()
                .and_then(|s| s.parse::<u32>().ok())
                .unwrap_or(default)
                .max(1)
        };
        Self {
            warmup: read("PAGECROSS_BENCH_WARMUP", 3),
            samples: read("PAGECROSS_BENCH_SAMPLES", 11),
        }
    }
}

/// The harness root: owns the options and prints results.
#[derive(Clone, Debug)]
pub struct Micro {
    opts: MicroOpts,
}

impl Micro {
    /// Harness with explicit options.
    pub fn new(opts: MicroOpts) -> Self {
        Self { opts }
    }

    /// Harness configured from the environment.
    pub fn from_env() -> Self {
        Self::new(MicroOpts::from_env())
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> Group {
        Group {
            name: name.to_string(),
            throughput_elems: None,
            opts: self.opts,
        }
    }
}

/// A named group of benchmarks sharing a throughput denominator.
#[derive(Clone, Debug)]
pub struct Group {
    name: String,
    throughput_elems: Option<u64>,
    opts: MicroOpts,
}

impl Group {
    /// Sets the per-iteration element count used for throughput reporting.
    pub fn throughput(&mut self, elements: u64) {
        self.throughput_elems = Some(elements);
    }

    /// Overrides the sample count for this group (criterion's
    /// `sample_size` analogue for slow end-to-end benches).
    pub fn sample_size(&mut self, samples: u32) {
        self.opts.samples = samples.max(1);
    }

    /// Runs one benchmark: warm-up, then median-of-N sampling, then a
    /// one-line report on stdout.
    pub fn bench_function(&mut self, name: &str, mut body: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            durations: Vec::new(),
            mode: Mode::Warmup,
        };
        for _ in 0..self.opts.warmup {
            body(&mut b);
        }
        b.mode = Mode::Sample;
        for _ in 0..self.opts.samples {
            body(&mut b);
        }
        let stats = SampleStats::from_durations(&b.durations);
        println!(
            "{}",
            stats.report_line(&self.name, name, self.throughput_elems)
        );
    }

    /// Ends the group (kept for criterion-API parity; nothing to flush).
    pub fn finish(self) {}
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Warmup,
    Sample,
}

/// Passed to each benchmark body; times the closure given to [`Bencher::iter`].
#[derive(Clone, Debug)]
pub struct Bencher {
    durations: Vec<Duration>,
    mode: Mode,
}

impl Bencher {
    /// Times one execution of `f` (monotonic clock); warm-up runs are
    /// executed but not recorded.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        black_box(f());
        let elapsed = start.elapsed();
        if self.mode == Mode::Sample {
            self.durations.push(elapsed);
        }
    }
}

/// Summary statistics over the recorded samples.
#[derive(Clone, Copy, Debug)]
pub struct SampleStats {
    /// Median sample.
    pub median: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Number of samples.
    pub n: usize,
}

impl SampleStats {
    /// Median/min/max over `durations` (empty input yields zeros).
    pub fn from_durations(durations: &[Duration]) -> Self {
        if durations.is_empty() {
            return Self {
                median: Duration::ZERO,
                min: Duration::ZERO,
                max: Duration::ZERO,
                n: 0,
            };
        }
        let mut sorted: Vec<Duration> = durations.to_vec();
        sorted.sort();
        let mid = sorted.len() / 2;
        let median = if sorted.len().is_multiple_of(2) {
            (sorted[mid - 1] + sorted[mid]) / 2
        } else {
            sorted[mid]
        };
        Self {
            median,
            min: sorted[0],
            max: *sorted.last().unwrap(),
            n: sorted.len(),
        }
    }

    /// Formats the stable single-line report used by the bench targets.
    pub fn report_line(&self, group: &str, name: &str, elements: Option<u64>) -> String {
        let mut line = format!(
            "[micro] {group}/{name:<28} median {}  (min {}, max {}, n={})",
            fmt_duration(self.median),
            fmt_duration(self.min),
            fmt_duration(self.max),
            self.n
        );
        if let Some(elems) = elements {
            let secs = self.median.as_secs_f64();
            if secs > 0.0 {
                line.push_str(&format!("  {}", fmt_rate(elems as f64 / secs)));
            }
        }
        line
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.2} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} Gelem/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} Melem/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} Kelem/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} elem/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even_sample_counts() {
        let d = |ms: u64| Duration::from_millis(ms);
        let odd = SampleStats::from_durations(&[d(5), d(1), d(9)]);
        assert_eq!(odd.median, d(5));
        let even = SampleStats::from_durations(&[d(1), d(3), d(5), d(7)]);
        assert_eq!(even.median, d(4));
        assert_eq!(even.min, d(1));
        assert_eq!(even.max, d(7));
    }

    #[test]
    fn empty_samples_are_zero() {
        let s = SampleStats::from_durations(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.median, Duration::ZERO);
    }

    #[test]
    fn warmup_runs_are_not_recorded() {
        let mut m = Micro::new(MicroOpts {
            warmup: 3,
            samples: 5,
        });
        let mut g = m.benchmark_group("t");
        let runs = std::cell::Cell::new(0u32);
        g.bench_function("count", |b| {
            b.iter(|| runs.set(runs.get() + 1));
        });
        // warmup + samples bodies each executed exactly once
        assert_eq!(runs.get(), 8);
    }

    #[test]
    fn report_line_includes_throughput() {
        let s = SampleStats {
            median: Duration::from_micros(10),
            min: Duration::from_micros(9),
            max: Duration::from_micros(12),
            n: 11,
        };
        let line = s.report_line("grp", "case", Some(1024));
        assert!(line.contains("grp/case"), "{line}");
        assert!(line.contains("Melem/s"), "{line}");
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
