//! Experiment harness utilities for the per-figure/table bench targets.
//!
//! Each paper artefact (Figs. 2–4, 9–19, Tables III & V) has a bench target
//! under `benches/` that uses these helpers to run a campaign and print the
//! paper's rows/series plus a paper-vs-measured summary line. See
//! EXPERIMENTS.md for the index and recorded results.

pub mod campaign;
pub mod cli;
pub mod microbench;
pub mod table;

pub use campaign::{
    core_schemes, env_jobs, env_scale, ipcs_of, motivation_set, quick_seen_set, run_all, run_grid,
    run_one, run_one_timed, CampaignConfig, CampaignRun, CellTiming, Scheme, ShardStats, Subject,
    WorkloadResult,
};
pub use table::{fmt_opt_ratio, fmt_pct, geomean_speedup, print_header, print_row, Summary};
