//! Command-line front-end for the simulator (the `pagecross` binary).
//!
//! Subcommands:
//!
//! * `list [--suite <id>]` — print the workload registry;
//! * `run --workload <name> [--prefetcher p] [--policy q] [...]` — one
//!   simulation, full report;
//! * `compare --workload <name> [--prefetcher p]` — Discard vs Permit vs
//!   DRIPPER in one line;
//! * `sweep --suite <id> [--prefetcher p] [--jobs n]` — the compare row for
//!   every seen workload of a suite, computed on the parallel campaign
//!   runner;
//! * `campaign [--suite <id>] [--prefetcher p] [--jobs n] [--per-suite k]
//!   [--trace-dir <dir>]` — a figure-style (workload × scheme) grid on the
//!   worker pool, with per-experiment timing and the wall-clock/speedup
//!   summary; with `--trace-dir`, the grid runs over every `.pct` trace in
//!   a directory instead of the registry;
//! * `record --workload <name> [--out <path>]` — serialize a workload's
//!   instruction stream to a `.pct` trace file;
//! * `replay --trace <path> [...]` — simulate a recorded trace (counters
//!   are bit-identical to the direct run it was recorded from).
//!
//! Argument parsing is hand-rolled (the workspace is dependency-minimal);
//! the parsed command is a plain enum so it is unit-testable.

use crate::campaign::{
    core_schemes, env_jobs, run_grid, CampaignConfig, CampaignRun, Subject, WorkloadResult,
};
use crate::table::fmt_opt_ratio;
use pagecross_cpu::trace::TraceFactory;
use pagecross_cpu::{
    L2PrefetcherKind, OsConfig, PgcPolicyKind, PrefetcherKind, Report, SimulationBuilder,
    TelemetryConfig,
};
use pagecross_mem::HugePagePolicy;
use pagecross_telemetry::{chrome_trace_json, interval_to_json, validate_jsonl};
use pagecross_trace::TraceReplay;
use pagecross_types::OsStats;
use pagecross_workloads::{seen_workloads, suite, SuiteId, Workload};
use std::path::{Path, PathBuf};

/// A parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// List workloads, optionally restricted to one suite.
    List {
        /// Suite filter.
        suite: Option<SuiteId>,
    },
    /// Run one simulation.
    Run(RunArgs),
    /// Compare the three core policies on one workload.
    Compare {
        /// Workload name.
        workload: String,
        /// L1D prefetcher.
        prefetcher: PrefetcherKind,
    },
    /// Compare the three core policies across a suite.
    Sweep {
        /// Suite to sweep.
        suite: SuiteId,
        /// L1D prefetcher.
        prefetcher: PrefetcherKind,
        /// Worker threads (0 = `PAGECROSS_JOBS` / all cores).
        jobs: usize,
    },
    /// Run a figure-style experiment grid on the parallel campaign runner.
    Campaign {
        /// Optional suite restriction (default: representative cross-suite
        /// set).
        suite: Option<SuiteId>,
        /// L1D prefetcher.
        prefetcher: PrefetcherKind,
        /// Worker threads (0 = `PAGECROSS_JOBS` / all cores).
        jobs: usize,
        /// Cap on workloads taken per suite (`None` = all of a filtered
        /// suite, or 4 per suite for the cross-suite set).
        per_suite: Option<usize>,
        /// Run the grid over every `.pct` trace in this directory instead
        /// of registry workloads.
        trace_dir: Option<String>,
    },
    /// Record a workload's instruction stream to a `.pct` trace file.
    Record {
        /// Workload name (registry lookup).
        workload: String,
        /// Output path (default: `<workload>.pct`).
        out: Option<String>,
        /// Warm-up instructions to record (0 = workload default).
        warmup: u64,
        /// Measured instructions to record (0 = workload default).
        instructions: u64,
    },
    /// Simulate a recorded `.pct` trace.
    Replay(ReplayArgs),
    /// Validate a telemetry JSONL file emitted by `--telemetry-out`.
    CheckTelemetry {
        /// Path of the JSONL file.
        jsonl: String,
    },
    /// Print usage.
    Help,
}

/// The imitation-OS flags shared by `run` and `replay` (`--os`,
/// `--phys-mem`, `--thp`, `--fault-ns`).
#[derive(Clone, Debug, PartialEq)]
pub struct OsArgs {
    /// `--os on` enables the OS model (off by default).
    pub enabled: bool,
    /// Physical memory capacity in bytes (0 = [`OsConfig`] default).
    pub phys_mem_bytes: u64,
    /// THP aggressiveness in [0, 1] (0 = never promote).
    pub thp: f64,
    /// Minor-fault handler latency in nanoseconds (0 = [`OsConfig`]
    /// default cycle costs; a major fault costs 8x the minor).
    pub fault_ns: u64,
}

impl Default for OsArgs {
    fn default() -> Self {
        Self {
            enabled: false,
            phys_mem_bytes: 0,
            thp: 0.0,
            fault_ns: 0,
        }
    }
}

impl OsArgs {
    /// The [`OsConfig`] these flags describe, or `None` when `--os` is off.
    pub fn to_config(&self) -> Option<OsConfig> {
        if !self.enabled {
            return None;
        }
        let mut cfg = OsConfig::default();
        if self.phys_mem_bytes > 0 {
            cfg.phys_mem_bytes = self.phys_mem_bytes;
        }
        cfg.thp = self.thp;
        if self.fault_ns > 0 {
            // 4 GHz core: 1 ns = 4 cycles; Linux major faults (I/O plus
            // handler) run ~8x the minor-fault cost in this model.
            cfg.minor_fault_cycles = self.fault_ns * 4;
            cfg.major_fault_cycles = self.fault_ns * 32;
        }
        Some(cfg)
    }
}

/// Arguments of the `replay` subcommand.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayArgs {
    /// Path of the `.pct` trace.
    pub trace: String,
    /// L1D prefetcher.
    pub prefetcher: PrefetcherKind,
    /// Page-cross policy.
    pub policy: PgcPolicyKind,
    /// L2C prefetcher.
    pub l2: L2PrefetcherKind,
    /// Huge-page fraction (0 disables).
    pub huge_fraction: f64,
    /// Warm-up instructions (0 = first third of the recording).
    pub warmup: u64,
    /// Measured instructions (0 = rest of the recording).
    pub instructions: u64,
    /// Interval time-series JSONL output path (`None` = telemetry off).
    pub telemetry_out: Option<String>,
    /// Retired instructions per telemetry sampling interval.
    pub telemetry_interval: u64,
    /// Chrome trace-event JSON output path (`None` = event tracing off).
    pub telemetry_trace: Option<String>,
    /// Imitation-OS model flags.
    pub os: OsArgs,
}

impl Default for ReplayArgs {
    fn default() -> Self {
        Self {
            trace: String::new(),
            prefetcher: PrefetcherKind::Berti,
            policy: PgcPolicyKind::Dripper,
            l2: L2PrefetcherKind::None,
            huge_fraction: 0.0,
            warmup: 0,
            instructions: 0,
            telemetry_out: None,
            telemetry_interval: DEFAULT_TELEMETRY_INTERVAL,
            telemetry_trace: None,
            os: OsArgs::default(),
        }
    }
}

/// Arguments of the `run` subcommand.
#[derive(Clone, Debug, PartialEq)]
pub struct RunArgs {
    /// Workload name (registry lookup).
    pub workload: String,
    /// L1D prefetcher.
    pub prefetcher: PrefetcherKind,
    /// Page-cross policy.
    pub policy: PgcPolicyKind,
    /// L2C prefetcher.
    pub l2: L2PrefetcherKind,
    /// Huge-page fraction (0 disables).
    pub huge_fraction: f64,
    /// Warm-up instructions (0 = workload default).
    pub warmup: u64,
    /// Measured instructions (0 = workload default).
    pub instructions: u64,
    /// Interval time-series JSONL output path (`None` = telemetry off).
    pub telemetry_out: Option<String>,
    /// Retired instructions per telemetry sampling interval.
    pub telemetry_interval: u64,
    /// Chrome trace-event JSON output path (`None` = event tracing off).
    pub telemetry_trace: Option<String>,
    /// Imitation-OS model flags.
    pub os: OsArgs,
}

/// Default `--telemetry-interval`: one sample per 10k retired instructions.
pub const DEFAULT_TELEMETRY_INTERVAL: u64 = 10_000;

impl Default for RunArgs {
    fn default() -> Self {
        Self {
            workload: String::new(),
            prefetcher: PrefetcherKind::Berti,
            policy: PgcPolicyKind::Dripper,
            l2: L2PrefetcherKind::None,
            huge_fraction: 0.0,
            warmup: 0,
            instructions: 0,
            telemetry_out: None,
            telemetry_interval: DEFAULT_TELEMETRY_INTERVAL,
            telemetry_trace: None,
            os: OsArgs::default(),
        }
    }
}

/// A CLI error with a user-facing message.
#[derive(Clone, Debug, PartialEq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Parses the `--telemetry-*` flags shared by `run` and `replay` into the
/// given argument fields.
fn parse_telemetry_flags(
    kv: &std::collections::HashMap<String, String>,
    out: &mut Option<String>,
    interval: &mut u64,
    trace: &mut Option<String>,
) -> Result<(), CliError> {
    if let Some(p) = kv.get("telemetry-out") {
        *out = Some(p.clone());
    }
    if let Some(p) = kv.get("telemetry-interval") {
        *interval = p.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
            CliError(format!(
                "--telemetry-interval expects a positive count, got '{p}'"
            ))
        })?;
    }
    if let Some(p) = kv.get("telemetry-trace") {
        *trace = Some(p.clone());
    }
    Ok(())
}

/// Parses a byte-size literal: plain bytes, or with a `K`/`M`/`G` suffix
/// (binary multiples, case-insensitive), e.g. `64M`, `2G`, `67108864`.
fn parse_size(s: &str) -> Option<u64> {
    let (digits, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1u64 << 10),
        b'M' | b'm' => (&s[..s.len() - 1], 1u64 << 20),
        b'G' | b'g' => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    digits.parse::<u64>().ok()?.checked_mul(mult)
}

/// Parses the imitation-OS flags shared by `run` and `replay`.
fn parse_os_flags(
    kv: &std::collections::HashMap<String, String>,
    os: &mut OsArgs,
) -> Result<(), CliError> {
    if let Some(p) = kv.get("os") {
        os.enabled = match p.as_str() {
            "on" => true,
            "off" => false,
            _ => return Err(CliError(format!("--os expects on|off, got '{p}'"))),
        };
    }
    if let Some(p) = kv.get("phys-mem") {
        os.phys_mem_bytes = parse_size(p).filter(|&n| n >= 64 << 20).ok_or_else(|| {
            CliError(format!(
                "--phys-mem expects a size of at least 64M (e.g. 64M, 2G), got '{p}'"
            ))
        })?;
    }
    if let Some(p) = kv.get("thp") {
        os.thp = p
            .parse::<f64>()
            .ok()
            .filter(|t| (0.0..=1.0).contains(t))
            .ok_or_else(|| CliError(format!("--thp expects a fraction in [0, 1], got '{p}'")))?;
    }
    if let Some(p) = kv.get("fault-ns") {
        os.fault_ns =
            p.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                CliError(format!("--fault-ns expects a positive count, got '{p}'"))
            })?;
    }
    Ok(())
}

fn parse_jobs(s: Option<&str>) -> Result<usize, CliError> {
    match s {
        None => Ok(0), // 0 = resolve via env_jobs() at execution time
        Some(p) => p
            .parse::<usize>()
            .ok()
            .filter(|&j| j >= 1)
            .ok_or_else(|| CliError(format!("--jobs expects a positive count, got '{p}'"))),
    }
}

fn parse_suite(s: &str) -> Result<SuiteId, CliError> {
    SuiteId::ALL
        .into_iter()
        .find(|id| id.label() == s)
        .ok_or_else(|| {
            CliError(format!(
                "unknown suite '{s}' (try: spec06, gap, qmm_int, …)"
            ))
        })
}

fn parse_prefetcher(s: &str) -> Result<PrefetcherKind, CliError> {
    match s {
        "none" => Ok(PrefetcherKind::None),
        "next-line" => Ok(PrefetcherKind::NextLine),
        "stride" => Ok(PrefetcherKind::Stride),
        "berti" => Ok(PrefetcherKind::Berti),
        "ipcp" => Ok(PrefetcherKind::Ipcp),
        "bop" => Ok(PrefetcherKind::Bop),
        _ => Err(CliError(format!("unknown prefetcher '{s}'"))),
    }
}

fn parse_policy(s: &str) -> Result<PgcPolicyKind, CliError> {
    match s {
        "permit" => Ok(PgcPolicyKind::PermitPgc),
        "discard" => Ok(PgcPolicyKind::DiscardPgc),
        "discard-ptw" => Ok(PgcPolicyKind::DiscardPtw),
        "iso-storage" => Ok(PgcPolicyKind::IsoStorage),
        "dripper" => Ok(PgcPolicyKind::Dripper),
        "dripper-sf" => Ok(PgcPolicyKind::DripperSf),
        "ppf" => Ok(PgcPolicyKind::Ppf),
        "ppf-dthr" => Ok(PgcPolicyKind::PpfDthr),
        _ => Err(CliError(format!("unknown policy '{s}'"))),
    }
}

fn parse_l2(s: &str) -> Result<L2PrefetcherKind, CliError> {
    match s {
        "none" => Ok(L2PrefetcherKind::None),
        "spp" => Ok(L2PrefetcherKind::Spp),
        "ipcp" => Ok(L2PrefetcherKind::Ipcp),
        "bop" => Ok(L2PrefetcherKind::Bop),
        _ => Err(CliError(format!("unknown l2 prefetcher '{s}'"))),
    }
}

/// Parses an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter().map(String::as_str);
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };

    let mut kv = std::collections::HashMap::new();
    let rest: Vec<&str> = it.collect();
    let mut i = 0;
    while i < rest.len() {
        let key = rest[i];
        if !key.starts_with("--") {
            return Err(CliError(format!("expected --flag, got '{key}'")));
        }
        let val = rest
            .get(i + 1)
            .ok_or_else(|| CliError(format!("flag '{key}' needs a value")))?;
        kv.insert(key.trim_start_matches("--").to_string(), val.to_string());
        i += 2;
    }
    let get = |k: &str| kv.get(k).map(String::as_str);

    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => Ok(Command::List {
            suite: get("suite").map(parse_suite).transpose()?,
        }),
        "run" => {
            let mut a = RunArgs {
                workload: get("workload")
                    .ok_or_else(|| CliError("run requires --workload <name>".into()))?
                    .to_string(),
                ..Default::default()
            };
            if let Some(p) = get("prefetcher") {
                a.prefetcher = parse_prefetcher(p)?;
            }
            if let Some(p) = get("policy") {
                a.policy = parse_policy(p)?;
            }
            if let Some(p) = get("l2") {
                a.l2 = parse_l2(p)?;
            }
            if let Some(p) = get("huge") {
                a.huge_fraction = p
                    .parse()
                    .map_err(|_| CliError(format!("--huge expects a fraction, got '{p}'")))?;
            }
            if let Some(p) = get("warmup") {
                a.warmup = p
                    .parse()
                    .map_err(|_| CliError(format!("--warmup expects a count, got '{p}'")))?;
            }
            if let Some(p) = get("instructions") {
                a.instructions = p
                    .parse()
                    .map_err(|_| CliError(format!("--instructions expects a count, got '{p}'")))?;
            }
            parse_telemetry_flags(
                &kv,
                &mut a.telemetry_out,
                &mut a.telemetry_interval,
                &mut a.telemetry_trace,
            )?;
            parse_os_flags(&kv, &mut a.os)?;
            Ok(Command::Run(a))
        }
        "compare" => Ok(Command::Compare {
            workload: get("workload")
                .ok_or_else(|| CliError("compare requires --workload <name>".into()))?
                .to_string(),
            prefetcher: get("prefetcher")
                .map(parse_prefetcher)
                .transpose()?
                .unwrap_or(PrefetcherKind::Berti),
        }),
        "sweep" => Ok(Command::Sweep {
            suite: parse_suite(
                get("suite").ok_or_else(|| CliError("sweep requires --suite <id>".into()))?,
            )?,
            prefetcher: get("prefetcher")
                .map(parse_prefetcher)
                .transpose()?
                .unwrap_or(PrefetcherKind::Berti),
            jobs: parse_jobs(get("jobs"))?,
        }),
        "campaign" => Ok(Command::Campaign {
            suite: get("suite").map(parse_suite).transpose()?,
            prefetcher: get("prefetcher")
                .map(parse_prefetcher)
                .transpose()?
                .unwrap_or(PrefetcherKind::Berti),
            jobs: parse_jobs(get("jobs"))?,
            per_suite: get("per-suite")
                .map(|p| {
                    p.parse::<usize>().ok().filter(|&k| k >= 1).ok_or_else(|| {
                        CliError(format!("--per-suite expects a positive count, got '{p}'"))
                    })
                })
                .transpose()?,
            trace_dir: get("trace-dir").map(str::to_string),
        }),
        "record" => Ok(Command::Record {
            workload: get("workload")
                .ok_or_else(|| CliError("record requires --workload <name>".into()))?
                .to_string(),
            out: get("out").map(str::to_string),
            warmup: get("warmup")
                .map(|p| {
                    p.parse()
                        .map_err(|_| CliError(format!("--warmup expects a count, got '{p}'")))
                })
                .transpose()?
                .unwrap_or(0),
            instructions: get("instructions")
                .map(|p| {
                    p.parse()
                        .map_err(|_| CliError(format!("--instructions expects a count, got '{p}'")))
                })
                .transpose()?
                .unwrap_or(0),
        }),
        "replay" => {
            let mut a = ReplayArgs {
                trace: get("trace")
                    .ok_or_else(|| CliError("replay requires --trace <path>".into()))?
                    .to_string(),
                ..Default::default()
            };
            if let Some(p) = get("prefetcher") {
                a.prefetcher = parse_prefetcher(p)?;
            }
            if let Some(p) = get("policy") {
                a.policy = parse_policy(p)?;
            }
            if let Some(p) = get("l2") {
                a.l2 = parse_l2(p)?;
            }
            if let Some(p) = get("huge") {
                a.huge_fraction = p
                    .parse()
                    .map_err(|_| CliError(format!("--huge expects a fraction, got '{p}'")))?;
            }
            if let Some(p) = get("warmup") {
                a.warmup = p
                    .parse()
                    .map_err(|_| CliError(format!("--warmup expects a count, got '{p}'")))?;
            }
            if let Some(p) = get("instructions") {
                a.instructions = p
                    .parse()
                    .map_err(|_| CliError(format!("--instructions expects a count, got '{p}'")))?;
            }
            parse_telemetry_flags(
                &kv,
                &mut a.telemetry_out,
                &mut a.telemetry_interval,
                &mut a.telemetry_trace,
            )?;
            parse_os_flags(&kv, &mut a.os)?;
            Ok(Command::Replay(a))
        }
        "check-telemetry" => Ok(Command::CheckTelemetry {
            jsonl: get("jsonl")
                .ok_or_else(|| CliError("check-telemetry requires --jsonl <path>".into()))?
                .to_string(),
        }),
        other => Err(CliError(format!(
            "unknown subcommand '{other}' (try 'help')"
        ))),
    }
}

/// Usage text.
pub const USAGE: &str = "\
pagecross — simulate page-cross prefetch filtering (HPCA'25 reproduction)

USAGE:
  pagecross list [--suite <id>]
  pagecross run --workload <name> [--prefetcher berti|ipcp|bop|stride|next-line|none]
                [--policy dripper|permit|discard|discard-ptw|iso-storage|dripper-sf|ppf|ppf-dthr]
                [--l2 none|spp|ipcp|bop] [--huge <fraction>]
                [--warmup <n>] [--instructions <n>]
                [--telemetry-out <path.jsonl>] [--telemetry-interval <n>]
                [--telemetry-trace <path.json>]
                [--os on|off] [--phys-mem <size>] [--thp <f>] [--fault-ns <n>]
  pagecross compare --workload <name> [--prefetcher <p>]
  pagecross sweep --suite <id> [--prefetcher <p>] [--jobs <n>]
  pagecross campaign [--suite <id>] [--prefetcher <p>] [--jobs <n>] [--per-suite <k>]
                     [--trace-dir <dir>]
  pagecross record --workload <name> [--out <path>] [--warmup <n>] [--instructions <n>]
  pagecross replay --trace <path> [--prefetcher <p>] [--policy <q>] [--l2 <p>]
                   [--huge <fraction>] [--warmup <n>] [--instructions <n>]
                   [--telemetry-out <path.jsonl>] [--telemetry-interval <n>]
                   [--telemetry-trace <path.json>]
                   [--os on|off] [--phys-mem <size>] [--thp <f>] [--fault-ns <n>]
  pagecross check-telemetry --jsonl <path>

Suites: spec06 spec17 gap ligra parsec gkb5 qmm_int qmm_fp

Campaigns run on a worker pool: --jobs (or PAGECROSS_JOBS) sets the
thread count, defaulting to all available cores. Results are
deterministic for a given seed regardless of the worker count.
--per-suite caps the workloads taken per suite (default: all of a
filtered --suite, or 4 per suite for the cross-suite set).

record serializes a workload's stream to a compact checksummed .pct
file (default length: the workload's warm-up + measured defaults).
replay simulates such a file; with default lengths on both sides, the
replayed counters are bit-identical to the direct run. campaign
--trace-dir sweeps the scheme grid over every .pct file in a directory.

Telemetry: --telemetry-out samples every stats delta each
--telemetry-interval retired instructions (default 10000) into a JSONL
time series; --telemetry-trace additionally records structured events
(cache fills/evictions, page walks, DRIPPER decisions) as a Chrome
trace-event file viewable in Perfetto (ui.perfetto.dev).
check-telemetry validates a JSONL file's schema and monotonicity.
Collection is observation-only: reported counters are bit-identical
with telemetry on or off.

OS model: --os on adds demand paging, CLOCK frame reclamation, online
THP promotion, and TLB shootdowns on top of the memory hierarchy.
--phys-mem caps physical memory (binary suffixes: 64M, 2G; minimum
64M), --thp sets promotion aggressiveness in [0,1] (a 2MB region
promotes once ceil((1-thp)*512) of its 4KB pages are resident), and
--fault-ns sets the minor-fault handler latency in nanoseconds (major
faults cost 8x). With --os off (the default) every report is
bit-identical to a build without the OS model.
";

/// Prints the standard single-run report block (shared by `run` and
/// `replay`, so a replayed trace can be diffed against its direct run with
/// plain text tools).
fn print_report(r: &Report) {
    println!("workload     {}", r.workload);
    println!("prefetcher   {} / policy {}", r.prefetcher, r.policy);
    println!(
        "IPC          {:.4}  ({} instr, {} cycles)",
        r.ipc(),
        r.core.instructions,
        r.core.cycles
    );
    println!(
        "MPKI         l1i {:.2}  l1d {:.2}  llc {:.2}  dtlb {:.2}  stlb {:.2}",
        r.l1i_mpki(),
        r.l1d_mpki(),
        r.llc_mpki(),
        r.dtlb_mpki(),
        r.stlb_mpki()
    );
    println!(
        "prefetch     candidates {}  in-page {}  pgc-candidates {}",
        r.prefetch.candidates, r.prefetch.inpage_issued, r.prefetch.pgc_candidates
    );
    println!(
        "page-cross   issued {}  discarded {}  spec-walks {}  useful {}  useless {}",
        r.prefetch.pgc_issued,
        r.prefetch.pgc_discarded,
        r.prefetch.speculative_walks,
        r.l1d.pgc_useful,
        r.l1d.pgc_useless
    );
    println!(
        "quality      coverage {}  accuracy {}  pgc-accuracy {:.3}",
        fmt_opt_ratio(r.coverage()),
        fmt_opt_ratio(r.prefetch_accuracy()),
        r.pgc_accuracy()
    );
    // Printed only when the OS model ran, so OS-off output stays
    // byte-identical to builds without the model (verify.sh diffs it).
    if r.os != OsStats::default() {
        println!(
            "os           minor {}  major {}  reclaims {}  promote {}  demote {}  shootdowns {}",
            r.os.minor_faults,
            r.os.major_faults,
            r.os.reclaims,
            r.os.thp_promotions,
            r.os.thp_demotions,
            r.os.shootdowns
        );
    }
}

/// Runs `builder` over `w`, collecting telemetry when either output path
/// is set, and writes the requested files. Returns the report plus the
/// telemetry summary lines to print after the report block (so the report
/// itself stays diffable between `run` and `replay`).
fn simulate_with_telemetry(
    builder: &SimulationBuilder,
    w: &dyn TraceFactory,
    out: Option<&str>,
    interval: u64,
    trace: Option<&str>,
) -> Result<(Report, Vec<String>), CliError> {
    if out.is_none() && trace.is_none() {
        let report = builder
            .try_run_workload(w)
            .map_err(|e| CliError(format!("simulation aborted: {e}")))?;
        return Ok((report, Vec::new()));
    }
    let tcfg = TelemetryConfig {
        interval,
        events: trace.is_some(),
        ..TelemetryConfig::default()
    };
    let (report, telemetry) = builder.run_workload_with_telemetry(w, &tcfg);
    let mut lines = Vec::new();
    if let Some(path) = out {
        let mut text = String::new();
        for rec in &telemetry.intervals {
            text.push_str(&interval_to_json(rec));
            text.push('\n');
        }
        std::fs::write(path, &text)
            .map_err(|e| CliError(format!("cannot write telemetry JSONL '{path}': {e}")))?;
        lines.push(format!(
            "telemetry    {} intervals -> {path}",
            telemetry.intervals.len()
        ));
    }
    if let Some(path) = trace {
        std::fs::write(path, chrome_trace_json(&telemetry.events))
            .map_err(|e| CliError(format!("cannot write chrome trace '{path}': {e}")))?;
        lines.push(format!(
            "trace        {} events kept of {} seen -> {path}",
            telemetry.events.len(),
            telemetry.events_seen
        ));
    }
    Ok((report, lines))
}

/// Collects the `.pct` files of a directory, sorted by name so the grid
/// order (and therefore the output) is stable across filesystems.
fn trace_dir_replays(dir: &Path) -> Result<Vec<TraceReplay>, CliError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| CliError(format!("cannot read trace dir '{}': {e}", dir.display())))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "pct"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(CliError(format!("no .pct traces in '{}'", dir.display())));
    }
    paths
        .iter()
        .map(|p| {
            // Full scan before the campaign starts: a corrupt trace fails
            // here with a named file, not as a panic on some worker thread.
            pagecross_trace::verify_file(p)
                .and_then(|_| TraceReplay::open(p))
                .map_err(|e| CliError(format!("cannot open trace '{}': {e}", p.display())))
        })
        .collect()
}

fn find_workload(name: &str) -> Result<&'static Workload, CliError> {
    for id in SuiteId::ALL {
        if let Some(w) = suite(id).workloads().iter().find(|w| w.name() == name) {
            return Ok(w);
        }
    }
    Err(CliError(format!(
        "unknown workload '{name}' (use 'pagecross list')"
    )))
}

/// Formats the discard/permit/dripper row from three grid-ordered cell
/// results of one workload.
fn compare_row(cells: &[WorkloadResult]) -> String {
    let d = cells[0].report.ipc();
    let p = cells[1].report.ipc();
    let x = cells[2].report.ipc();
    format!(
        "{:<14} discard ipc={:.3}  permit {:+.2}%  dripper {:+.2}%",
        cells[0].workload,
        d,
        (p / d - 1.0) * 100.0,
        (x / d - 1.0) * 100.0
    )
}

/// Runs the three core policies for `workloads` on the worker pool and
/// prints one compare row per workload. `jobs == 0` resolves via
/// [`env_jobs`].
fn run_compare_grid<S: Subject + ?Sized>(
    workloads: &[&S],
    pf: PrefetcherKind,
    jobs: usize,
) -> CampaignRun {
    let jobs = if jobs == 0 { env_jobs() } else { jobs };
    let run = run_grid(
        workloads,
        &core_schemes(pf),
        &CampaignConfig::default(),
        jobs,
    );
    for cells in run.results.chunks(3) {
        println!("{}", compare_row(cells));
    }
    run
}

/// Executes a parsed command, printing to stdout. Returns an exit code.
pub fn execute(cmd: Command) -> i32 {
    match cmd {
        Command::Help => {
            print!("{USAGE}");
            0
        }
        Command::List { suite: filter } => {
            for id in SuiteId::ALL {
                if filter.is_some_and(|f| f != id) {
                    continue;
                }
                for w in suite(id).workloads() {
                    println!(
                        "{:<14} suite={:<8} {} {}",
                        w.name(),
                        id.label(),
                        if w.is_seen() { "seen  " } else { "unseen" },
                        if w.is_intensive() {
                            "intensive"
                        } else {
                            "non-intensive"
                        },
                    );
                }
            }
            0
        }
        Command::Run(a) => {
            let w = match find_workload(&a.workload) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            let (dw, di) = w.default_lengths();
            let builder = SimulationBuilder::new()
                .prefetcher(a.prefetcher)
                .pgc_policy(a.policy)
                .l2_prefetcher(a.l2)
                .huge_pages(if a.huge_fraction > 0.0 {
                    HugePagePolicy::Fraction(a.huge_fraction)
                } else {
                    HugePagePolicy::None
                })
                .warmup(if a.warmup > 0 { a.warmup } else { dw })
                .instructions(if a.instructions > 0 {
                    a.instructions
                } else {
                    di
                });
            let builder = match a.os.to_config() {
                Some(cfg) => builder.os(cfg),
                None => builder,
            };
            match simulate_with_telemetry(
                &builder,
                w,
                a.telemetry_out.as_deref(),
                a.telemetry_interval,
                a.telemetry_trace.as_deref(),
            ) {
                Ok((r, lines)) => {
                    print_report(&r);
                    for line in &lines {
                        println!("{line}");
                    }
                    0
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    2
                }
            }
        }
        Command::Compare {
            workload,
            prefetcher,
        } => match find_workload(&workload) {
            Ok(w) => {
                // The three schemes run concurrently on the pool.
                run_compare_grid(&[w], prefetcher, 0);
                0
            }
            Err(e) => {
                eprintln!("error: {e}");
                2
            }
        },
        Command::Sweep {
            suite: id,
            prefetcher,
            jobs,
        } => {
            let ws: Vec<&Workload> = seen_workloads()
                .into_iter()
                .filter(|w| w.suite() == id)
                .collect();
            let run = run_compare_grid(&ws, prefetcher, jobs);
            println!("{}", run.timing_line());
            0
        }
        Command::Campaign {
            suite: filter,
            prefetcher,
            jobs,
            per_suite,
            trace_dir,
        } => {
            let run = if let Some(dir) = trace_dir {
                let replays = match trace_dir_replays(Path::new(&dir)) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return 2;
                    }
                };
                let refs: Vec<&TraceReplay> = replays.iter().collect();
                run_compare_grid(&refs, prefetcher, jobs)
            } else {
                let ws: Vec<&Workload> = match filter {
                    Some(id) => seen_workloads()
                        .into_iter()
                        .filter(|w| w.suite() == id)
                        .take(per_suite.unwrap_or(usize::MAX))
                        .collect(),
                    None => pagecross_workloads::representative_seen(per_suite.unwrap_or(4)),
                };
                run_compare_grid(&ws, prefetcher, jobs)
            };
            println!();
            for t in &run.timings {
                println!(
                    "[timing] {:<14} {:<12} {:>10.2?}",
                    t.workload, t.scheme, t.elapsed
                );
            }
            for s in &run.shards {
                println!("[shard {}] {} cells, busy {:.2?}", s.shard, s.cells, s.busy);
            }
            let ph = run.phase_totals();
            println!(
                "[phases] setup {:.2?}, warmup {:.2?}, measure {:.2?} (total {:.2?})",
                ph.setup,
                ph.warmup,
                ph.measure,
                ph.total()
            );
            println!("{}", run.timing_line());
            0
        }
        Command::Record {
            workload,
            out,
            warmup,
            instructions,
        } => {
            let w = match find_workload(&workload) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            let (dw, di) = w.default_lengths();
            let warm = if warmup > 0 { warmup } else { dw };
            let meas = if instructions > 0 { instructions } else { di };
            let path = PathBuf::from(out.unwrap_or_else(|| format!("{workload}.pct")));
            match pagecross_trace::record(w, warm + meas, w.params().seed, &path) {
                Ok(meta) => {
                    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                    println!(
                        "recorded {} instructions of {} to {} ({} bytes, {:.2} bytes/instr)",
                        meta.instr_count,
                        meta.name,
                        path.display(),
                        bytes,
                        bytes as f64 / meta.instr_count.max(1) as f64
                    );
                    0
                }
                Err(e) => {
                    eprintln!("error: recording to '{}': {e}", path.display());
                    2
                }
            }
        }
        Command::Replay(a) => {
            // Full scan up front (every chunk CRC + end marker) so a trace
            // corrupted past the header is a clean CLI error, not a panic
            // halfway through the simulation.
            if let Err(e) = pagecross_trace::verify_file(Path::new(&a.trace)) {
                eprintln!("error: cannot open trace '{}': {e}", a.trace);
                return 2;
            }
            let replay = match TraceReplay::open(Path::new(&a.trace)) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: cannot open trace '{}': {e}", a.trace);
                    return 2;
                }
            };
            let (dw, di) = replay.lengths();
            let builder = SimulationBuilder::new()
                .prefetcher(a.prefetcher)
                .pgc_policy(a.policy)
                .l2_prefetcher(a.l2)
                .huge_pages(if a.huge_fraction > 0.0 {
                    HugePagePolicy::Fraction(a.huge_fraction)
                } else {
                    HugePagePolicy::None
                })
                .warmup(if a.warmup > 0 { a.warmup } else { dw })
                .instructions(if a.instructions > 0 {
                    a.instructions
                } else {
                    di
                });
            let builder = match a.os.to_config() {
                Some(cfg) => builder.os(cfg),
                None => builder,
            };
            match simulate_with_telemetry(
                &builder,
                &replay,
                a.telemetry_out.as_deref(),
                a.telemetry_interval,
                a.telemetry_trace.as_deref(),
            ) {
                Ok((r, lines)) => {
                    print_report(&r);
                    for line in &lines {
                        println!("{line}");
                    }
                    0
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    2
                }
            }
        }
        Command::CheckTelemetry { jsonl } => {
            let text = match std::fs::read_to_string(&jsonl) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read '{jsonl}': {e}");
                    return 2;
                }
            };
            match validate_jsonl(&text) {
                Ok(s) => {
                    println!(
                        "ok: {} intervals, {} instructions, {} cycles",
                        s.lines, s.final_instructions, s.final_cycles
                    );
                    0
                }
                Err(e) => {
                    eprintln!("error: invalid telemetry '{jsonl}': {e}");
                    1
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
    }

    #[test]
    fn list_with_suite() {
        assert_eq!(
            parse(&argv("list --suite gap")).unwrap(),
            Command::List {
                suite: Some(SuiteId::Gap)
            }
        );
        assert!(parse(&argv("list --suite nope")).is_err());
    }

    #[test]
    fn run_parses_all_flags() {
        let cmd = parse(&argv(
            "run --workload gap.s00 --prefetcher bop --policy permit --l2 spp --huge 0.5 \
             --warmup 1000 --instructions 2000",
        ))
        .unwrap();
        let Command::Run(a) = cmd else {
            panic!("expected run")
        };
        assert_eq!(a.workload, "gap.s00");
        assert_eq!(a.prefetcher, PrefetcherKind::Bop);
        assert_eq!(a.policy, PgcPolicyKind::PermitPgc);
        assert_eq!(a.l2, L2PrefetcherKind::Spp);
        assert!((a.huge_fraction - 0.5).abs() < 1e-12);
        assert_eq!(a.warmup, 1_000);
        assert_eq!(a.instructions, 2_000);
    }

    #[test]
    fn run_requires_workload() {
        assert!(parse(&argv("run --policy dripper")).is_err());
    }

    #[test]
    fn flags_need_values() {
        assert!(parse(&argv("run --workload")).is_err());
        assert!(parse(&argv("list --suite gap stray")).is_err());
    }

    #[test]
    fn unknown_subcommand_rejected() {
        let e = parse(&argv("frobnicate")).unwrap_err();
        assert!(e.0.contains("unknown subcommand"));
    }

    #[test]
    fn defaults_are_berti_dripper() {
        let Command::Run(a) = parse(&argv("run --workload spec06.s00")).unwrap() else {
            panic!("expected run")
        };
        assert_eq!(a.prefetcher, PrefetcherKind::Berti);
        assert_eq!(a.policy, PgcPolicyKind::Dripper);
    }

    #[test]
    fn sweep_and_campaign_parse_jobs() {
        assert_eq!(
            parse(&argv("sweep --suite gap --jobs 8")).unwrap(),
            Command::Sweep {
                suite: SuiteId::Gap,
                prefetcher: PrefetcherKind::Berti,
                jobs: 8
            }
        );
        assert_eq!(
            parse(&argv(
                "campaign --suite gap --prefetcher bop --jobs 4 --per-suite 2"
            ))
            .unwrap(),
            Command::Campaign {
                suite: Some(SuiteId::Gap),
                prefetcher: PrefetcherKind::Bop,
                jobs: 4,
                per_suite: Some(2),
                trace_dir: None,
            }
        );
        // Defaults: jobs 0 (auto), representative cross-suite set of 4.
        assert_eq!(
            parse(&argv("campaign")).unwrap(),
            Command::Campaign {
                suite: None,
                prefetcher: PrefetcherKind::Berti,
                jobs: 0,
                per_suite: None,
                trace_dir: None,
            }
        );
        assert_eq!(
            parse(&argv("campaign --trace-dir traces --jobs 2")).unwrap(),
            Command::Campaign {
                suite: None,
                prefetcher: PrefetcherKind::Berti,
                jobs: 2,
                per_suite: None,
                trace_dir: Some("traces".to_string()),
            }
        );
        assert!(parse(&argv("campaign --jobs 0")).is_err());
        assert!(parse(&argv("campaign --jobs many")).is_err());
        assert!(parse(&argv("campaign --per-suite 0")).is_err());
    }

    #[test]
    fn telemetry_flags_parse_with_defaults() {
        let Command::Run(a) = parse(&argv(
            "run --workload gap.s00 --telemetry-out t.jsonl --telemetry-interval 5000 \
             --telemetry-trace t.json",
        ))
        .unwrap() else {
            panic!("expected run")
        };
        assert_eq!(a.telemetry_out.as_deref(), Some("t.jsonl"));
        assert_eq!(a.telemetry_interval, 5_000);
        assert_eq!(a.telemetry_trace.as_deref(), Some("t.json"));

        let Command::Run(b) = parse(&argv("run --workload gap.s00")).unwrap() else {
            panic!("expected run")
        };
        assert_eq!(b.telemetry_out, None);
        assert_eq!(b.telemetry_interval, DEFAULT_TELEMETRY_INTERVAL);
        assert_eq!(b.telemetry_trace, None);

        let Command::Replay(c) =
            parse(&argv("replay --trace g.pct --telemetry-out r.jsonl")).unwrap()
        else {
            panic!("expected replay")
        };
        assert_eq!(c.telemetry_out.as_deref(), Some("r.jsonl"));

        assert!(parse(&argv("run --workload gap.s00 --telemetry-interval 0")).is_err());
        assert!(parse(&argv("run --workload gap.s00 --telemetry-interval x")).is_err());
    }

    #[test]
    fn os_flags_parse_with_defaults() {
        let Command::Run(a) = parse(&argv(
            "run --workload gap.s00 --os on --phys-mem 64M --thp 0.5 --fault-ns 1000",
        ))
        .unwrap() else {
            panic!("expected run")
        };
        assert!(a.os.enabled);
        assert_eq!(a.os.phys_mem_bytes, 64 << 20);
        assert!((a.os.thp - 0.5).abs() < 1e-12);
        assert_eq!(a.os.fault_ns, 1_000);
        let cfg = a.os.to_config().expect("os is on");
        assert_eq!(cfg.phys_mem_bytes, 64 << 20);
        assert_eq!(cfg.minor_fault_cycles, 4_000);
        assert_eq!(cfg.major_fault_cycles, 32_000);

        let Command::Run(b) = parse(&argv("run --workload gap.s00")).unwrap() else {
            panic!("expected run")
        };
        assert_eq!(b.os, OsArgs::default());
        assert_eq!(b.os.to_config(), None, "off by default");

        let Command::Replay(c) =
            parse(&argv("replay --trace g.pct --os on --phys-mem 2G")).unwrap()
        else {
            panic!("expected replay")
        };
        assert!(c.os.enabled);
        assert_eq!(c.os.phys_mem_bytes, 2 << 30);
        // Unset size/latency flags fall back to the OsConfig defaults.
        let cfg = c.os.to_config().expect("os is on");
        assert_eq!(
            cfg.minor_fault_cycles,
            OsConfig::default().minor_fault_cycles
        );

        assert!(parse(&argv("run --workload gap.s00 --os maybe")).is_err());
        assert!(parse(&argv("run --workload gap.s00 --phys-mem 63M")).is_err());
        assert!(parse(&argv("run --workload gap.s00 --phys-mem lots")).is_err());
        assert!(parse(&argv("run --workload gap.s00 --thp 1.5")).is_err());
        assert!(parse(&argv("run --workload gap.s00 --fault-ns 0")).is_err());
    }

    #[test]
    fn size_literals_parse_binary_suffixes() {
        assert_eq!(parse_size("64M"), Some(64 << 20));
        assert_eq!(parse_size("2g"), Some(2 << 30));
        assert_eq!(parse_size("128k"), Some(128 << 10));
        assert_eq!(parse_size("4096"), Some(4096));
        assert_eq!(parse_size(""), None);
        assert_eq!(parse_size("M"), None);
        assert_eq!(parse_size("12Q"), None);
    }

    #[test]
    fn check_telemetry_parses() {
        assert_eq!(
            parse(&argv("check-telemetry --jsonl out.jsonl")).unwrap(),
            Command::CheckTelemetry {
                jsonl: "out.jsonl".to_string()
            }
        );
        assert!(parse(&argv("check-telemetry")).is_err());
    }

    #[test]
    fn run_with_telemetry_emits_checkable_outputs() {
        let dir = std::env::temp_dir().join(format!("pct-telem-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl = dir.join("out.jsonl");
        let trace = dir.join("trace.json");
        let code = execute(Command::Run(RunArgs {
            workload: "gap.s00".to_string(),
            warmup: 1_000,
            instructions: 5_000,
            telemetry_out: Some(jsonl.to_string_lossy().into_owned()),
            telemetry_interval: 1_000,
            telemetry_trace: Some(trace.to_string_lossy().into_owned()),
            ..Default::default()
        }));
        assert_eq!(code, 0);
        let code = execute(Command::CheckTelemetry {
            jsonl: jsonl.to_string_lossy().into_owned(),
        });
        assert_eq!(code, 0, "emitted JSONL must validate");
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        assert!(trace_text.contains("\"traceEvents\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_telemetry_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("pct-telem-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.jsonl");
        std::fs::write(&bad, "{\"seq\":1}\n").unwrap();
        assert_eq!(
            execute(Command::CheckTelemetry {
                jsonl: bad.to_string_lossy().into_owned(),
            }),
            1
        );
        assert_eq!(
            execute(Command::CheckTelemetry {
                jsonl: "/nonexistent.jsonl".to_string(),
            }),
            2
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_and_replay_parse() {
        assert_eq!(
            parse(&argv(
                "record --workload gap.s00 --out /tmp/g.pct --warmup 100 --instructions 200"
            ))
            .unwrap(),
            Command::Record {
                workload: "gap.s00".to_string(),
                out: Some("/tmp/g.pct".to_string()),
                warmup: 100,
                instructions: 200,
            }
        );
        assert_eq!(
            parse(&argv("record --workload gap.s00")).unwrap(),
            Command::Record {
                workload: "gap.s00".to_string(),
                out: None,
                warmup: 0,
                instructions: 0
            }
        );
        assert!(
            parse(&argv("record")).is_err(),
            "record requires --workload"
        );

        let Command::Replay(a) = parse(&argv(
            "replay --trace /tmp/g.pct --prefetcher ipcp --policy permit",
        ))
        .unwrap() else {
            panic!("expected replay")
        };
        assert_eq!(a.trace, "/tmp/g.pct");
        assert_eq!(a.prefetcher, PrefetcherKind::Ipcp);
        assert_eq!(a.policy, PgcPolicyKind::PermitPgc);
        assert_eq!(a.warmup, 0, "defaults derive from the recording length");
        assert!(parse(&argv("replay")).is_err(), "replay requires --trace");
    }

    #[test]
    fn record_then_replay_roundtrip_via_execute() {
        let dir = std::env::temp_dir().join(format!("pct-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("gap.s00.pct");
        let code = execute(Command::Record {
            workload: "gap.s00".to_string(),
            out: Some(out.to_string_lossy().into_owned()),
            warmup: 500,
            instructions: 1_500,
        });
        assert_eq!(code, 0);
        let code = execute(Command::Replay(ReplayArgs {
            trace: out.to_string_lossy().into_owned(),
            ..Default::default()
        }));
        assert_eq!(code, 0);
        // A trace-dir campaign over the same directory also runs clean.
        let code = execute(Command::Campaign {
            suite: None,
            prefetcher: PrefetcherKind::Berti,
            jobs: 2,
            per_suite: None,
            trace_dir: Some(dir.to_string_lossy().into_owned()),
        });
        assert_eq!(code, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_dir_errors_are_reported() {
        let empty = std::env::temp_dir().join(format!("pct-empty-{}", std::process::id()));
        std::fs::create_dir_all(&empty).unwrap();
        assert!(trace_dir_replays(&empty).is_err(), "no traces -> error");
        assert!(trace_dir_replays(Path::new("/nonexistent-dir")).is_err());
        std::fs::remove_dir_all(&empty).ok();
    }

    #[test]
    fn find_workload_by_name() {
        assert!(find_workload("gap.s00").is_ok());
        assert!(find_workload("gap.u00").is_ok());
        assert!(find_workload("nonexistent.z99").is_err());
    }

    #[test]
    fn execute_list_and_help_succeed() {
        assert_eq!(execute(Command::Help), 0);
        assert_eq!(
            execute(Command::List {
                suite: Some(SuiteId::QmmFp)
            }),
            0
        );
    }
}
