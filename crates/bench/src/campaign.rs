//! Campaign runner: sweeps (workload × scheme) cells and collects reports.

use pagecross_cpu::{
    BoundaryMode, L2PrefetcherKind, PgcPolicyKind, PrefetcherKind, Report, SimulationBuilder,
};
use pagecross_mem::HugePagePolicy;
use pagecross_workloads::Workload;

/// One scheme under comparison: prefetcher + policy (+ variants).
#[derive(Clone, Debug)]
pub struct Scheme {
    /// Display label.
    pub label: String,
    /// L1D prefetcher.
    pub prefetcher: PrefetcherKind,
    /// Page-cross policy.
    pub policy: PgcPolicyKind,
    /// L2C prefetcher.
    pub l2: L2PrefetcherKind,
    /// Filtering boundary mode.
    pub boundary: BoundaryMode,
    /// Huge-page policy.
    pub huge: HugePagePolicy,
}

impl Scheme {
    /// A scheme with the given prefetcher and policy, defaults elsewhere.
    pub fn new(label: &str, prefetcher: PrefetcherKind, policy: PgcPolicyKind) -> Self {
        Self {
            label: label.to_string(),
            prefetcher,
            policy,
            l2: L2PrefetcherKind::None,
            boundary: BoundaryMode::Fixed4K,
            huge: HugePagePolicy::None,
        }
    }
}

/// Campaign-wide length scaling (keeps the full figure set tractable).
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Multiplier on each workload's default warm-up length.
    pub warmup_scale: f64,
    /// Multiplier on each workload's default measured length.
    pub measure_scale: f64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self { warmup_scale: 1.0, measure_scale: 1.0 }
    }
}

/// One (workload, scheme) cell result.
#[derive(Clone, Debug)]
pub struct WorkloadResult {
    /// Workload name.
    pub workload: String,
    /// Suite label.
    pub suite: &'static str,
    /// Scheme label.
    pub scheme: String,
    /// Full simulation report.
    pub report: Report,
}

/// Runs one (workload, scheme) cell.
pub fn run_one(w: &Workload, scheme: &Scheme, cfg: &CampaignConfig) -> WorkloadResult {
    let (warm, measure) = w.default_lengths();
    let report = SimulationBuilder::new()
        .prefetcher(scheme.prefetcher)
        .pgc_policy(scheme.policy)
        .l2_prefetcher(scheme.l2)
        .boundary(scheme.boundary)
        .huge_pages(scheme.huge.clone())
        .warmup((warm as f64 * cfg.warmup_scale) as u64)
        .instructions((measure as f64 * cfg.measure_scale) as u64)
        .run_workload(w);
    WorkloadResult {
        workload: w.name().to_string(),
        suite: w.suite().label(),
        scheme: scheme.label.clone(),
        report,
    }
}

/// Runs the full cross product; results are grouped by workload then scheme
/// (scheme order preserved within each workload).
pub fn run_all(
    workloads: &[&Workload],
    schemes: &[Scheme],
    cfg: &CampaignConfig,
) -> Vec<WorkloadResult> {
    let mut out = Vec::with_capacity(workloads.len() * schemes.len());
    for w in workloads {
        for s in schemes {
            out.push(run_one(w, s, cfg));
        }
    }
    out
}

use pagecross_cpu::trace::TraceFactory;

/// Campaign scale from the environment: `PAGECROSS_SCALE` multiplies the
/// measured instruction counts (default 1.0). Use e.g. `PAGECROSS_SCALE=4`
/// for higher-fidelity runs.
pub fn env_scale() -> CampaignConfig {
    let scale = std::env::var("PAGECROSS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.05, 100.0);
    CampaignConfig { warmup_scale: scale, measure_scale: scale }
}

/// The default experiment workload set: a template-stratified slice of the
/// seen set spanning every suite (size controlled by `PAGECROSS_PER_SUITE`,
/// default 4 → 32 workloads).
pub fn quick_seen_set() -> Vec<&'static Workload> {
    let per_suite = std::env::var("PAGECROSS_PER_SUITE")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(4)
        .clamp(1, 64);
    pagecross_workloads::representative_seen(per_suite)
}

/// The motivation-study set (Figs. 2–4): a curated dozen covering
/// page-cross-friendly, hostile and neutral behaviours.
pub fn motivation_set() -> Vec<&'static Workload> {
    use pagecross_workloads::{suite, SuiteId};
    let pick = |s: SuiteId, idx: &[usize]| {
        idx.iter().map(move |&i| &suite(s).workloads()[i]).collect::<Vec<_>>()
    };
    let mut v = Vec::new();
    v.extend(pick(SuiteId::Spec06, &[0, 1, 2, 3, 4]));
    v.extend(pick(SuiteId::Gap, &[0, 1, 2, 3]));
    v.extend(pick(SuiteId::Ligra, &[0, 1]));
    v.extend(pick(SuiteId::QmmInt, &[0]));
    v.extend(pick(SuiteId::QmmFp, &[0]));
    v
}

/// The three Fig. 9-style baseline schemes for a prefetcher.
pub fn core_schemes(pf: PrefetcherKind) -> Vec<Scheme> {
    vec![
        Scheme::new("discard-pgc", pf, PgcPolicyKind::DiscardPgc),
        Scheme::new("permit-pgc", pf, PgcPolicyKind::PermitPgc),
        Scheme::new("dripper", pf, PgcPolicyKind::Dripper),
    ]
}

/// Extracts the per-workload IPC vector of one scheme, in workload order.
pub fn ipcs_of(results: &[WorkloadResult], scheme: &str) -> Vec<f64> {
    results.iter().filter(|r| r.scheme == scheme).map(|r| r.report.ipc()).collect()
}
