//! Campaign runner: sweeps (workload × scheme) grids and collects reports,
//! in parallel across a `std::thread` worker pool.
//!
//! A campaign is a flat list of *cells* — every (workload, scheme) pair of
//! the grid, numbered in grid order. Cells are **striped** across shards
//! (cell `i` belongs to shard `i mod jobs`), each shard visits its cells in
//! an order shuffled by its own seeded [`Rng64`] (cheap load spreading when
//! neighbouring cells have correlated cost), and the merged result is
//! sorted back into grid order. Because every cell simulation is itself
//! seeded (via [`CampaignConfig::seed`]), the merged results are
//! **bit-for-bit identical** for any worker count — `--jobs 1` and
//! `--jobs 32` produce the same reports, in the same order.
//!
//! The 20+ `benches/fig*`/`table*` experiment harnesses all call
//! [`run_all`], which routes through the pool sized by
//! [`env_jobs`] (`PAGECROSS_JOBS`, default: all available cores), so every
//! figure campaign scales with the machine without per-experiment code.

use std::time::{Duration, Instant};

use pagecross_cpu::trace::TraceFactory;
use pagecross_cpu::{
    BoundaryMode, L2PrefetcherKind, OsConfig, PgcPolicyKind, PhaseTimings, PrefetcherKind, Report,
    SimulationBuilder,
};
use pagecross_mem::HugePagePolicy;
use pagecross_trace::TraceReplay;
use pagecross_types::Rng64;
use pagecross_workloads::Workload;

/// Anything a campaign can simulate: a synthetic [`Workload`] from the
/// registry, or a recorded [`TraceReplay`]. The runner only needs a
/// factory to build streams from, a suite label for reporting, and the
/// default warm-up/measured lengths.
pub trait Subject: Sync {
    /// The trace factory the engine consumes.
    fn factory(&self) -> &dyn TraceFactory;
    /// Suite label for grouping in reports.
    fn suite_label(&self) -> &'static str;
    /// Default (warm-up, measured) instruction counts.
    fn lengths(&self) -> (u64, u64);
}

// References delegate so call sites holding `&&Workload` (iterating a
// `Vec<&Workload>`) still satisfy the generic bound without deref noise.
impl<S: Subject + ?Sized> Subject for &S {
    fn factory(&self) -> &dyn TraceFactory {
        (**self).factory()
    }

    fn suite_label(&self) -> &'static str {
        (**self).suite_label()
    }

    fn lengths(&self) -> (u64, u64) {
        (**self).lengths()
    }
}

impl Subject for Workload {
    fn factory(&self) -> &dyn TraceFactory {
        self
    }

    fn suite_label(&self) -> &'static str {
        self.suite().label()
    }

    fn lengths(&self) -> (u64, u64) {
        self.default_lengths()
    }
}

impl Subject for TraceReplay {
    fn factory(&self) -> &dyn TraceFactory {
        self
    }

    fn suite_label(&self) -> &'static str {
        "trace"
    }

    /// Every registry workload warms up over the first third of its run
    /// (25k/50k and 50k/100k default lengths); a recording of a full run
    /// splits the same way, so replay defaults line up with the direct
    /// run's defaults.
    fn lengths(&self) -> (u64, u64) {
        let n = self.meta().instr_count;
        let warm = n / 3;
        (warm, n - warm)
    }
}

/// One scheme under comparison: prefetcher + policy (+ variants).
#[derive(Clone, Debug)]
pub struct Scheme {
    /// Display label.
    pub label: String,
    /// L1D prefetcher.
    pub prefetcher: PrefetcherKind,
    /// Page-cross policy.
    pub policy: PgcPolicyKind,
    /// L2C prefetcher.
    pub l2: L2PrefetcherKind,
    /// Filtering boundary mode.
    pub boundary: BoundaryMode,
    /// Huge-page policy.
    pub huge: HugePagePolicy,
    /// Imitation-OS model (`None` = off, the default).
    pub os: Option<OsConfig>,
}

impl Scheme {
    /// A scheme with the given prefetcher and policy, defaults elsewhere.
    pub fn new(label: &str, prefetcher: PrefetcherKind, policy: PgcPolicyKind) -> Self {
        Self {
            label: label.to_string(),
            prefetcher,
            policy,
            l2: L2PrefetcherKind::None,
            boundary: BoundaryMode::Fixed4K,
            huge: HugePagePolicy::None,
            os: None,
        }
    }
}

/// Campaign-wide length scaling and seeding (keeps the full figure set
/// tractable and reproducible).
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Multiplier on each workload's default warm-up length.
    pub warmup_scale: f64,
    /// Multiplier on each workload's default measured length.
    pub measure_scale: f64,
    /// Seed for every cell's simulation (frame allocation etc.) and for
    /// the per-shard visit-order generators.
    pub seed: u64,
}

impl CampaignConfig {
    /// The historical default simulation seed; campaigns that never set a
    /// seed reproduce the pre-campaign-runner numbers exactly.
    pub const DEFAULT_SEED: u64 = 0xC0FFEE;
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            warmup_scale: 1.0,
            measure_scale: 1.0,
            seed: Self::DEFAULT_SEED,
        }
    }
}

/// One (workload, scheme) cell result.
#[derive(Clone, Debug)]
pub struct WorkloadResult {
    /// Workload name.
    pub workload: String,
    /// Suite label.
    pub suite: &'static str,
    /// Scheme label.
    pub scheme: String,
    /// Full simulation report (all-default when the cell failed).
    pub report: Report,
    /// Why the cell failed (`None` = the report is a real result). A
    /// failed cell — e.g. physical-memory exhaustion under the OS model —
    /// never sinks the rest of the grid: the other cells still merge.
    pub error: Option<String>,
}

/// Runs one (subject, scheme) cell.
pub fn run_one<S: Subject + ?Sized>(
    w: &S,
    scheme: &Scheme,
    cfg: &CampaignConfig,
) -> WorkloadResult {
    run_one_timed(w, scheme, cfg).0
}

/// Runs one (subject, scheme) cell and reports where the host wall-clock
/// went (setup / warm-up / measured phases).
pub fn run_one_timed<S: Subject + ?Sized>(
    w: &S,
    scheme: &Scheme,
    cfg: &CampaignConfig,
) -> (WorkloadResult, PhaseTimings) {
    let (warm, measure) = w.lengths();
    let factory = w.factory();
    let mut builder = SimulationBuilder::new()
        .prefetcher(scheme.prefetcher)
        .pgc_policy(scheme.policy)
        .l2_prefetcher(scheme.l2)
        .boundary(scheme.boundary)
        .huge_pages(scheme.huge.clone())
        .seed(cfg.seed)
        .warmup((warm as f64 * cfg.warmup_scale) as u64)
        .instructions((measure as f64 * cfg.measure_scale) as u64);
    if let Some(os) = scheme.os {
        builder = builder.os(os);
    }
    let (report, phases, error) = match builder.try_run_workload_timed(factory) {
        Ok((report, phases)) => (report, phases, None),
        Err(e) => (
            Report::default(),
            PhaseTimings::default(),
            Some(e.to_string()),
        ),
    };
    let result = WorkloadResult {
        workload: factory.name().to_string(),
        suite: w.suite_label(),
        scheme: scheme.label.clone(),
        report,
        error,
    };
    (result, phases)
}

/// Wall-clock timing of one executed cell.
#[derive(Clone, Debug)]
pub struct CellTiming {
    /// Cell index in grid order.
    pub cell: usize,
    /// Workload name.
    pub workload: String,
    /// Scheme label.
    pub scheme: String,
    /// Time spent simulating this cell.
    pub elapsed: Duration,
    /// Where the cell's wall-clock went (setup / warm-up / measure).
    pub phases: PhaseTimings,
}

/// Aggregate statistics of one worker shard.
#[derive(Clone, Debug)]
pub struct ShardStats {
    /// Shard index (`cell mod jobs`).
    pub shard: usize,
    /// Number of cells this shard executed.
    pub cells: usize,
    /// Total simulation time spent on this shard.
    pub busy: Duration,
}

/// A completed campaign: merged results plus timing telemetry.
#[derive(Clone, Debug)]
pub struct CampaignRun {
    /// Cell results in grid order (workload-major, scheme-minor) —
    /// independent of the worker count.
    pub results: Vec<WorkloadResult>,
    /// Per-cell timings, in grid order.
    pub timings: Vec<CellTiming>,
    /// Per-shard execution statistics, in shard order.
    pub shards: Vec<ShardStats>,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock time of the parallel section.
    pub wall: Duration,
    /// Process CPU time consumed during the parallel section (Linux;
    /// `None` where `/proc` is unavailable).
    pub cpu: Option<Duration>,
}

impl CampaignRun {
    /// Total per-cell wall time across all cells. On an idle multi-core
    /// machine this approximates serial execution time; when workers
    /// outnumber cores it also counts time spent descheduled, so prefer
    /// [`CampaignRun::speedup`] for efficiency claims.
    pub fn busy_total(&self) -> Duration {
        self.shards.iter().map(|s| s.busy).sum()
    }

    /// Parallel speedup: CPU work over wall-clock time. ~1.0 when serial
    /// (or when workers timeshare one core); approaches `jobs` under ideal
    /// scaling. Falls back to per-cell wall time where process CPU time is
    /// unavailable.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        let work = self.cpu.unwrap_or_else(|| self.busy_total()).as_secs_f64();
        if wall > 0.0 {
            work / wall
        } else {
            1.0
        }
    }

    /// Phase-wise wall-clock totals across every cell (host profiling:
    /// how much of the campaign went to setup vs warm-up vs measurement).
    pub fn phase_totals(&self) -> PhaseTimings {
        let mut sum = PhaseTimings::default();
        for t in &self.timings {
            sum.accumulate(&t.phases);
        }
        sum
    }

    /// One-line timing summary (`[campaign] ...`) for experiment logs.
    pub fn timing_line(&self) -> String {
        format!(
            "[campaign] {} cells on {} workers: wall {:.2?}, cpu {:.2?}, speedup {:.2}x",
            self.results.len(),
            self.jobs,
            self.wall,
            self.cpu.unwrap_or_else(|| self.busy_total()),
            self.speedup()
        )
    }
}

/// Process CPU time (user + system) read from `/proc/self/stat`.
///
/// Uses the fixed Linux `USER_HZ` of 100 ticks/second; returns `None` on
/// platforms without procfs (callers fall back to wall-clock sums).
fn process_cpu_time() -> Option<Duration> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // The comm field may contain spaces; fields of interest follow ") ".
    let rest = stat.rsplit_once(") ")?.1;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // Overall stat fields 14 (utime) and 15 (stime), 1-based; `rest`
    // starts at field 3 (state).
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some(Duration::from_millis((utime + stime) * 10))
}

/// Worker count from the environment: `PAGECROSS_JOBS` when set, otherwise
/// all available cores.
pub fn env_jobs() -> usize {
    std::env::var("PAGECROSS_JOBS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&j| j >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .min(256)
}

/// Runs the full (workload × scheme) grid on `jobs` worker threads and
/// returns results merged deterministically into grid order.
///
/// Each shard owns the cells with `index % jobs == shard` and visits them
/// in an order drawn from a shard-seeded [`Rng64`]; the merge sorts by cell
/// index, so the output never depends on thread scheduling or `jobs`.
pub fn run_grid<S: Subject + ?Sized>(
    workloads: &[&S],
    schemes: &[Scheme],
    cfg: &CampaignConfig,
    jobs: usize,
) -> CampaignRun {
    let cells: Vec<(usize, &S, &Scheme)> = workloads
        .iter()
        .flat_map(|&w| schemes.iter().map(move |s| (w, s)))
        .enumerate()
        .map(|(i, (w, s))| (i, w, s))
        .collect();
    let jobs = jobs.clamp(1, cells.len().max(1));

    let cpu_before = process_cpu_time();
    let start = Instant::now();
    type Cell = (usize, WorkloadResult, Duration, PhaseTimings);
    let mut per_shard: Vec<(ShardStats, Vec<Cell>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|shard| {
                let cells = &cells;
                scope.spawn(move || {
                    // Stripe, then shuffle the visit order with the
                    // shard's own generator (Fisher–Yates).
                    let mut mine: Vec<&(usize, &S, &Scheme)> =
                        cells.iter().skip(shard).step_by(jobs).collect();
                    let mut rng =
                        Rng64::new(cfg.seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    for i in (1..mine.len()).rev() {
                        mine.swap(i, rng.below(i as u64 + 1) as usize);
                    }
                    let mut out = Vec::with_capacity(mine.len());
                    let mut busy = Duration::ZERO;
                    for &&(idx, w, s) in &mine {
                        let t0 = Instant::now();
                        let (r, phases) = run_one_timed(w, s, cfg);
                        let dt = t0.elapsed();
                        busy += dt;
                        out.push((idx, r, dt, phases));
                    }
                    (
                        ShardStats {
                            shard,
                            cells: out.len(),
                            busy,
                        },
                        out,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign worker panicked"))
            .collect()
    });
    let wall = start.elapsed();
    let cpu = match (cpu_before, process_cpu_time()) {
        (Some(a), Some(b)) => Some(b.saturating_sub(a)),
        _ => None,
    };

    per_shard.sort_by_key(|(s, _)| s.shard);
    let shards: Vec<ShardStats> = per_shard.iter().map(|(s, _)| s.clone()).collect();
    let mut merged: Vec<Cell> = per_shard.into_iter().flat_map(|(_, v)| v).collect();
    merged.sort_by_key(|(idx, _, _, _)| *idx);

    let timings = merged
        .iter()
        .map(|(idx, r, dt, phases)| CellTiming {
            cell: *idx,
            workload: r.workload.clone(),
            scheme: r.scheme.clone(),
            elapsed: *dt,
            phases: *phases,
        })
        .collect();
    let results = merged.into_iter().map(|(_, r, _, _)| r).collect();
    CampaignRun {
        results,
        timings,
        shards,
        jobs,
        wall,
        cpu,
    }
}

/// Runs the full cross product on the [`env_jobs`] worker pool; results are
/// grouped by workload then scheme (scheme order preserved within each
/// workload), exactly as the serial runner produced them.
pub fn run_all<S: Subject + ?Sized>(
    workloads: &[&S],
    schemes: &[Scheme],
    cfg: &CampaignConfig,
) -> Vec<WorkloadResult> {
    run_grid(workloads, schemes, cfg, env_jobs()).results
}

/// Campaign scale from the environment: `PAGECROSS_SCALE` multiplies the
/// measured instruction counts (default 1.0). Use e.g. `PAGECROSS_SCALE=4`
/// for higher-fidelity runs.
pub fn env_scale() -> CampaignConfig {
    let scale = std::env::var("PAGECROSS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.05, 100.0);
    CampaignConfig {
        warmup_scale: scale,
        measure_scale: scale,
        ..Default::default()
    }
}

/// The default experiment workload set: a template-stratified slice of the
/// seen set spanning every suite (size controlled by `PAGECROSS_PER_SUITE`,
/// default 4 → 32 workloads).
pub fn quick_seen_set() -> Vec<&'static Workload> {
    let per_suite = std::env::var("PAGECROSS_PER_SUITE")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(4)
        .clamp(1, 64);
    pagecross_workloads::representative_seen(per_suite)
}

/// The motivation-study set (Figs. 2–4): a curated dozen covering
/// page-cross-friendly, hostile and neutral behaviours.
pub fn motivation_set() -> Vec<&'static Workload> {
    use pagecross_workloads::{suite, SuiteId};
    let pick = |s: SuiteId, idx: &[usize]| {
        idx.iter()
            .map(move |&i| &suite(s).workloads()[i])
            .collect::<Vec<_>>()
    };
    let mut v = Vec::new();
    v.extend(pick(SuiteId::Spec06, &[0, 1, 2, 3, 4]));
    v.extend(pick(SuiteId::Gap, &[0, 1, 2, 3]));
    v.extend(pick(SuiteId::Ligra, &[0, 1]));
    v.extend(pick(SuiteId::QmmInt, &[0]));
    v.extend(pick(SuiteId::QmmFp, &[0]));
    v
}

/// The three Fig. 9-style baseline schemes for a prefetcher.
pub fn core_schemes(pf: PrefetcherKind) -> Vec<Scheme> {
    vec![
        Scheme::new("discard-pgc", pf, PgcPolicyKind::DiscardPgc),
        Scheme::new("permit-pgc", pf, PgcPolicyKind::PermitPgc),
        Scheme::new("dripper", pf, PgcPolicyKind::Dripper),
    ]
}

/// Extracts the per-workload IPC vector of one scheme, in workload order.
pub fn ipcs_of(results: &[WorkloadResult], scheme: &str) -> Vec<f64> {
    results
        .iter()
        .filter(|r| r.scheme == scheme)
        .map(|r| r.report.ipc())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagecross_workloads::{suite, SuiteId};

    fn tiny_cfg() -> CampaignConfig {
        // Very short runs: these tests exercise orchestration, not fidelity.
        CampaignConfig {
            warmup_scale: 0.02,
            measure_scale: 0.02,
            ..Default::default()
        }
    }

    fn small_grid() -> (Vec<&'static Workload>, Vec<Scheme>) {
        let ws: Vec<&Workload> = suite(SuiteId::Gap).workloads().iter().take(3).collect();
        (ws, core_schemes(PrefetcherKind::Berti))
    }

    #[test]
    fn parallel_results_match_serial_bit_for_bit() {
        let (ws, schemes) = small_grid();
        let cfg = tiny_cfg();
        let serial = run_grid(&ws, &schemes, &cfg, 1);
        let par = run_grid(&ws, &schemes, &cfg, 4);
        assert_eq!(serial.results.len(), par.results.len());
        for (a, b) in serial.results.iter().zip(&par.results) {
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(
                a.report, b.report,
                "{}:{} diverged across worker counts",
                a.workload, a.scheme
            );
        }
    }

    #[test]
    fn grid_order_is_workload_major_scheme_minor() {
        let (ws, schemes) = small_grid();
        let run = run_grid(&ws, &schemes, &tiny_cfg(), 3);
        let mut i = 0;
        for w in &ws {
            for s in &schemes {
                assert_eq!(run.results[i].workload, w.name());
                assert_eq!(run.results[i].scheme, s.label);
                assert_eq!(run.timings[i].cell, i);
                i += 1;
            }
        }
    }

    #[test]
    fn shards_cover_all_cells_exactly_once() {
        let (ws, schemes) = small_grid();
        let jobs = 4;
        let run = run_grid(&ws, &schemes, &tiny_cfg(), jobs);
        assert_eq!(run.jobs, jobs);
        assert_eq!(run.shards.len(), jobs);
        let total: usize = run.shards.iter().map(|s| s.cells).sum();
        assert_eq!(total, ws.len() * schemes.len());
        // Striping balances within ±1.
        let min = run.shards.iter().map(|s| s.cells).min().unwrap();
        let max = run.shards.iter().map(|s| s.cells).max().unwrap();
        assert!(
            max - min <= 1,
            "striped shards must be balanced: {min}..{max}"
        );
    }

    #[test]
    fn seed_changes_results_deterministically() {
        let (ws, schemes) = small_grid();
        // Full-length runs: at micro scale the frame-allocation scramble
        // may not surface in any counter.
        let base = CampaignConfig::default();
        let other = CampaignConfig {
            seed: 0xDEAD_BEEF,
            ..base
        };
        let a = run_grid(&ws[..1], &schemes[..1], &base, 2);
        let b = run_grid(&ws[..1], &schemes[..1], &base, 2);
        let c = run_grid(&ws[..1], &schemes[..1], &other, 2);
        assert_eq!(
            a.results[0].report, b.results[0].report,
            "same seed, same report"
        );
        assert_ne!(
            a.results[0].report, c.results[0].report,
            "a different campaign seed must change frame allocation"
        );
    }

    #[test]
    fn cell_timings_carry_phase_breakdown() {
        let (ws, schemes) = small_grid();
        let run = run_grid(&ws[..1], &schemes[..1], &tiny_cfg(), 1);
        assert_eq!(run.timings.len(), 1);
        let cell = &run.timings[0];
        assert!(
            cell.phases.total() > Duration::ZERO,
            "a real simulation spends measurable time in its phases"
        );
        assert!(
            cell.phases.total() <= cell.elapsed,
            "phase breakdown cannot exceed the cell's wall-clock"
        );
        assert_eq!(run.phase_totals(), cell.phases, "one cell, one total");
    }

    #[test]
    fn jobs_clamped_to_grid_size() {
        let (ws, schemes) = small_grid();
        let run = run_grid(&ws[..1], &schemes[..1], &tiny_cfg(), 64);
        assert_eq!(run.jobs, 1, "one cell cannot use more than one worker");
        assert_eq!(run.results.len(), 1);
    }

    #[test]
    fn speedup_at_least_2x_on_4_workers() {
        // Requires real cores; skipped on constrained CI boxes where the
        // workers would just timeshare one CPU.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores < 4 {
            eprintln!("skipping speedup check: only {cores} core(s) available");
            return;
        }
        let ws: Vec<&Workload> = suite(SuiteId::Gap).workloads().iter().take(4).collect();
        let schemes = core_schemes(PrefetcherKind::Berti);
        let cfg = CampaignConfig::default();
        let serial = run_grid(&ws, &schemes, &cfg, 1);
        let par = run_grid(&ws, &schemes, &cfg, 4);
        let wall_ratio = serial.wall.as_secs_f64() / par.wall.as_secs_f64();
        assert!(
            wall_ratio >= 2.0,
            "expected ≥2x wall-clock speedup at 4 workers, got {:.2}x (serial {:.2?}, parallel {:.2?}, {})",
            wall_ratio,
            serial.wall,
            par.wall,
            par.timing_line()
        );
    }

    #[test]
    fn an_oom_cell_fails_alone_and_the_rest_of_the_grid_merges() {
        use pagecross_cpu::{Instr, Op, TraceSource};

        // Every instruction lives on its own 4 KB code page; code pages are
        // pinned by the OS model, so a 64 MB machine runs out of frames
        // with nothing left to reclaim partway through the run.
        struct CodeBomb;
        struct BombSrc {
            i: u64,
        }
        impl TraceSource for BombSrc {
            fn next_instr(&mut self) -> Instr {
                self.i += 1;
                Instr {
                    pc: 0x100_0000 + self.i * 4096,
                    op: Op::Alu,
                }
            }
        }
        impl TraceFactory for CodeBomb {
            fn name(&self) -> &str {
                "code-bomb"
            }
            fn build(&self) -> Box<dyn TraceSource> {
                Box::new(BombSrc { i: 0 })
            }
        }
        impl Subject for CodeBomb {
            fn factory(&self) -> &dyn TraceFactory {
                self
            }
            fn suite_label(&self) -> &'static str {
                "synthetic"
            }
            fn lengths(&self) -> (u64, u64) {
                (100, 12_000)
            }
        }

        let mut strained = Scheme::new("os-64M", PrefetcherKind::None, PgcPolicyKind::DiscardPgc);
        strained.os = Some(OsConfig {
            phys_mem_bytes: 64 << 20,
            ..OsConfig::default()
        });
        let plain = Scheme::new("no-os", PrefetcherKind::None, PgcPolicyKind::DiscardPgc);
        let run = run_grid(
            &[&CodeBomb],
            &[strained, plain],
            &CampaignConfig::default(),
            2,
        );
        assert_eq!(
            run.results.len(),
            2,
            "the failed cell still occupies its slot"
        );
        let failed = &run.results[0];
        assert!(
            failed.error.as_deref().is_some_and(|e| e.contains("4KB")),
            "expected a frame-exhaustion error, got {:?}",
            failed.error
        );
        assert_eq!(
            failed.report,
            Report::default(),
            "failed cells carry no numbers"
        );
        let ok = &run.results[1];
        assert!(ok.error.is_none(), "the sibling cell merges normally");
        assert!(ok.report.ipc() > 0.0);
    }

    #[test]
    fn replayed_traces_run_through_the_grid_like_workloads() {
        let w: &Workload = &suite(SuiteId::Gap).workloads()[0];
        let cfg = tiny_cfg();
        let (warm, measure) = w.default_lengths();
        let total = ((warm as f64 * cfg.warmup_scale) as u64)
            + ((measure as f64 * cfg.measure_scale) as u64);
        let path = std::env::temp_dir().join(format!(
            "pct-campaign-{}-{}.pct",
            std::process::id(),
            w.name()
        ));
        pagecross_trace::record(w, total, w.params().seed, &path).unwrap();
        let replay = TraceReplay::open(&path).unwrap();
        let schemes = core_schemes(PrefetcherKind::Berti);
        // The replay's default lengths split n at 1/3, matching the
        // workload's own warmup:measure ratio, so the same scaled cell runs.
        let direct = run_grid(&[w], &schemes, &cfg, 2);
        let replayed = run_grid::<TraceReplay>(
            &[&replay],
            &schemes,
            &CampaignConfig {
                warmup_scale: 1.0,
                measure_scale: 1.0,
                ..cfg
            },
            2,
        );
        for (a, b) in direct.results.iter().zip(&replayed.results) {
            assert_eq!(
                a.workload, b.workload,
                "replay reports carry the recorded name"
            );
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(
                a.report, b.report,
                "{}:{} diverged under replay",
                a.workload, a.scheme
            );
        }
        assert_eq!(replayed.results[0].suite, "trace");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn process_cpu_time_is_monotonic_on_linux() {
        if let Some(a) = process_cpu_time() {
            // Burn a little CPU, then re-read.
            let mut x = 0u64;
            for i in 0..20_000_000u64 {
                x = x.wrapping_add(i ^ (x >> 3));
            }
            black_box_u64(x);
            let b = process_cpu_time().expect("procfs disappeared");
            assert!(b >= a, "CPU time went backwards: {a:?} -> {b:?}");
        }
    }

    fn black_box_u64(v: u64) {
        std::hint::black_box(v);
    }
}
