//! Quick calibration probe: Permit vs Discard vs DRIPPER on representative
//! workloads, plus wall-clock throughput.

use pagecross_bench::{run_one, CampaignConfig, Scheme};
use pagecross_cpu::{PgcPolicyKind, PrefetcherKind};
use pagecross_workloads::{suite, SuiteId};
use std::time::Instant;

fn main() {
    let schemes = [
        Scheme::new("discard", PrefetcherKind::Berti, PgcPolicyKind::DiscardPgc),
        Scheme::new("permit", PrefetcherKind::Berti, PgcPolicyKind::PermitPgc),
        Scheme::new("dripper", PrefetcherKind::Berti, PgcPolicyKind::Dripper),
    ];
    let cfg = CampaignConfig::default();
    let t0 = Instant::now();
    let mut total_instr = 0u64;
    for (sid, idx) in [
        (SuiteId::Spec06, 0usize), // stream template
        (SuiteId::Spec06, 1),      // segmented template
        (SuiteId::Spec06, 2),      // chase
        (SuiteId::Spec06, 3),      // TLB-bound stream
        (SuiteId::Spec06, 4),      // stencil
        (SuiteId::Gap, 0),         // graph stream
        (SuiteId::Gap, 1),         // graph segmented
        (SuiteId::Gap, 3),         // phase-alternating
        (SuiteId::QmmInt, 0),
        (SuiteId::QmmFp, 0),
    ] {
        let w = &suite(sid).workloads()[idx];
        let mut line = format!("{:<14}", format!("{}[{}]", sid.label(), idx));
        let mut ipcs = vec![];
        for s in &schemes {
            let r = run_one(w, s, &cfg);
            total_instr += r.report.core.instructions;
            ipcs.push(r.report.ipc());
            line += &format!(
                "  {}: ipc={:.3} pgcI/D={}/{} walks={} l1dM={:.1} stlbM={:.2}",
                s.label,
                r.report.ipc(),
                r.report.prefetch.pgc_issued,
                r.report.prefetch.pgc_discarded,
                r.report.prefetch.speculative_walks,
                r.report.l1d_mpki(),
                r.report.stlb_mpki()
            );
        }
        println!("{line}");
        println!(
            "    permit/discard = {:+.2}%  dripper/discard = {:+.2}%",
            (ipcs[1] / ipcs[0] - 1.0) * 100.0,
            (ipcs[2] / ipcs[0] - 1.0) * 100.0
        );
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "simulated {total_instr} instrs in {dt:.2}s = {:.1}M instr/s",
        total_instr as f64 / dt / 1e6
    );
}
