//! Per-workload diagnostic over the quick seen set: dripper vs ppf.
use pagecross_bench::{env_scale, quick_seen_set, run_one, Scheme};
use pagecross_cpu::trace::TraceFactory;
use pagecross_cpu::{PgcPolicyKind, PrefetcherKind};

fn main() {
    let cfg = env_scale();
    let pf = std::env::var("DIAG_PF")
        .ok()
        .map(|v| match v.as_str() {
            "bop" => PrefetcherKind::Bop,
            "ipcp" => PrefetcherKind::Ipcp,
            _ => PrefetcherKind::Berti,
        })
        .unwrap_or(PrefetcherKind::Berti);
    for w in quick_seen_set() {
        let d = run_one(w, &Scheme::new("d", pf, PgcPolicyKind::DiscardPgc), &cfg).report;
        let p = run_one(w, &Scheme::new("p", pf, PgcPolicyKind::PermitPgc), &cfg).report;
        let x = run_one(w, &Scheme::new("x", pf, PgcPolicyKind::Dripper), &cfg).report;
        let f = run_one(w, &Scheme::new("f", pf, PgcPolicyKind::Ppf), &cfg).report;
        println!(
            "{:<12} permit {:+6.2}% dripper {:+6.2}% ppf {:+6.2}% | pgcI drip {:>6} ppf {:>6} permit {:>6} | pgc u/u drip {}/{} ppf {}/{}",
            w.name(),
            (p.ipc() / d.ipc() - 1.0) * 100.0,
            (x.ipc() / d.ipc() - 1.0) * 100.0,
            (f.ipc() / d.ipc() - 1.0) * 100.0,
            x.prefetch.pgc_issued,
            f.prefetch.pgc_issued,
            p.prefetch.pgc_issued,
            x.l1d.pgc_useful, x.l1d.pgc_useless,
            f.l1d.pgc_useful, f.l1d.pgc_useless,
        );
    }
}
