//! Per-workload diagnostic over the quick seen set: dripper vs ppf.
use pagecross_bench::{env_scale, quick_seen_set, run_one, Scheme};
use pagecross_cpu::trace::TraceFactory;
use pagecross_cpu::{PgcPolicyKind, PrefetcherKind};

/// IPC delta vs the discard baseline, or `n/a` when the baseline IPC is
/// unusable (a zero-instruction or failed run) — a percentage of zero
/// would print as `inf%`/`NaN%` and look like data.
fn pct(ipc: f64, baseline: f64) -> String {
    if baseline <= 0.0 {
        format!("{:>7}", "n/a")
    } else {
        format!("{:+6.2}%", (ipc / baseline - 1.0) * 100.0)
    }
}

fn main() {
    let cfg = env_scale();
    let pf = match std::env::var("DIAG_PF").ok().as_deref() {
        None | Some("berti") => PrefetcherKind::Berti,
        Some("bop") => PrefetcherKind::Bop,
        Some("ipcp") => PrefetcherKind::Ipcp,
        Some(other) => {
            // A typo'd DIAG_PF silently falling back to Berti would label
            // the wrong prefetcher's numbers; fail loudly instead.
            eprintln!("error: unknown DIAG_PF '{other}' (expected berti, bop, or ipcp)");
            std::process::exit(2);
        }
    };
    for w in quick_seen_set() {
        let d = run_one(w, &Scheme::new("d", pf, PgcPolicyKind::DiscardPgc), &cfg).report;
        let p = run_one(w, &Scheme::new("p", pf, PgcPolicyKind::PermitPgc), &cfg).report;
        let x = run_one(w, &Scheme::new("x", pf, PgcPolicyKind::Dripper), &cfg).report;
        let f = run_one(w, &Scheme::new("f", pf, PgcPolicyKind::Ppf), &cfg).report;
        println!(
            "{:<12} permit {} dripper {} ppf {} | pgcI drip {:>6} ppf {:>6} permit {:>6} | pgc u/u drip {}/{} ppf {}/{}",
            w.name(),
            pct(p.ipc(), d.ipc()),
            pct(x.ipc(), d.ipc()),
            pct(f.ipc(), d.ipc()),
            x.prefetch.pgc_issued,
            f.prefetch.pgc_issued,
            p.prefetch.pgc_issued,
            x.l1d.pgc_useful, x.l1d.pgc_useless,
            f.l1d.pgc_useful, f.l1d.pgc_useless,
        );
    }
}
