//! The `pagecross` command-line tool: run, compare and sweep simulations
//! from the shell. See `pagecross help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match pagecross_bench::cli::parse(&args) {
        Ok(cmd) => std::process::exit(pagecross_bench::cli::execute(cmd)),
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", pagecross_bench::cli::USAGE);
            std::process::exit(2);
        }
    }
}
