//! Report-table formatting helpers shared by the figure/table benches.

use pagecross_types::geomean;

/// Formats a ratio as a signed percentage ("+1.73%").
pub fn fmt_pct(ratio: f64) -> String {
    format!("{:+.2}%", (ratio - 1.0) * 100.0)
}

/// Formats an optional ratio metric ("0.731"), rendering `-` when the
/// metric is undefined (e.g. accuracy with no resolved prefetches).
pub fn fmt_opt_ratio(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.3}"),
        None => "-".to_string(),
    }
}

/// Geometric-mean speedup of `variant` IPCs over `baseline` IPCs
/// (element-wise, same workload order).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn geomean_speedup(variant: &[f64], baseline: &[f64]) -> f64 {
    assert_eq!(variant.len(), baseline.len(), "paired IPC vectors");
    let ratios: Vec<f64> = variant
        .iter()
        .zip(baseline)
        .map(|(v, b)| if *b > 0.0 { v / b } else { 1.0 })
        .collect();
    geomean(&ratios).unwrap_or(1.0)
}

/// Prints a TSV header line prefixed with the experiment id.
pub fn print_header(experiment: &str, cols: &[&str]) {
    println!("[{experiment}] {}", cols.join("\t"));
}

/// Prints a TSV row prefixed with the experiment id.
pub fn print_row(experiment: &str, cells: &[String]) {
    println!("[{experiment}] {}", cells.join("\t"));
}

/// A paper-vs-measured summary line printed at the end of each experiment.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Experiment id (e.g. "fig10").
    pub experiment: String,
    /// What the paper reports.
    pub paper: String,
    /// What this reproduction measured.
    pub measured: String,
    /// Whether the qualitative shape matches.
    pub shape_holds: bool,
}

impl Summary {
    /// Prints the summary in the stable grep-able format EXPERIMENTS.md
    /// references.
    pub fn print(&self) {
        println!(
            "[{}] SUMMARY paper=({}) measured=({}) shape={}",
            self.experiment,
            self.paper,
            self.measured,
            if self.shape_holds {
                "HOLDS"
            } else {
                "DIVERGES"
            }
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formatting() {
        assert_eq!(fmt_pct(1.0173), "+1.73%");
        assert_eq!(fmt_pct(0.98), "-2.00%");
    }

    #[test]
    fn opt_ratio_renders_dash_for_none() {
        assert_eq!(fmt_opt_ratio(Some(0.7305)), "0.731");
        assert_eq!(fmt_opt_ratio(None), "-");
    }

    #[test]
    fn geomean_speedup_pairs() {
        let g = geomean_speedup(&[1.1, 1.1], &[1.0, 1.0]);
        assert!((g - 1.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "paired")]
    fn mismatched_lengths_rejected() {
        geomean_speedup(&[1.0], &[]);
    }
}
