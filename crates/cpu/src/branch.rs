//! Hashed perceptron branch predictor (Table IV: "hashed perceptron branch
//! predictor"), following Tarjan & Skadron's merged path/gshare indexing.
//!
//! Three weight tables are indexed by the PC hashed with different global
//! history segments; the prediction is the sign of the weight sum, and
//! training runs on mispredictions or when the sum's magnitude is below the
//! confidence threshold θ.

const TABLES: usize = 3;
const ENTRIES: usize = 1024;
const THETA: i32 = 18;
const WEIGHT_MAX: i16 = 63;
const WEIGHT_MIN: i16 = -64;

/// The branch predictor.
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    weights: Vec<[i16; TABLES]>,
    history: u64,
    /// Lookups performed.
    pub predictions: u64,
    /// Mispredictions observed.
    pub mispredictions: u64,
}

impl BranchPredictor {
    /// Creates a zero-initialised predictor.
    pub fn new() -> Self {
        Self {
            weights: vec![[0; TABLES]; ENTRIES],
            predictions: 0,
            history: 0,
            mispredictions: 0,
        }
    }

    fn indices(&self, pc: u64) -> [usize; TABLES] {
        let h = self.history;
        [
            (pc ^ (pc >> 12)) as usize & (ENTRIES - 1),
            (pc ^ h) as usize & (ENTRIES - 1),
            (pc ^ (h >> 8) ^ (h << 3)) as usize & (ENTRIES - 1),
        ]
    }

    fn sum(&self, idx: &[usize; TABLES]) -> i32 {
        (0..TABLES).map(|t| self.weights[idx[t]][t] as i32).sum()
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&mut self, pc: u64) -> bool {
        self.predictions += 1;
        let idx = self.indices(pc);
        self.sum(&idx) >= 0
    }

    /// Updates with the resolved direction; returns `true` when the earlier
    /// prediction was wrong (the caller charges the misprediction penalty).
    pub fn update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.indices(pc);
        let sum = self.sum(&idx);
        let predicted = sum >= 0;
        let mispredicted = predicted != taken;
        if mispredicted || sum.abs() < THETA {
            for (t, &row) in idx.iter().enumerate() {
                let w = &mut self.weights[row][t];
                *w = if taken {
                    (*w + 1).min(WEIGHT_MAX)
                } else {
                    (*w - 1).max(WEIGHT_MIN)
                };
            }
        }
        if mispredicted {
            self.mispredictions += 1;
        }
        self.history = (self.history << 1) | taken as u64;
        mispredicted
    }

    /// Misprediction rate so far.
    pub fn mpki_numerator(&self) -> u64 {
        self.mispredictions
    }
}

impl Default for BranchPredictor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken() {
        let mut bp = BranchPredictor::new();
        let mut wrong = 0;
        for _ in 0..200 {
            bp.predict(0x400);
            if bp.update(0x400, true) {
                wrong += 1;
            }
        }
        assert!(
            wrong < 10,
            "always-taken must be learned quickly, got {wrong}"
        );
    }

    #[test]
    fn learns_alternating_pattern_with_history() {
        let mut bp = BranchPredictor::new();
        let mut wrong_late = 0;
        for i in 0..2000u64 {
            let taken = i % 2 == 0;
            bp.predict(0x800);
            let mis = bp.update(0x800, taken);
            if i > 1000 && mis {
                wrong_late += 1;
            }
        }
        assert!(
            wrong_late < 100,
            "history tables should capture alternation, got {wrong_late}"
        );
    }

    #[test]
    fn random_branches_mispredict_half() {
        let mut bp = BranchPredictor::new();
        let mut rng = pagecross_types::Rng64::new(9);
        for _ in 0..4000 {
            let taken = rng.chance(0.5);
            bp.predict(0xC00);
            bp.update(0xC00, taken);
        }
        let rate = bp.mispredictions as f64 / bp.predictions as f64;
        assert!(rate > 0.3 && rate < 0.7, "random stream rate {rate}");
    }

    #[test]
    fn distinct_pcs_do_not_destructively_interfere() {
        let mut bp = BranchPredictor::new();
        for _ in 0..500 {
            bp.predict(0x1000);
            bp.update(0x1000, true);
            bp.predict(0x2004);
            bp.update(0x2004, false);
        }
        bp.predict(0x1000);
        let m1 = bp.update(0x1000, true);
        bp.predict(0x2004);
        let m2 = bp.update(0x2004, false);
        assert!(!m1 && !m2);
    }
}
