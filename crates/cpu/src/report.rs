//! Simulation reports: everything the paper's figures and tables read.

use pagecross_types::{CacheStats, CoreStats, OsStats, PrefetchStats, TlbStats, WalkStats};

/// The result of one single-core simulation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    /// Workload name.
    pub workload: String,
    /// Prefetcher name.
    pub prefetcher: String,
    /// Page-cross policy name.
    pub policy: String,
    /// Core statistics.
    pub core: CoreStats,
    /// L1I statistics.
    pub l1i: CacheStats,
    /// L1D statistics.
    pub l1d: CacheStats,
    /// L2C statistics.
    pub l2c: CacheStats,
    /// LLC statistics.
    pub llc: CacheStats,
    /// dTLB statistics.
    pub dtlb: TlbStats,
    /// sTLB statistics.
    pub stlb: TlbStats,
    /// Page-walker statistics.
    pub walks: WalkStats,
    /// Prefetch-issue statistics.
    pub prefetch: PrefetchStats,
    /// Imitation-OS counters (all zero when the OS model is off).
    pub os: OsStats,
}

impl Report {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.core.ipc()
    }

    /// L1D demand MPKI.
    pub fn l1d_mpki(&self) -> f64 {
        self.l1d.mpki(self.core.instructions)
    }

    /// L1I demand MPKI.
    pub fn l1i_mpki(&self) -> f64 {
        self.l1i.mpki(self.core.instructions)
    }

    /// LLC demand MPKI.
    pub fn llc_mpki(&self) -> f64 {
        self.llc.mpki(self.core.instructions)
    }

    /// dTLB demand MPKI.
    pub fn dtlb_mpki(&self) -> f64 {
        self.dtlb.mpki(self.core.instructions)
    }

    /// sTLB demand MPKI.
    pub fn stlb_mpki(&self) -> f64 {
        self.stlb.mpki(self.core.instructions)
    }

    /// Overall prefetch accuracy: useful / (useful + useless), over blocks
    /// whose fate is known (hit at least once, or evicted without hits).
    /// Considers all prefetch requests, in-page and page-cross (Fig. 11).
    ///
    /// `None` when no prefetched block's fate is resolved — e.g. with the
    /// prefetcher disabled — so "no data" is distinguishable from "0%
    /// accurate".
    pub fn prefetch_accuracy(&self) -> Option<f64> {
        let resolved = self.l1d.prefetch_useful + self.l1d.prefetch_useless;
        if resolved == 0 {
            return None;
        }
        Some(self.l1d.prefetch_useful as f64 / resolved as f64)
    }

    /// Miss coverage proxy: prefetch-useful blocks per demand (miss +
    /// covered) — the fraction of would-be misses the prefetcher absorbed.
    ///
    /// `None` when there were neither misses nor covered misses, so "no
    /// demand to cover" is distinguishable from "covered nothing".
    pub fn coverage(&self) -> Option<f64> {
        let denom = self.l1d.demand_misses + self.l1d.prefetch_useful;
        if denom == 0 {
            return None;
        }
        Some(self.l1d.prefetch_useful as f64 / denom as f64)
    }

    /// Page-cross prefetch accuracy: useful PCB blocks / resolved PCB
    /// blocks (Fig. 3).
    pub fn pgc_accuracy(&self) -> f64 {
        let resolved = self.l1d.pgc_useful + self.l1d.pgc_useless;
        if resolved == 0 {
            return 0.0;
        }
        self.l1d.pgc_useful as f64 / resolved as f64
    }

    /// Useful page-cross prefetches per kilo-instruction (Fig. 13).
    pub fn pgc_useful_pki(&self) -> f64 {
        if self.core.instructions == 0 {
            return 0.0;
        }
        self.l1d.pgc_useful as f64 * 1000.0 / self.core.instructions as f64
    }

    /// Useless page-cross prefetches per kilo-instruction (Fig. 13).
    pub fn pgc_useless_pki(&self) -> f64 {
        if self.core.instructions == 0 {
            return 0.0;
        }
        self.l1d.pgc_useless as f64 * 1000.0 / self.core.instructions as f64
    }
}

/// The result of one multi-core mix simulation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MixReport {
    /// Per-core workload names.
    pub workloads: Vec<String>,
    /// Per-core statistics, frozen when each core hit its quota.
    pub cores: Vec<CoreStats>,
    /// Per-core imitation-OS counters (empty or zeroed when off).
    pub os: Vec<OsStats>,
    /// Shared LLC statistics at the end of the run.
    pub llc: CacheStats,
}

impl MixReport {
    /// Per-core IPCs.
    pub fn ipcs(&self) -> Vec<f64> {
        self.cores.iter().map(|c| c.ipc()).collect()
    }

    /// Weighted speedup vs per-core isolation IPCs (§IV-A2):
    /// `Σ IPC_multicore / IPC_isolation`.
    ///
    /// Returns `None` when `isolation` does not carry exactly one IPC per
    /// core — a mismatched baseline would silently mis-weight the sum.
    pub fn weighted_ipc(&self, isolation: &[f64]) -> Option<f64> {
        if isolation.len() != self.cores.len() {
            return None;
        }
        Some(
            self.cores
                .iter()
                .zip(isolation)
                .map(|(c, &iso)| if iso > 0.0 { c.ipc() / iso } else { 0.0 })
                .sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_and_coverage_guards() {
        let r = Report::default();
        assert_eq!(r.prefetch_accuracy(), None);
        assert_eq!(r.coverage(), None);
        assert_eq!(r.pgc_accuracy(), 0.0);
        assert_eq!(r.pgc_useful_pki(), 0.0);
    }

    #[test]
    fn pgc_accuracy_ratio() {
        let mut r = Report::default();
        r.l1d.pgc_useful = 30;
        r.l1d.pgc_useless = 10;
        assert!((r.pgc_accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn weighted_ipc_sums_relative_progress() {
        let mut m = MixReport::default();
        m.cores = vec![
            CoreStats {
                instructions: 100,
                cycles: 100,
                ..Default::default()
            }, // IPC 1.0
            CoreStats {
                instructions: 100,
                cycles: 200,
                ..Default::default()
            }, // IPC 0.5
        ];
        let w = m.weighted_ipc(&[2.0, 1.0]).expect("matching lengths");
        assert!((w - 1.0).abs() < 1e-12, "0.5 + 0.5");
    }

    #[test]
    fn weighted_ipc_length_mismatch_is_none() {
        let m = MixReport {
            cores: vec![CoreStats::default()],
            ..Default::default()
        };
        assert_eq!(m.weighted_ipc(&[]), None);
        assert_eq!(m.weighted_ipc(&[1.0, 1.0]), None);
    }
}
