//! The per-core execution engine: an ROB-occupancy-limited out-of-order
//! timing model with a decoupled front-end approximation.
//!
//! The model dispatches instructions in program order at `issue_width` per
//! cycle, bounded by ROB capacity; loads complete when the memory hierarchy
//! returns, everything else in one cycle. Independent loads overlap
//! (memory-level parallelism), dependent loads serialise
//! ([`crate::trace::Op::Load::depends_on_prev`]), branch mispredictions
//! inject front-end bubbles, and the ROB-full condition stalls dispatch at
//! the head's completion time — the same first-order behaviours ChampSim's
//! O3 model exhibits.
//!
//! The engine also owns all the prefetch plumbing of Fig. 5: it trains the
//! L1D prefetcher on demand accesses, splits candidates into in-page and
//! page-cross, routes page-cross candidates through the policy/filter, and
//! feeds every training event (demand misses for the vUB, PCB hits and
//! evictions for the pUB, epoch snapshots for the adaptive threshold) back
//! to the policy.

use crate::branch::BranchPredictor;
use crate::config::{BoundaryMode, CoreConfig};
use crate::trace::{Instr, Op};
use moka_pgc::{FeatureContext, PgcPolicy, PolicyAction};
use pagecross_mem::{Eviction, MemorySystem, OomError};
use pagecross_os::Os;
use pagecross_prefetch::{AccessInfo, FnlMma, L1dPrefetcher, L1iPrefetcher, L2Prefetcher};
use pagecross_telemetry::IntervalSampler;
use pagecross_types::{
    CoreStats, OsStats, PageSize, PhysAddr, PrefetchCandidate, PrefetchStats, StallCause,
    SystemSnapshot, TelemetryCounters, TraceEvent, VirtAddr, WindowCounters,
};
use std::collections::{HashSet, VecDeque};

/// What a completing instruction was waiting on — recorded with its ROB
/// entry so an ROB-full stall can be charged to the head's real cause.
/// Never consulted for timing; purely attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RetireTag {
    /// Non-memory (or unclassified) completion.
    Other,
    /// Load that missed in L1D without needing a page walk.
    L1dMiss,
    /// Load whose translation required a page walk.
    TlbWalk,
    /// Access that trapped into the OS (page fault, IPI ack, collapse).
    OsFault,
}

impl RetireTag {
    fn stall_cause(self) -> StallCause {
        match self {
            RetireTag::Other => StallCause::RobFull,
            RetireTag::L1dMiss => StallCause::L1dMiss,
            RetireTag::TlbWalk => StallCause::TlbWalk,
            RetireTag::OsFault => StallCause::OsFault,
        }
    }
}

/// One core's execution state.
pub struct CoreEngine {
    cfg: CoreConfig,
    boundary: BoundaryMode,
    core_id: usize,

    cycle: u64,
    /// Cycle at which measurement began (end of warm-up).
    cycle_base: u64,
    issued_this_cycle: u32,
    rob: VecDeque<(u64, RetireTag)>,
    last_completion: u64,
    prev_load_completion: u64,
    last_fetch_line: u64,
    fetch_ready: u64,
    fetch_stall_until: u64,

    bp: BranchPredictor,
    l1i_prefetcher: FnlMma,
    l1i_buf: Vec<u64>,
    prefetcher: Box<dyn L1dPrefetcher>,
    policy: Box<dyn PgcPolicy>,
    l2_prefetcher: Option<Box<dyn L2Prefetcher>>,

    // Feature histories (most-recent-first).
    va_hist: [u64; 3],
    pc_hist: [u64; 3],
    delta_hist: [i64; 3],
    last_line: i64,
    touched_pages: HashSet<u64>,

    epoch_base: WindowCounters,
    snapshot: SystemSnapshot,
    instrs_since_spot: u64,
    instrs_since_epoch: u64,

    /// Interval sampler, absent unless telemetry requested it. Boxed so
    /// the disabled path carries one pointer of overhead.
    sampler: Option<Box<IntervalSampler>>,

    cand_buf: Vec<PrefetchCandidate>,
    l2_buf: Vec<u64>,

    /// Core statistics.
    pub stats: CoreStats,
    /// Prefetch-issue statistics.
    pub pstats: PrefetchStats,
    /// Mirror of this core's OS counters (zero when the OS is off),
    /// refreshed after every step so captures never need the `Os`.
    pub os_stats: OsStats,
}

impl CoreEngine {
    /// Creates an engine for `core_id` with the given prefetcher and
    /// page-cross policy.
    pub fn new(
        core_id: usize,
        cfg: CoreConfig,
        boundary: BoundaryMode,
        prefetcher: Box<dyn L1dPrefetcher>,
        policy: Box<dyn PgcPolicy>,
        l2_prefetcher: Option<Box<dyn L2Prefetcher>>,
    ) -> Self {
        Self {
            cfg,
            boundary,
            core_id,
            cycle: 0,
            cycle_base: 0,
            issued_this_cycle: 0,
            rob: VecDeque::with_capacity(cfg.rob_size),
            last_completion: 0,
            prev_load_completion: 0,
            last_fetch_line: u64::MAX,
            fetch_ready: 0,
            fetch_stall_until: 0,
            bp: BranchPredictor::new(),
            l1i_prefetcher: FnlMma::default(),
            l1i_buf: Vec::with_capacity(4),
            prefetcher,
            policy,
            l2_prefetcher,
            va_hist: [0; 3],
            pc_hist: [0; 3],
            delta_hist: [0; 3],
            last_line: 0,
            touched_pages: HashSet::new(),
            epoch_base: WindowCounters::default(),
            snapshot: SystemSnapshot::default(),
            instrs_since_spot: 0,
            instrs_since_epoch: 0,
            sampler: None,
            cand_buf: Vec::with_capacity(16),
            l2_buf: Vec::with_capacity(8),
            stats: CoreStats::default(),
            pstats: PrefetchStats::default(),
            os_stats: OsStats::default(),
        }
    }

    /// Current cycle (used by the multi-core scheduler to interleave cores).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Retired instructions so far.
    pub fn instructions(&self) -> u64 {
        self.stats.instructions
    }

    /// The active policy (stats access for reports).
    pub fn policy(&self) -> &dyn PgcPolicy {
        self.policy.as_ref()
    }

    /// Finalises cycle accounting: the run's cycle count is the completion
    /// time of the last retiring instruction, measured from the end of
    /// warm-up. The issue slots between the last dispatch and that
    /// completion are charged as drain, closing the stall-accounting
    /// identity (see [`pagecross_types::StallBreakdown`]).
    pub fn finish(&mut self) {
        let end = self.last_completion.max(self.cycle);
        let width = self.cfg.issue_width as u64;
        let drain = ((end - self.cycle) * width).saturating_sub(self.issued_this_cycle as u64);
        self.stats.stalls.charge(StallCause::Drain, drain);
        self.stats.cycles = end - self.cycle_base;
    }

    /// Resets all statistics (end of warm-up) without touching learned
    /// microarchitectural state.
    pub fn reset_stats(&mut self, mem: &MemorySystem) {
        self.stats = CoreStats::default();
        // Measurement starts mid-cycle when warm-up ended partway through
        // an issue group; record those slots so the stall identity stays
        // exact.
        self.stats.stalls.warmup_carry = self.issued_this_cycle as u64;
        self.pstats = PrefetchStats::default();
        self.os_stats = OsStats::default();
        // Rebase windows so the first measured epoch starts clean.
        self.epoch_base = self.capture(mem);
        // Rebase cycle accounting at the current cycle: measured cycles
        // count from here.
        let start = self.cycle;
        self.cycle_base = start;
        self.last_completion = self.last_completion.max(start);
    }

    /// Attaches an interval sampler closing an interval every `interval`
    /// retired instructions. Call after [`reset_stats`](Self::reset_stats)
    /// so the sampler's zero base aligns with the cleared counters.
    pub fn attach_sampler(&mut self, interval: u64) {
        self.sampler = Some(Box::new(IntervalSampler::new(interval)));
    }

    /// Detaches and returns the sampler, if one was attached.
    pub fn take_sampler(&mut self) -> Option<IntervalSampler> {
        self.sampler.take().map(|b| *b)
    }

    /// Cumulative telemetry counters for this core right now. During the
    /// run `cycles` tracks the live clock; after
    /// [`finish`](Self::finish) it equals the final report's cycle count,
    /// so a post-finish capture reconciles exactly.
    pub fn telemetry_counters(&self, mem: &MemorySystem) -> TelemetryCounters {
        let c = mem.core(self.core_id);
        TelemetryCounters {
            instructions: self.stats.instructions,
            cycles: self.stats.cycles.max(self.cycle - self.cycle_base),
            l1d_accesses: c.l1d.stats.demand_accesses,
            l1d_misses: c.l1d.stats.demand_misses,
            l1i_misses: c.l1i.stats.demand_misses,
            l2c_misses: c.l2c.stats.demand_misses,
            llc_accesses: mem.llc.stats.demand_accesses,
            llc_misses: mem.llc.stats.demand_misses,
            dtlb_misses: c.dtlb.stats.misses,
            stlb_misses: c.stlb.stats.misses,
            demand_walks: c.walk_stats.demand_walks,
            prefetch_walks: c.walk_stats.prefetch_walks,
            candidates: self.pstats.candidates,
            pgc_candidates: self.pstats.pgc_candidates,
            pgc_issued: self.pstats.pgc_issued,
            pgc_discarded: self.pstats.pgc_discarded,
            inpage_issued: self.pstats.inpage_issued,
            prefetch_useful: c.l1d.stats.prefetch_useful,
            prefetch_useless: c.l1d.stats.prefetch_useless,
            pgc_useful: c.l1d.stats.pgc_useful,
            pgc_useless: c.l1d.stats.pgc_useless,
            branch_mispredicts: self.stats.branch_mispredicts,
            os_minor_faults: self.os_stats.minor_faults,
            os_major_faults: self.os_stats.major_faults,
            os_reclaims: self.os_stats.reclaims,
            os_promotions: self.os_stats.thp_promotions,
            os_shootdowns: self.os_stats.shootdowns,
        }
    }

    fn capture(&self, mem: &MemorySystem) -> WindowCounters {
        let c = mem.core(self.core_id);
        WindowCounters {
            instructions: self.stats.instructions,
            cycles: self.cycle,
            l1d_acc: c.l1d.stats.demand_accesses,
            l1d_miss: c.l1d.stats.demand_misses,
            l1i_miss: c.l1i.stats.demand_misses,
            llc_acc: mem.llc.stats.demand_accesses,
            llc_miss: mem.llc.stats.demand_misses,
            stlb_acc: c.stlb.stats.accesses,
            stlb_miss: c.stlb.stats.misses,
            pgc_useful: c.l1d.stats.pgc_useful,
            pgc_useless: c.l1d.stats.pgc_useless,
            os_faults: self.os_stats.faults(),
            os_reclaims: self.os_stats.reclaims,
            os_promotions: self.os_stats.thp_promotions,
            os_shootdowns: self.os_stats.shootdowns,
        }
    }

    fn refresh_snapshot(&mut self, mem: &mut MemorySystem) {
        let now = self.capture(mem);
        self.snapshot = SystemSnapshot::from_window(
            &now,
            &self.epoch_base,
            self.rob.len() as f64 / self.cfg.rob_size as f64,
            mem.l1d_demand_mshr_occupancy(self.core_id, self.cycle),
        );
    }

    /// Jumps the clock to `to`, charging the skipped issue slots (minus
    /// those already used this cycle) to `cause`. Callers guarantee
    /// `to > self.cycle`; the pacing step guarantees
    /// `issued_this_cycle < issue_width` here, so the charge is positive.
    fn stall_to(&mut self, to: u64, cause: StallCause) {
        let lost = (to - self.cycle) * self.cfg.issue_width as u64 - self.issued_this_cycle as u64;
        self.stats.stalls.charge(cause, lost);
        self.cycle = to;
        self.issued_this_cycle = 0;
    }

    fn handle_eviction(&mut self, ev: &Eviction) {
        if ev.pcb {
            self.policy.on_pcb_eviction(ev.line.raw(), ev.hits > 0);
        }
    }

    /// Routes one prefetch candidate per Fig. 5: in-page candidates issue
    /// directly; page-cross candidates consult the policy.
    fn route_candidate(
        &mut self,
        mem: &mut MemorySystem,
        os: &Option<Os>,
        cand: PrefetchCandidate,
        trigger_page: PageSize,
        at_cycle: u64,
    ) -> Result<(), OomError> {
        self.pstats.candidates += 1;
        let crosses = match self.boundary {
            BoundaryMode::Fixed4K => cand.crosses_page_4k(),
            BoundaryMode::PageSizeAware => match trigger_page {
                PageSize::Huge2M => cand.crosses_page_2m(),
                PageSize::Base4K => cand.crosses_page_4k(),
            },
        };
        // Under the OS model a prefetcher must never fault a page in: a
        // non-resident target forbids the speculative walk (and the walk
        // will miss anyway, dropping the prefetch at translation).
        let resident = os
            .as_ref()
            .is_none_or(|o| o.is_resident(self.core_id, cand.target));

        if !crosses {
            let r = mem.issue_prefetch(self.core_id, cand.target, false, at_cycle, resident)?;
            if r.issued {
                self.pstats.inpage_issued += 1;
                if let Some(ev) = r.l1d_eviction {
                    self.handle_eviction(&ev);
                }
            } else if r.redundant {
                self.pstats.redundant += 1;
            }
            return Ok(());
        }

        self.pstats.pgc_candidates += 1;
        let ctx = FeatureContext {
            pc: cand.pc,
            va: cand.trigger.raw(),
            target_va: cand.target.raw(),
            delta: cand.delta,
            first_page_access: cand.first_page_access,
            va_hist: self.va_hist,
            pc_hist: self.pc_hist,
            delta_hist: self.delta_hist,
        };
        let action = self.policy.decide(&cand, &ctx, &self.snapshot);
        if mem.events_enabled() {
            mem.push_event(
                self.core_id,
                at_cycle,
                TraceEvent::Decision {
                    pc: cand.pc,
                    target_va: cand.target.raw(),
                    issued: matches!(action, PolicyAction::Issue { .. }),
                    threshold: self.policy.current_threshold(),
                },
            );
        }
        match action {
            PolicyAction::Discard => {
                self.pstats.pgc_discarded += 1;
            }
            PolicyAction::Issue { allow_walk } => {
                let r = mem.issue_prefetch(
                    self.core_id,
                    cand.target,
                    true,
                    at_cycle,
                    allow_walk && resident,
                )?;
                if r.walked {
                    self.pstats.speculative_walks += 1;
                }
                if r.issued {
                    self.pstats.pgc_issued += 1;
                    let line = r.paddr.expect("issued prefetch has a PA").line().raw();
                    self.policy.on_issued(line);
                    if let Some(ev) = r.l1d_eviction {
                        self.handle_eviction(&ev);
                    }
                } else {
                    if r.redundant {
                        self.pstats.redundant += 1;
                    }
                    self.policy.on_issue_dropped();
                }
            }
        }
        Ok(())
    }

    /// Returns the data-ready cycle and the retire tag describing what the
    /// access waited on (for stall attribution if it blocks the ROB head).
    fn demand_access(
        &mut self,
        mem: &mut MemorySystem,
        os: &Option<Os>,
        pc: u64,
        va: VirtAddr,
        is_store: bool,
        start: u64,
    ) -> Result<(u64, RetireTag), OomError> {
        let d = mem.demand_data(self.core_id, va, is_store, start)?;
        let tag = if d.walked {
            RetireTag::TlbWalk
        } else if !d.l1d_hit {
            RetireTag::L1dMiss
        } else {
            RetireTag::Other
        };

        // Filter training events (Fig. 7).
        if !d.l1d_hit {
            self.policy.on_l1d_demand_miss(va.line().raw());
        } else if d.first_hit_on_prefetch && d.hit_pcb {
            self.policy.on_pcb_first_hit(d.paddr.line().raw());
        }
        if let Some(ev) = d.l1d_eviction {
            self.handle_eviction(&ev);
        }

        // Optional L2C prefetcher (physical space, in-page only).
        if let (Some(l2pf), Some((pa, l2_hit))) = (&mut self.l2_prefetcher, d.l2_access) {
            self.l2_buf.clear();
            l2pf.on_access(pc, pa.raw(), l2_hit, &mut self.l2_buf);
            let targets = std::mem::take(&mut self.l2_buf);
            for t in &targets {
                mem.issue_l2_prefetch(self.core_id, PhysAddr::new(*t), start);
            }
            self.l2_buf = targets;
        }

        // First touch to the page?
        let fpa = self.touched_pages.insert(va.page_4k().raw());

        // Train the L1D prefetcher and collect candidates.
        let info = AccessInfo {
            pc,
            va,
            hit: d.l1d_hit,
            cycle: start,
            first_page_access: fpa,
        };
        self.cand_buf.clear();
        self.prefetcher.on_access(&info, &mut self.cand_buf);
        // The fill completion trains timeliness-aware prefetchers (Berti);
        // it must follow on_access so the pending miss is registered.
        if !d.l1d_hit {
            self.prefetcher.on_fill(va, d.ready);
        }
        let cands = std::mem::take(&mut self.cand_buf);
        for cand in &cands {
            self.route_candidate(mem, os, *cand, d.page_size, start)?;
        }
        self.cand_buf = cands;

        // Histories for the feature context.
        let line = va.line().raw() as i64;
        let delta = if self.last_line != 0 {
            line - self.last_line
        } else {
            0
        };
        self.last_line = line;
        self.va_hist = [va.raw(), self.va_hist[0], self.va_hist[1]];
        self.pc_hist = [pc, self.pc_hist[0], self.pc_hist[1]];
        self.delta_hist = [delta, self.delta_hist[0], self.delta_hist[1]];

        Ok((d.ready, tag))
    }

    /// Executes one instruction, advancing the core's clock. `os` is the
    /// shared imitation OS (`None` runs the historical infinite-memory
    /// model bit-for-bit). Errors only when physical memory is truly
    /// exhausted — nothing left to reclaim.
    pub fn step(
        &mut self,
        mem: &mut MemorySystem,
        os: &mut Option<Os>,
        instr: &Instr,
    ) -> Result<(), OomError> {
        // Issue-width pacing.
        if self.issued_this_cycle >= self.cfg.issue_width {
            self.cycle += 1;
            self.issued_this_cycle = 0;
        }
        // ROB-full stall: wait for the head to retire, charging the lost
        // slots to whatever the head was waiting on.
        while self.rob.len() >= self.cfg.rob_size {
            let (head, tag) = self.rob.pop_front().expect("rob nonempty");
            if head > self.cycle {
                self.stall_to(head, tag.stall_cause());
            }
        }
        // Opportunistic head retirement keeps the ROB tracking real
        // occupancy for the snapshot.
        while let Some(&(head, _)) = self.rob.front() {
            if head <= self.cycle {
                self.rob.pop_front();
            } else {
                break;
            }
        }
        // Front-end: branch-redirect bubbles and I-fetch.
        if self.fetch_stall_until > self.cycle {
            self.stall_to(self.fetch_stall_until, StallCause::BranchRedirect);
        }
        let pc_line = instr.pc >> 6;
        if pc_line != self.last_fetch_line {
            if let Some(o) = os.as_mut() {
                o.pin_code_page(mem, self.core_id, VirtAddr::new(instr.pc), self.cycle)?;
            }
            let f = mem.fetch_instr(self.core_id, VirtAddr::new(instr.pc), self.cycle)?;
            self.last_fetch_line = pc_line;
            // Decoupled front-end: the fetch unit runs ahead, so only part
            // of a miss is exposed; model as the full latency minus the
            // L1I hit latency already hidden.
            self.fetch_ready = f.ready.saturating_sub(mem.config().l1i.latency);
            // L1I prefetching (fnl+mma, Table IV).
            self.l1i_buf.clear();
            self.l1i_prefetcher
                .on_fetch(pc_line, f.l1i_hit, &mut self.l1i_buf);
            let targets = std::mem::take(&mut self.l1i_buf);
            for t in &targets {
                mem.issue_l1i_prefetch(self.core_id, VirtAddr::new(t << 6), self.cycle);
            }
            self.l1i_buf = targets;
        }
        if self.fetch_ready > self.cycle {
            self.stall_to(self.fetch_ready, StallCause::FetchStarved);
        }

        let dispatch = self.cycle;
        let (completion, tag) = match instr.op {
            Op::Alu => (dispatch + 1, RetireTag::Other),
            Op::Branch { taken } => {
                self.stats.branches += 1;
                self.bp.predict(instr.pc);
                let mis = self.bp.update(instr.pc, taken);
                let done = dispatch + 1;
                if mis {
                    self.stats.branch_mispredicts += 1;
                    self.fetch_stall_until = done + self.cfg.mispredict_penalty;
                }
                (done, RetireTag::Other)
            }
            Op::Load {
                va,
                depends_on_prev,
            } => {
                self.stats.loads += 1;
                let start = if depends_on_prev {
                    dispatch.max(self.prev_load_completion)
                } else {
                    dispatch
                };
                let os_cycles = match os.as_mut() {
                    Some(o) => o.before_access(mem, self.core_id, va, start)?,
                    None => 0,
                };
                let (ready, tag) =
                    self.demand_access(mem, os, instr.pc, va, false, start + os_cycles)?;
                self.prev_load_completion = ready;
                let tag = if os_cycles > 0 {
                    RetireTag::OsFault
                } else {
                    tag
                };
                (ready, tag)
            }
            Op::Store { va } => {
                self.stats.stores += 1;
                let os_cycles = match os.as_mut() {
                    Some(o) => o.before_access(mem, self.core_id, va, dispatch)?,
                    None => 0,
                };
                self.demand_access(mem, os, instr.pc, va, true, dispatch + os_cycles)?;
                // Stores retire via the store buffer: their latency never
                // blocks the ROB head — but a fault traps at execute, so
                // the handler latency does.
                if os_cycles > 0 {
                    (dispatch + 1 + os_cycles, RetireTag::OsFault)
                } else {
                    (dispatch + 1, RetireTag::Other)
                }
            }
        };

        self.rob.push_back((completion, tag));
        self.last_completion = self.last_completion.max(completion);
        self.issued_this_cycle += 1;
        self.stats.instructions += 1;

        // Epoch machinery.
        self.instrs_since_spot += 1;
        self.instrs_since_epoch += 1;
        if self.instrs_since_spot >= self.cfg.spot_interval {
            self.instrs_since_spot = 0;
            self.refresh_snapshot(mem);
            let snap = self.snapshot;
            self.policy.spot_check(&snap);
        }
        if self.instrs_since_epoch >= self.cfg.epoch_instrs {
            self.instrs_since_epoch = 0;
            self.refresh_snapshot(mem);
            let snap = self.snapshot;
            self.policy.end_epoch(&snap);
            self.epoch_base = self.capture(mem);
        }

        // Interval sampling (pure observation; absent unless telemetry is
        // on). Two-phase so the sampler borrow is released before the
        // counter capture reads `self`.
        if let Some(o) = os.as_ref() {
            self.os_stats = o.stats(self.core_id);
        }
        let due = self.sampler.as_mut().is_some_and(|s| s.on_retire());
        if due {
            let now = self.telemetry_counters(mem);
            let policy = self.policy.telemetry();
            if let Some(s) = &mut self.sampler {
                s.sample(now, policy);
            }
        }
        Ok(())
    }
}
