//! The trace interface between workload generators and the core model.
//!
//! The simulator is trace-driven, like ChampSim: a [`TraceSource`] yields an
//! infinite instruction stream and the runner decides how many instructions
//! to warm up and measure. Loads carry a `depends_on_prev` flag so that
//! generators can express serialisation (pointer chasing) versus
//! memory-level parallelism (streaming) — the property that decides how
//! much latency an out-of-order core can hide.

use pagecross_types::VirtAddr;

/// One instruction of the trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Instr {
    /// Program counter (virtual).
    pub pc: u64,
    /// Operation.
    pub op: Op,
}

/// Operation kinds the timing model distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// A demand load.
    Load {
        /// Virtual address.
        va: VirtAddr,
        /// The load's address depends on the previous load's data
        /// (pointer chase): it cannot start until that load completes.
        depends_on_prev: bool,
    },
    /// A demand store (buffered; retires without waiting for the cache).
    Store {
        /// Virtual address.
        va: VirtAddr,
    },
    /// A non-memory instruction (1-cycle ALU).
    Alu,
    /// A conditional branch with its actual outcome.
    Branch {
        /// The branch's resolved direction.
        taken: bool,
    },
}

/// An infinite, restartable instruction stream.
pub trait TraceSource {
    /// Next instruction. The stream never ends; the runner bounds it.
    fn next_instr(&mut self) -> Instr;
}

/// A factory that builds fresh trace streams — the contract between the
/// workload registry and the simulation builder.
pub trait TraceFactory {
    /// Workload name for reports.
    fn name(&self) -> &str;

    /// Builds a fresh stream (deterministic for a given factory).
    fn build(&self) -> Box<dyn TraceSource>;
}

/// A trivial trace source driven by a closure (tests, microbenches).
pub struct FnTrace<F: FnMut() -> Instr>(pub F);

impl<F: FnMut() -> Instr> TraceSource for FnTrace<F> {
    fn next_instr(&mut self) -> Instr {
        (self.0)()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_trace_yields() {
        let mut i = 0u64;
        let mut t = FnTrace(move || {
            i += 1;
            Instr {
                pc: 0x400000 + i * 4,
                op: Op::Alu,
            }
        });
        let a = t.next_instr();
        let b = t.next_instr();
        assert_ne!(a.pc, b.pc);
        assert_eq!(a.op, Op::Alu);
    }
}
