//! Trace-driven out-of-order CPU model for the `pagecross` reproduction.
//!
//! This crate assembles the full simulated machine of the paper's
//! methodology (§IV, Table IV): the [`engine::CoreEngine`] timing model
//! (352-entry ROB, 6-wide issue, hashed-perceptron branch prediction,
//! decoupled front-end approximation) on top of the
//! [`pagecross_mem::MemorySystem`] hierarchy, with the L1D prefetcher and
//! the page-cross policy wired per Fig. 5.
//!
//! Use [`SimulationBuilder`] to configure prefetcher / policy / page sizes /
//! L2C prefetcher and run single workloads or multi-core mixes.

pub mod branch;
pub mod builder;
pub mod config;
pub mod engine;
pub mod report;
pub mod trace;

pub use builder::{L2PrefetcherKind, PgcPolicyKind, PrefetcherKind, SimulationBuilder};
pub use config::{BoundaryMode, CoreConfig};
pub use pagecross_os::{Os, OsConfig};
pub use pagecross_telemetry::{PhaseTimings, TelemetryConfig, TelemetryRun};
pub use report::{MixReport, Report};
pub use trace::{FnTrace, Instr, Op, TraceFactory, TraceSource};

#[cfg(test)]
mod tests {
    use super::*;
    use pagecross_types::VirtAddr;

    /// A sequential streaming workload: page-cross friendly.
    struct Stream;
    struct StreamSrc {
        i: u64,
    }
    impl TraceSource for StreamSrc {
        fn next_instr(&mut self) -> Instr {
            self.i += 1;
            if self.i.is_multiple_of(4) {
                Instr {
                    pc: 0x40_0000 + (self.i % 16) * 4,
                    op: Op::Load {
                        va: VirtAddr::new(0x1000_0000 + self.i * 16),
                        depends_on_prev: false,
                    },
                }
            } else {
                Instr {
                    pc: 0x40_0100 + (self.i % 8) * 4,
                    op: Op::Alu,
                }
            }
        }
    }
    impl TraceFactory for Stream {
        fn name(&self) -> &str {
            "stream"
        }
        fn build(&self) -> Box<dyn TraceSource> {
            Box::new(StreamSrc { i: 0 })
        }
    }

    fn base() -> SimulationBuilder {
        SimulationBuilder::new().warmup(5_000).instructions(20_000)
    }

    #[test]
    fn simulation_produces_sane_ipc() {
        let r = base().run_workload(&Stream);
        assert!(r.ipc() > 0.05 && r.ipc() < 6.0, "ipc = {}", r.ipc());
        assert_eq!(r.core.instructions, 20_000);
        assert!(r.core.loads > 0);
    }

    #[test]
    fn prefetching_reduces_l1d_mpki_on_stream() {
        let none = base()
            .prefetcher(PrefetcherKind::None)
            .run_workload(&Stream);
        let berti = base()
            .prefetcher(PrefetcherKind::Berti)
            .pgc_policy(PgcPolicyKind::PermitPgc)
            .run_workload(&Stream);
        assert!(
            berti.l1d_mpki() < none.l1d_mpki(),
            "berti {} vs none {}",
            berti.l1d_mpki(),
            none.l1d_mpki()
        );
    }

    #[test]
    fn permit_pgc_issues_page_cross_prefetches_on_stream() {
        let r = base()
            .pgc_policy(PgcPolicyKind::PermitPgc)
            .run_workload(&Stream);
        assert!(
            r.prefetch.pgc_candidates > 0,
            "stream must generate PGC candidates"
        );
        assert!(r.prefetch.pgc_issued > 0);
        assert_eq!(r.prefetch.pgc_discarded, 0, "permit never discards");
    }

    #[test]
    fn discard_pgc_never_issues() {
        let r = base()
            .pgc_policy(PgcPolicyKind::DiscardPgc)
            .run_workload(&Stream);
        assert!(r.prefetch.pgc_candidates > 0);
        assert_eq!(r.prefetch.pgc_issued, 0);
        assert_eq!(r.prefetch.speculative_walks, 0);
        assert_eq!(
            r.l1d.pgc_fills, 0,
            "no PCB blocks without page-cross prefetches"
        );
    }

    #[test]
    fn discard_ptw_never_walks() {
        let r = base()
            .pgc_policy(PgcPolicyKind::DiscardPtw)
            .run_workload(&Stream);
        assert_eq!(r.prefetch.speculative_walks, 0);
        assert_eq!(r.walks.prefetch_walks, 0);
    }

    #[test]
    fn dripper_sits_between_permit_and_discard_in_issue_volume() {
        let permit = base()
            .pgc_policy(PgcPolicyKind::PermitPgc)
            .run_workload(&Stream);
        let dripper = base()
            .pgc_policy(PgcPolicyKind::Dripper)
            .run_workload(&Stream);
        assert!(dripper.prefetch.pgc_issued <= permit.prefetch.pgc_issued);
        // On a perfectly regular stream DRIPPER learns that page-cross
        // prefetches are useful and issues them.
        assert!(
            dripper.prefetch.pgc_issued > 0,
            "dripper should learn to issue on a stream"
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = base().run_workload(&Stream);
        let b = base().run_workload(&Stream);
        assert_eq!(a.core, b.core);
        assert_eq!(a.l1d, b.l1d);
        assert_eq!(a.prefetch, b.prefetch);
    }

    #[test]
    fn mix_runs_and_reports_per_core() {
        let m = SimulationBuilder::new()
            .warmup(2_000)
            .instructions(5_000)
            .run_mix(&[&Stream, &Stream]);
        assert_eq!(m.cores.len(), 2);
        for c in &m.cores {
            assert_eq!(c.instructions, 5_000);
            assert!(c.ipc() > 0.0);
        }
    }
}
