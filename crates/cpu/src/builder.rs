//! The simulation builder: assembles a core + memory system + prefetcher +
//! page-cross policy and runs workloads or multi-core mixes.

use crate::config::{BoundaryMode, CoreConfig};
use crate::engine::CoreEngine;
use crate::report::{MixReport, Report};
use crate::trace::TraceFactory;
use moka_pgc::dripper::{
    dripper_config, single_program_feature, single_system_feature, TargetPrefetcher,
};
use moka_pgc::{
    DiscardPgc, DiscardPtw, FilterConfig, FilterPolicy, PageCrossFilter, PermitPgc, PgcPolicy,
    ProgramFeature, SystemFeature,
};
use pagecross_mem::{HugePagePolicy, MemConfig, MemorySystem, OomError};
use pagecross_os::{Os, OsConfig};
use pagecross_prefetch::{
    AccessInfo, Berti, Bop, Ipcp, L1dPrefetcher, L2Prefetcher, NextLine, Spp, Stride,
};
use pagecross_telemetry::{PhaseTimings, TelemetryConfig, TelemetryRun};
use pagecross_types::{PrefetchCandidate, VirtAddr};
use std::time::Instant;

/// L1D prefetcher selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefetcherKind {
    /// No prefetching.
    None,
    /// Next-line baseline.
    NextLine,
    /// PC-stride baseline.
    Stride,
    /// Berti (MICRO'22) — the paper's primary case study.
    Berti,
    /// IPCP (ISCA'20).
    Ipcp,
    /// BOP (HPCA'16).
    Bop,
}

impl PrefetcherKind {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            PrefetcherKind::None => "none",
            PrefetcherKind::NextLine => "next-line",
            PrefetcherKind::Stride => "stride",
            PrefetcherKind::Berti => "berti",
            PrefetcherKind::Ipcp => "ipcp",
            PrefetcherKind::Bop => "bop",
        }
    }

    fn dripper_target(self) -> TargetPrefetcher {
        match self {
            PrefetcherKind::Berti => TargetPrefetcher::Berti,
            PrefetcherKind::Bop => TargetPrefetcher::Bop,
            // IPCP and the baselines share the PC⊕Delta configuration.
            _ => TargetPrefetcher::Ipcp,
        }
    }
}

/// Page-cross policy selection (the schemes of Fig. 9 and §V).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PgcPolicyKind {
    /// Always issue page-cross prefetches.
    PermitPgc,
    /// Never issue page-cross prefetches.
    DiscardPgc,
    /// Issue only when the translation is TLB-resident (no speculative
    /// walks).
    DiscardPtw,
    /// Permit PGC with the prefetcher's tables enlarged by DRIPPER's
    /// storage budget.
    IsoStorage,
    /// DRIPPER (Table II configuration for the active prefetcher).
    Dripper,
    /// DRIPPER with only its system features (§V-B5).
    DripperSf,
    /// DRIPPER with a static activation threshold (ablation).
    DripperStatic(i32),
    /// PPF converted to a page-cross filter (static threshold).
    Ppf,
    /// PPF with MOKA's dynamic thresholding.
    PpfDthr,
    /// A filter built from exactly one program feature (Fig. 14).
    SingleFeature(ProgramFeature),
    /// A filter built from exactly one system feature (Fig. 14).
    SingleSystemFeature(SystemFeature),
}

impl PgcPolicyKind {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            PgcPolicyKind::PermitPgc => "permit-pgc",
            PgcPolicyKind::DiscardPgc => "discard-pgc",
            PgcPolicyKind::DiscardPtw => "discard-ptw",
            PgcPolicyKind::IsoStorage => "iso-storage",
            PgcPolicyKind::Dripper => "dripper",
            PgcPolicyKind::DripperSf => "dripper-sf",
            PgcPolicyKind::DripperStatic(_) => "dripper-static",
            PgcPolicyKind::Ppf => "ppf",
            PgcPolicyKind::PpfDthr => "ppf+dthr",
            PgcPolicyKind::SingleFeature(_) => "single-feature",
            PgcPolicyKind::SingleSystemFeature(_) => "single-sys-feature",
        }
    }
}

/// L2C prefetcher selection (§V-B7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum L2PrefetcherKind {
    /// No L2C prefetcher (the paper's main configuration).
    #[default]
    None,
    /// SPP.
    Spp,
    /// IPCP adapted to the physical space.
    Ipcp,
    /// BOP adapted to the physical space.
    Bop,
}

/// Adapts an L1D-style prefetcher to the L2C's physical, page-bounded
/// world: candidates leaving the 4 KB physical page are dropped.
struct L2Adapter<P: L1dPrefetcher> {
    inner: P,
    buf: Vec<PrefetchCandidate>,
}

impl<P: L1dPrefetcher> L2Prefetcher for L2Adapter<P> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn on_access(&mut self, pc: u64, paddr: u64, hit: bool, out: &mut Vec<u64>) {
        let va = VirtAddr::new(paddr); // physical bits reinterpreted
        let info = AccessInfo {
            pc,
            va,
            hit,
            cycle: 0,
            first_page_access: false,
        };
        self.buf.clear();
        self.inner.on_access(&info, &mut self.buf);
        if !hit {
            self.inner.on_fill(va, 0);
        }
        for c in &self.buf {
            if !c.crosses_page_4k() {
                out.push(c.target.raw());
            }
        }
    }
}

/// A no-op prefetcher for the `None` kind.
struct NoPrefetch;

impl L1dPrefetcher for NoPrefetch {
    fn name(&self) -> &'static str {
        "none"
    }

    fn on_access(&mut self, _info: &AccessInfo, _out: &mut Vec<PrefetchCandidate>) {}
}

/// Builds and runs simulations.
///
/// # Example
///
/// ```
/// use pagecross_cpu::{SimulationBuilder, PrefetcherKind, PgcPolicyKind};
/// use pagecross_cpu::trace::{Instr, Op, TraceFactory, TraceSource};
/// use pagecross_types::VirtAddr;
///
/// struct Stream;
/// struct StreamSrc(u64);
/// impl TraceSource for StreamSrc {
///     fn next_instr(&mut self) -> Instr {
///         self.0 += 64;
///         Instr { pc: 0x400000, op: Op::Load { va: VirtAddr::new(0x10_0000 + self.0), depends_on_prev: false } }
///     }
/// }
/// impl TraceFactory for Stream {
///     fn name(&self) -> &str { "stream" }
///     fn build(&self) -> Box<dyn TraceSource> { Box::new(StreamSrc(0)) }
/// }
///
/// let report = SimulationBuilder::new()
///     .prefetcher(PrefetcherKind::Berti)
///     .pgc_policy(PgcPolicyKind::Dripper)
///     .warmup(2_000)
///     .instructions(10_000)
///     .run_workload(&Stream);
/// assert!(report.ipc() > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct SimulationBuilder {
    prefetcher: PrefetcherKind,
    policy: PgcPolicyKind,
    custom_filter: Option<FilterConfig>,
    l2_prefetcher: L2PrefetcherKind,
    boundary: BoundaryMode,
    huge_pages: HugePagePolicy,
    core_cfg: CoreConfig,
    warmup: u64,
    instructions: u64,
    seed: u64,
    os: Option<OsConfig>,
}

impl SimulationBuilder {
    /// A builder with the paper's defaults: Berti + DRIPPER, 4 KB pages,
    /// no L2C prefetcher.
    pub fn new() -> Self {
        Self {
            prefetcher: PrefetcherKind::Berti,
            policy: PgcPolicyKind::Dripper,
            custom_filter: None,
            l2_prefetcher: L2PrefetcherKind::None,
            boundary: BoundaryMode::Fixed4K,
            huge_pages: HugePagePolicy::None,
            core_cfg: CoreConfig::default(),
            warmup: 50_000,
            instructions: 100_000,
            seed: 0xC0FFEE,
            os: None,
        }
    }

    /// Selects the L1D prefetcher.
    pub fn prefetcher(mut self, kind: PrefetcherKind) -> Self {
        self.prefetcher = kind;
        self
    }

    /// Selects the page-cross policy.
    pub fn pgc_policy(mut self, kind: PgcPolicyKind) -> Self {
        self.policy = kind;
        self
    }

    /// Overrides the policy with a filter built from an explicit MOKA
    /// configuration (ablation studies: buffer sizes, table sizes, custom
    /// feature selections).
    pub fn custom_filter(mut self, cfg: FilterConfig) -> Self {
        self.custom_filter = Some(cfg);
        self
    }

    /// Selects the L2C prefetcher.
    pub fn l2_prefetcher(mut self, kind: L2PrefetcherKind) -> Self {
        self.l2_prefetcher = kind;
        self
    }

    /// Selects the filtering boundary mode (§V-B6).
    pub fn boundary(mut self, mode: BoundaryMode) -> Self {
        self.boundary = mode;
        self
    }

    /// Selects the huge-page policy of the address space.
    pub fn huge_pages(mut self, policy: HugePagePolicy) -> Self {
        self.huge_pages = policy;
        self
    }

    /// Overrides the core configuration.
    pub fn core_config(mut self, cfg: CoreConfig) -> Self {
        self.core_cfg = cfg;
        self
    }

    /// Warm-up instructions (statistics discarded).
    pub fn warmup(mut self, n: u64) -> Self {
        self.warmup = n;
        self
    }

    /// Measured instructions.
    pub fn instructions(mut self, n: u64) -> Self {
        self.instructions = n;
        self
    }

    /// Seed for physical frame placement.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the imitation OS (demand paging, CLOCK reclamation, online
    /// THP, TLB shootdowns). Physical memory shrinks to
    /// `cfg.phys_mem_bytes` and the static [`HugePagePolicy`] is ignored:
    /// 2 MB mappings come only from the OS's own promotion daemon.
    pub fn os(mut self, cfg: OsConfig) -> Self {
        self.os = Some(cfg);
        self
    }

    fn make_prefetcher(&self) -> Box<dyn L1dPrefetcher> {
        // ISO-Storage gives the prefetcher DRIPPER's budget as extra tables.
        let mult = if self.policy == PgcPolicyKind::IsoStorage {
            4
        } else {
            1
        };
        match self.prefetcher {
            PrefetcherKind::None => Box::new(NoPrefetch),
            PrefetcherKind::NextLine => Box::new(NextLine::new(1)),
            PrefetcherKind::Stride => Box::new(Stride::new(2)),
            PrefetcherKind::Berti => Box::new(Berti::new(mult)),
            PrefetcherKind::Ipcp => Box::new(Ipcp::new(mult)),
            PrefetcherKind::Bop => Box::new(Bop::new(mult)),
        }
    }

    fn make_policy(&self) -> Box<dyn PgcPolicy> {
        if let Some(cfg) = &self.custom_filter {
            return Box::new(FilterPolicy::new(
                "custom",
                PageCrossFilter::new(cfg.clone()),
            ));
        }
        match self.policy {
            PgcPolicyKind::PermitPgc | PgcPolicyKind::IsoStorage => Box::new(PermitPgc),
            PgcPolicyKind::DiscardPgc => Box::new(DiscardPgc),
            PgcPolicyKind::DiscardPtw => Box::new(DiscardPtw),
            PgcPolicyKind::Dripper => {
                Box::new(moka_pgc::dripper::dripper(self.prefetcher.dripper_target()))
            }
            PgcPolicyKind::DripperSf => Box::new(moka_pgc::dripper_sf()),
            PgcPolicyKind::DripperStatic(t) => {
                let mut cfg = dripper_config(self.prefetcher.dripper_target());
                cfg.adaptive = false;
                cfg.static_threshold = t;
                Box::new(FilterPolicy::new(
                    "dripper-static",
                    PageCrossFilter::new(cfg),
                ))
            }
            PgcPolicyKind::Ppf => Box::new(moka_pgc::ppf()),
            PgcPolicyKind::PpfDthr => Box::new(moka_pgc::ppf_dthr()),
            PgcPolicyKind::SingleFeature(f) => Box::new(single_program_feature(f)),
            PgcPolicyKind::SingleSystemFeature(f) => Box::new(single_system_feature(f)),
        }
    }

    fn make_l2(&self) -> Option<Box<dyn L2Prefetcher>> {
        match self.l2_prefetcher {
            L2PrefetcherKind::None => None,
            L2PrefetcherKind::Spp => Some(Box::new(Spp::new())),
            L2PrefetcherKind::Ipcp => Some(Box::new(L2Adapter {
                inner: Ipcp::new(1),
                buf: Vec::new(),
            })),
            L2PrefetcherKind::Bop => Some(Box::new(L2Adapter {
                inner: Bop::new(1),
                buf: Vec::new(),
            })),
        }
    }

    fn make_engine(&self, core_id: usize) -> CoreEngine {
        CoreEngine::new(
            core_id,
            self.core_cfg,
            self.boundary,
            self.make_prefetcher(),
            self.make_policy(),
            self.make_l2(),
        )
    }

    fn collect_report(&self, name: &str, engine: &CoreEngine, mem: &MemorySystem) -> Report {
        let c = mem.core(0);
        Report {
            workload: name.to_string(),
            prefetcher: self.prefetcher.label().to_string(),
            policy: self.policy.label().to_string(),
            core: engine.stats,
            l1i: c.l1i.stats,
            l1d: c.l1d.stats,
            l2c: c.l2c.stats,
            llc: mem.llc.stats,
            dtlb: c.dtlb.stats,
            stlb: c.stlb.stats,
            walks: c.walk_stats,
            prefetch: engine.pstats,
            os: engine.os_stats,
        }
    }

    /// Memory + OS construction shared by the single and mix paths. With
    /// the OS on, its physical-memory size overrides the DRAM capacity
    /// and the static huge-page policy is forced off.
    fn make_mem_and_os(&self, n: usize) -> (MemorySystem, Option<Os>) {
        let mut mcfg = MemConfig::table_iv(n as u32);
        let huge = if let Some(os) = &self.os {
            mcfg.dram.capacity_bytes = os.phys_mem_bytes;
            HugePagePolicy::None
        } else {
            self.huge_pages.clone()
        };
        let mem = MemorySystem::new(mcfg, n, huge, self.seed);
        let os = self.os.map(|cfg| Os::new(cfg, n));
        (mem, os)
    }

    /// Runs a single workload on a single core. Telemetry collection (when
    /// `tcfg` is `Some`) is pure observation: the returned `Report` is
    /// bit-identical with and without it.
    fn run_single(
        &self,
        workload: &dyn TraceFactory,
        tcfg: Option<&TelemetryConfig>,
    ) -> (Report, PhaseTimings, Option<TelemetryRun>) {
        self.try_run_single(workload, tcfg)
            .expect("out of physical memory")
    }

    /// Fallible variant of the single-core path: an `Err` means physical
    /// memory was exhausted with nothing left to reclaim (only possible
    /// with the OS model on and a pathological footprint/pool ratio).
    fn try_run_single(
        &self,
        workload: &dyn TraceFactory,
        tcfg: Option<&TelemetryConfig>,
    ) -> Result<(Report, PhaseTimings, Option<TelemetryRun>), OomError> {
        let t0 = Instant::now();
        let (mut mem, mut os) = self.make_mem_and_os(1);
        let mut engine = self.make_engine(0);
        let mut trace = workload.build();
        let t_setup = Instant::now();
        for _ in 0..self.warmup {
            let i = trace.next_instr();
            engine.step(&mut mem, &mut os, &i)?;
        }
        let t_warmup = Instant::now();
        if let Some(o) = os.as_mut() {
            o.reset_stats();
        }
        mem.reset_stats();
        engine.reset_stats(&mem);
        if let Some(cfg) = tcfg {
            engine.attach_sampler(cfg.interval);
            if let Some(ring) = cfg.make_ring() {
                mem.attach_events(ring);
            }
        }
        for _ in 0..self.instructions {
            let i = trace.next_instr();
            engine.step(&mut mem, &mut os, &i)?;
        }
        engine.finish();
        let telemetry = engine.take_sampler().map(|mut sampler| {
            // Close the final partial interval against the post-finish
            // counters so the deltas telescope to the report totals.
            let now = engine.telemetry_counters(&mem);
            sampler.flush(now, engine.policy().telemetry());
            let (events, events_seen) = match mem.take_events() {
                Some(ring) => {
                    let seen = ring.seen();
                    (ring.into_events(), seen)
                }
                None => (Vec::new(), 0),
            };
            TelemetryRun {
                intervals: sampler.into_intervals(),
                events,
                events_seen,
            }
        });
        let timings = PhaseTimings {
            setup: t_setup.duration_since(t0),
            warmup: t_warmup.duration_since(t_setup),
            measure: t_warmup.elapsed(),
        };
        let report = self.collect_report(workload.name(), &engine, &mem);
        Ok((report, timings, telemetry))
    }

    /// Runs a single workload on a single core.
    pub fn run_workload(&self, workload: &dyn TraceFactory) -> Report {
        self.run_single(workload, None).0
    }

    /// Runs a single workload, surfacing physical-memory exhaustion as an
    /// error instead of panicking (campaign cells use this so one OOM cell
    /// doesn't sink the whole grid).
    pub fn try_run_workload(&self, workload: &dyn TraceFactory) -> Result<Report, OomError> {
        Ok(self.try_run_single(workload, None)?.0)
    }

    /// Runs a single workload with telemetry collection.
    pub fn run_workload_with_telemetry(
        &self,
        workload: &dyn TraceFactory,
        cfg: &TelemetryConfig,
    ) -> (Report, TelemetryRun) {
        let (report, _, telemetry) = self.run_single(workload, Some(cfg));
        (report, telemetry.expect("sampler was attached"))
    }

    /// Runs a single workload, also returning wall-clock phase timings.
    pub fn run_workload_timed(&self, workload: &dyn TraceFactory) -> (Report, PhaseTimings) {
        let (report, timings, _) = self.run_single(workload, None);
        (report, timings)
    }

    /// Fallible variant of [`Self::run_workload_timed`]: campaign cells use
    /// this so one out-of-memory cell surfaces as a per-cell failure
    /// instead of sinking the whole grid.
    pub fn try_run_workload_timed(
        &self,
        workload: &dyn TraceFactory,
    ) -> Result<(Report, PhaseTimings), OomError> {
        let (report, timings, _) = self.try_run_single(workload, None)?;
        Ok((report, timings))
    }

    /// Runs an `n`-core mix (§IV-A2): cores advance in rough cycle
    /// lockstep; each core's statistics freeze when it reaches the measured
    /// instruction quota, and it keeps running (replayed) to preserve
    /// contention until every core finishes.
    pub fn run_mix(&self, workloads: &[&dyn TraceFactory]) -> MixReport {
        self.try_run_mix(workloads).expect("out of physical memory")
    }

    /// Fallible variant of [`run_mix`](Self::run_mix); see
    /// [`try_run_workload`](Self::try_run_workload).
    pub fn try_run_mix(&self, workloads: &[&dyn TraceFactory]) -> Result<MixReport, OomError> {
        let n = workloads.len();
        assert!(n > 0, "a mix needs at least one workload");
        let (mut mem, mut os) = self.make_mem_and_os(n);
        let mut engines: Vec<CoreEngine> = (0..n).map(|i| self.make_engine(i)).collect();
        let mut traces: Vec<_> = workloads.iter().map(|w| w.build()).collect();

        // Warm-up all cores in rough lockstep.
        let mut warmed = vec![false; n];
        while warmed.iter().any(|w| !w) {
            let pending: Vec<bool> = warmed.iter().map(|w| !w).collect();
            let i = next_core(&engines, &pending);
            let instr = traces[i].next_instr();
            engines[i].step(&mut mem, &mut os, &instr)?;
            if engines[i].instructions() >= self.warmup {
                warmed[i] = true;
            }
        }
        if let Some(o) = os.as_mut() {
            o.reset_stats();
        }
        mem.reset_stats();
        for e in &mut engines {
            e.reset_stats(&mem);
        }

        // Measured phase.
        let mut frozen: Vec<Option<pagecross_types::CoreStats>> = vec![None; n];
        let mut frozen_os: Vec<pagecross_types::OsStats> = vec![Default::default(); n];
        while frozen.iter().any(Option::is_none) {
            let pending: Vec<bool> = frozen.iter().map(Option::is_none).collect();
            let i = next_core(&engines, &pending);
            let instr = traces[i].next_instr();
            engines[i].step(&mut mem, &mut os, &instr)?;
            if frozen[i].is_none() && engines[i].instructions() >= self.instructions {
                engines[i].finish();
                frozen[i] = Some(engines[i].stats);
                frozen_os[i] = engines[i].os_stats;
            }
        }

        Ok(MixReport {
            workloads: workloads.iter().map(|w| w.name().to_string()).collect(),
            cores: frozen
                .into_iter()
                .map(|s| s.expect("all cores frozen"))
                .collect(),
            os: frozen_os,
            llc: mem.llc.stats,
        })
    }
}

/// Picks the laggard core among those still eligible (`true` in `mask`);
/// falls back to any eligible core when all are done.
fn next_core(engines: &[CoreEngine], mask: &[bool]) -> usize {
    engines
        .iter()
        .enumerate()
        .filter(|(i, _)| mask[*i])
        .min_by_key(|(_, e)| e.cycle())
        .map(|(i, _)| i)
        .expect("at least one eligible core")
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        Self::new()
    }
}
