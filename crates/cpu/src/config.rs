//! Core-model configuration (Table IV core parameters).

/// Which boundary the page-cross policy filters at (§V-B6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BoundaryMode {
    /// Filter every prefetch that crosses a 4 KB boundary, regardless of
    /// the backing page size — DRIPPER's default, which §V-B6 shows wins.
    #[default]
    Fixed4K,
    /// Filter at the backing page's own boundary: 4 KB pages filter at
    /// 4 KB, 2 MB pages at 2 MB — the `DRIPPER(filter@2MB)` variant, which
    /// for `Permit PGC` reproduces the page-size-aware proposal (the paper’s reference \[89\]).
    PageSizeAware,
}

/// Core timing parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreConfig {
    /// Reorder-buffer entries (352).
    pub rob_size: usize,
    /// Issue width (6).
    pub issue_width: u32,
    /// Extra front-end bubble cycles after a branch misprediction.
    pub mispredict_penalty: u64,
    /// Retired instructions per filter epoch (adaptive thresholding).
    pub epoch_instrs: u64,
    /// Retired instructions between in-epoch spot checks and snapshot
    /// refreshes.
    pub spot_interval: u64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            rob_size: 352,
            issue_width: 6,
            mispredict_penalty: 12,
            epoch_instrs: 2_000,
            spot_interval: 250,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_core_defaults() {
        let c = CoreConfig::default();
        assert_eq!(c.rob_size, 352);
        assert_eq!(c.issue_width, 6);
        assert!(c.spot_interval < c.epoch_instrs);
    }

    #[test]
    fn boundary_default_is_4k() {
        assert_eq!(BoundaryMode::default(), BoundaryMode::Fixed4K);
    }
}
