//! Page-cross policies: the schemes compared in Fig. 9.
//!
//! A [`PgcPolicy`] is consulted for every prefetch candidate that crosses a
//! page boundary. Static policies (`Permit PGC`, `Discard PGC`,
//! `Discard PTW`) need no learning; filter-backed policies wrap a
//! [`PageCrossFilter`] and receive the full training signal from the CPU
//! model.

use crate::features::FeatureContext;
use crate::filter::PageCrossFilter;
use pagecross_types::{Decision, PolicyTelemetry, PrefetchCandidate, SystemSnapshot};

/// What to do with a page-cross candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyAction {
    /// Issue; `allow_walk` permits a speculative page walk on a TLB miss
    /// (the `Discard PTW` scenario issues with `allow_walk = false`).
    Issue {
        /// Allow a speculative page walk if the translation is absent.
        allow_walk: bool,
    },
    /// Drop the candidate.
    Discard,
}

/// A page-cross policy. All training hooks default to no-ops so static
/// policies only implement [`PgcPolicy::decide`].
pub trait PgcPolicy {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Decides the fate of a page-cross candidate.
    fn decide(
        &mut self,
        cand: &PrefetchCandidate,
        ctx: &FeatureContext,
        snap: &SystemSnapshot,
    ) -> PolicyAction;

    /// The issued prefetch fetched `phys_line` into L1D.
    fn on_issued(&mut self, _phys_line: u64) {}

    /// The issued prefetch was dropped (redundant / translation missing).
    fn on_issue_dropped(&mut self) {}

    /// An L1D demand miss occurred at this virtual line.
    fn on_l1d_demand_miss(&mut self, _virt_line: u64) {}

    /// First demand hit on a page-cross-prefetched (PCB) block.
    fn on_pcb_first_hit(&mut self, _phys_line: u64) {}

    /// A PCB block was evicted from L1D.
    fn on_pcb_eviction(&mut self, _phys_line: u64, _served_hits: bool) {}

    /// Periodic in-epoch check with a fresh snapshot.
    fn spot_check(&mut self, _snap: &SystemSnapshot) {}

    /// Epoch boundary with the epoch's summary snapshot.
    fn end_epoch(&mut self, _snap: &SystemSnapshot) {}

    /// Full policy internals for interval sampling. May be O(filter state)
    /// — callers invoke it once per sampling interval, not per decision.
    /// `None` for static policies with no internals.
    fn telemetry(&self) -> Option<PolicyTelemetry> {
        None
    }

    /// Cheap per-decision threshold readout for event tracing. `None` for
    /// policies with no threshold.
    fn current_threshold(&self) -> Option<i32> {
        None
    }
}

/// `Permit PGC`: always issue, walking when necessary.
#[derive(Clone, Copy, Debug, Default)]
pub struct PermitPgc;

impl PgcPolicy for PermitPgc {
    fn name(&self) -> &'static str {
        "permit-pgc"
    }

    fn decide(
        &mut self,
        _cand: &PrefetchCandidate,
        _ctx: &FeatureContext,
        _snap: &SystemSnapshot,
    ) -> PolicyAction {
        PolicyAction::Issue { allow_walk: true }
    }
}

/// `Discard PGC`: never issue (the behaviour of academic L1D prefetchers).
#[derive(Clone, Copy, Debug, Default)]
pub struct DiscardPgc;

impl PgcPolicy for DiscardPgc {
    fn name(&self) -> &'static str {
        "discard-pgc"
    }

    fn decide(
        &mut self,
        _cand: &PrefetchCandidate,
        _ctx: &FeatureContext,
        _snap: &SystemSnapshot,
    ) -> PolicyAction {
        PolicyAction::Discard
    }
}

/// `Discard PTW`: issue only when the translation is already TLB-resident;
/// never trigger a speculative walk.
#[derive(Clone, Copy, Debug, Default)]
pub struct DiscardPtw;

impl PgcPolicy for DiscardPtw {
    fn name(&self) -> &'static str {
        "discard-ptw"
    }

    fn decide(
        &mut self,
        _cand: &PrefetchCandidate,
        _ctx: &FeatureContext,
        _snap: &SystemSnapshot,
    ) -> PolicyAction {
        PolicyAction::Issue { allow_walk: false }
    }
}

/// A filter-backed policy (DRIPPER, PPF, single-feature filters, …).
#[derive(Clone, Debug)]
pub struct FilterPolicy {
    name: &'static str,
    filter: PageCrossFilter,
    /// Issue decisions pass the TLB-walk permission through.
    allow_walk: bool,
}

impl FilterPolicy {
    /// Wraps a filter under a report name.
    pub fn new(name: &'static str, filter: PageCrossFilter) -> Self {
        Self {
            name,
            filter,
            allow_walk: true,
        }
    }

    /// Access to the wrapped filter (stats, threshold).
    pub fn filter(&self) -> &PageCrossFilter {
        &self.filter
    }
}

impl PgcPolicy for FilterPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn decide(
        &mut self,
        cand: &PrefetchCandidate,
        ctx: &FeatureContext,
        snap: &SystemSnapshot,
    ) -> PolicyAction {
        match self.filter.decide(cand, ctx, snap) {
            Decision::Issue => PolicyAction::Issue {
                allow_walk: self.allow_walk,
            },
            Decision::Discard => PolicyAction::Discard,
        }
    }

    fn on_issued(&mut self, phys_line: u64) {
        self.filter.confirm_issue(phys_line);
    }

    fn on_issue_dropped(&mut self) {
        self.filter.cancel_issue();
    }

    fn on_l1d_demand_miss(&mut self, virt_line: u64) {
        self.filter.on_l1d_demand_miss(virt_line);
    }

    fn on_pcb_first_hit(&mut self, phys_line: u64) {
        self.filter.on_pcb_first_hit(phys_line);
    }

    fn on_pcb_eviction(&mut self, phys_line: u64, served_hits: bool) {
        self.filter.on_pcb_eviction(phys_line, served_hits);
    }

    fn spot_check(&mut self, snap: &SystemSnapshot) {
        self.filter.spot_check(snap);
    }

    fn end_epoch(&mut self, snap: &SystemSnapshot) {
        self.filter.end_epoch(snap);
    }

    fn telemetry(&self) -> Option<PolicyTelemetry> {
        Some(PolicyTelemetry {
            threshold: self.filter.threshold(),
            weight_saturation: self.filter.weight_saturation(),
            decisions: self.filter.stats.decisions,
            issued: self.filter.stats.issued,
            discarded: self.filter.stats.discarded,
        })
    }

    fn current_threshold(&self) -> Option<i32> {
        Some(self.filter.threshold())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagecross_types::VirtAddr;

    fn cand() -> PrefetchCandidate {
        PrefetchCandidate {
            pc: 1,
            trigger: VirtAddr::new(0xFC0),
            target: VirtAddr::new(0x1000),
            delta: 1,
            first_page_access: false,
        }
    }

    #[test]
    fn static_policies() {
        let c = cand();
        let ctx = FeatureContext::default();
        let s = SystemSnapshot::default();
        assert_eq!(
            PermitPgc.decide(&c, &ctx, &s),
            PolicyAction::Issue { allow_walk: true }
        );
        assert_eq!(DiscardPgc.decide(&c, &ctx, &s), PolicyAction::Discard);
        assert_eq!(
            DiscardPtw.decide(&c, &ctx, &s),
            PolicyAction::Issue { allow_walk: false }
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(PermitPgc.name(), "permit-pgc");
        assert_eq!(DiscardPgc.name(), "discard-pgc");
        assert_eq!(DiscardPtw.name(), "discard-ptw");
    }

    #[test]
    fn filter_policy_routes_training() {
        use crate::features::ProgramFeature;
        use crate::filter::FilterConfig;
        let mut cfg = FilterConfig::with_features(vec![ProgramFeature::Delta], vec![]);
        cfg.adaptive = false;
        cfg.static_threshold = 0;
        let mut p = FilterPolicy::new("test", PageCrossFilter::new(cfg));
        let c = cand();
        let ctx = FeatureContext {
            delta: 1,
            ..Default::default()
        };
        let s = SystemSnapshot::default();
        assert_eq!(p.decide(&c, &ctx, &s), PolicyAction::Discard);
        p.on_l1d_demand_miss(c.target.line().raw());
        assert_eq!(p.filter().stats.vub_trainings, 1);
        // Trained once: weight 1 > 0 -> issue.
        assert_eq!(
            p.decide(&c, &ctx, &s),
            PolicyAction::Issue { allow_walk: true }
        );
        p.on_issued(0xAA);
        p.on_pcb_eviction(0xAA, false);
        assert_eq!(p.filter().stats.pub_punishes, 1);
    }

    #[test]
    fn telemetry_exposes_filter_internals() {
        use crate::features::ProgramFeature;
        use crate::filter::FilterConfig;
        let mut cfg = FilterConfig::with_features(vec![ProgramFeature::Delta], vec![]);
        cfg.adaptive = false;
        cfg.static_threshold = 3;
        let mut p = FilterPolicy::new("test", PageCrossFilter::new(cfg));
        assert_eq!(p.current_threshold(), Some(3));
        let t0 = p.telemetry().expect("filter policy has telemetry");
        assert_eq!(t0.threshold, 3);
        assert_eq!(t0.decisions, 0);
        assert_eq!(t0.weight_saturation, 0.0, "untrained weights at zero");
        p.decide(
            &cand(),
            &FeatureContext::default(),
            &SystemSnapshot::default(),
        );
        assert_eq!(p.telemetry().unwrap().decisions, 1);
        // Static policies expose nothing.
        assert_eq!(PermitPgc.telemetry(), None);
        assert_eq!(PermitPgc.current_threshold(), None);
    }
}
