//! The Page-Cross Filter: MOKA's five hardware components assembled
//! (paper §III-B, Figs. 6 & 7).
//!
//! Prediction (Fig. 6): hash the selected program features into their
//! weight tables, gate the system-feature weights on the current snapshot,
//! sum everything into `w_final`, and compare against the activation
//! threshold `T_a`. Training (Fig. 7): the vUB catches false negatives on
//! L1D demand misses; the pUB rewards PCB blocks that serve demand hits and
//! punishes PCB blocks evicted without serving any.

use crate::buffers::{UpdateBuffer, UpdateEntry};
use crate::features::{FeatureContext, ProgramFeature};
use crate::perceptron::PerceptronBank;
use crate::system_features::{SystemFeature, SystemFeatureBank};
use crate::threshold::{AdaptiveThreshold, ThresholdConfig};
use pagecross_types::{Decision, PrefetchCandidate, SystemSnapshot};

/// Configuration of a Page-Cross Filter instance.
#[derive(Clone, Debug)]
pub struct FilterConfig {
    /// Selected program features (one weight table each).
    pub program_features: Vec<ProgramFeature>,
    /// Selected system features (one gated counter each).
    pub system_features: Vec<SystemFeature>,
    /// Weight-table entries. Table III prints "512" but its 0.625 KB line
    /// item and 1.44 KB total are only consistent with ~1000 5-bit entries,
    /// so the default is 1024.
    pub wt_entries: usize,
    /// Weight width in bits (5 in Table III).
    pub weight_bits: u32,
    /// vUB capacity (4 in Table III).
    pub vub_entries: usize,
    /// pUB capacity (128 in Table III).
    pub pub_entries: usize,
    /// Use the adaptive thresholding scheme; otherwise `static_threshold`.
    pub adaptive: bool,
    /// Activation threshold when `adaptive` is false.
    pub static_threshold: i32,
    /// Adaptive-scheme constants.
    pub threshold_cfg: ThresholdConfig,
}

impl FilterConfig {
    /// Table III defaults with the given feature selection and adaptive
    /// thresholding enabled.
    pub fn with_features(
        program_features: Vec<ProgramFeature>,
        system_features: Vec<SystemFeature>,
    ) -> Self {
        Self {
            program_features,
            system_features,
            wt_entries: 1024,
            weight_bits: 5,
            vub_entries: 4,
            pub_entries: 128,
            adaptive: true,
            static_threshold: 0,
            threshold_cfg: ThresholdConfig::default(),
        }
    }

    /// Storage cost in bits (Table III accounting): weight tables + system
    /// feature counters + vUB/pUB entries at 36 tag + 12 index bits each.
    pub fn storage_bits(&self) -> u64 {
        let wt =
            self.program_features.len() as u64 * self.wt_entries as u64 * self.weight_bits as u64;
        let sf = self.system_features.len() as u64 * self.weight_bits as u64;
        let ub_entry_bits = 36 + 12;
        let ub = (self.vub_entries as u64 + self.pub_entries as u64) * ub_entry_bits;
        wt + sf + ub
    }

    /// Storage cost in (decimal) kilobytes, matching Table III's units.
    pub fn storage_kb(&self) -> f64 {
        self.storage_bits() as f64 / 8.0 / 1000.0
    }
}

/// Aggregate filter statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Page-cross candidates evaluated.
    pub decisions: u64,
    /// Candidates the filter issued.
    pub issued: u64,
    /// Candidates the filter discarded.
    pub discarded: u64,
    /// False negatives caught by the vUB (positive training events).
    pub vub_trainings: u64,
    /// Positive trainings from PCB demand hits.
    pub pub_rewards: u64,
    /// Negative trainings from useless PCB evictions.
    pub pub_punishes: u64,
}

/// A MOKA Page-Cross Filter.
#[derive(Clone, Debug)]
pub struct PageCrossFilter {
    bank: PerceptronBank,
    sf: SystemFeatureBank,
    vub: UpdateBuffer,
    pbuf: UpdateBuffer,
    adaptive: Option<AdaptiveThreshold>,
    static_threshold: i32,
    /// Indices + mask of the most recent Issue decision, waiting for the
    /// physical address callback.
    pending_issue: Option<(Vec<u16>, u8)>,
    /// Statistics.
    pub stats: FilterStats,
    cfg: FilterConfig,
}

impl PageCrossFilter {
    /// Builds a filter from its configuration.
    pub fn new(cfg: FilterConfig) -> Self {
        Self {
            bank: PerceptronBank::new(&cfg.program_features, cfg.wt_entries, cfg.weight_bits),
            sf: SystemFeatureBank::new(&cfg.system_features, cfg.weight_bits),
            vub: UpdateBuffer::new(cfg.vub_entries.max(1)),
            pbuf: UpdateBuffer::new(cfg.pub_entries.max(1)),
            adaptive: cfg
                .adaptive
                .then(|| AdaptiveThreshold::new(cfg.threshold_cfg)),
            static_threshold: cfg.static_threshold,
            pending_issue: None,
            stats: FilterStats::default(),
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &FilterConfig {
        &self.cfg
    }

    /// The activation threshold currently in force.
    pub fn threshold(&self) -> i32 {
        self.adaptive
            .as_ref()
            .map_or(self.static_threshold, |a| a.threshold())
    }

    /// Fraction of perceptron weights at a saturating bound (telemetry
    /// signal; 0.0 when no program-feature tables are configured).
    pub fn weight_saturation(&self) -> f64 {
        self.bank.saturation_fraction()
    }

    /// The cumulative weight the filter would compute for this context.
    pub fn weight(&self, ctx: &FeatureContext, snap: &SystemSnapshot) -> i32 {
        self.bank.predict(ctx) + self.sf.predict(self.sf.active_mask(snap))
    }

    /// Decides the fate of a page-cross candidate (Fig. 6). A `Discard`
    /// decision records the candidate in the vUB; an `Issue` decision arms
    /// [`PageCrossFilter::confirm_issue`], which must be called with the
    /// physical line (or [`PageCrossFilter::cancel_issue`] if the prefetch
    /// was dropped as redundant).
    pub fn decide(
        &mut self,
        cand: &PrefetchCandidate,
        ctx: &FeatureContext,
        snap: &SystemSnapshot,
    ) -> Decision {
        self.stats.decisions += 1;
        let indices = self.bank.indices(ctx);
        let mask = self.sf.active_mask(snap);

        let disabled = self.adaptive.as_ref().is_some_and(|a| a.is_disabled());
        let w_final = self.bank.predict_at(&indices) + self.sf.predict(mask);
        let issue = !disabled && w_final > self.threshold();

        if std::env::var_os("MOKA_DEBUG_DECIDE").is_some()
            && self.stats.decisions.is_multiple_of(500)
        {
            eprintln!(
                "decision={} delta={} w={} t_a={} issue={}",
                self.stats.decisions,
                cand.delta,
                w_final,
                self.threshold(),
                issue
            );
        }
        if issue {
            self.stats.issued += 1;
            self.pending_issue = Some((indices, mask));
            Decision::Issue
        } else {
            self.stats.discarded += 1;
            self.vub.insert(UpdateEntry {
                line: cand.target.line().raw(),
                indices,
                sf_mask: mask,
            });
            Decision::Discard
        }
    }

    /// Confirms the last `Issue` decision with the fetched physical line,
    /// recording it in the pUB.
    pub fn confirm_issue(&mut self, phys_line: u64) {
        if let Some((indices, sf_mask)) = self.pending_issue.take() {
            self.pbuf.insert(UpdateEntry {
                line: phys_line,
                indices,
                sf_mask,
            });
        }
    }

    /// Cancels the last `Issue` decision (target was redundant).
    pub fn cancel_issue(&mut self) {
        self.pending_issue = None;
    }

    /// L1D demand miss (virtual line): a vUB hit is a false negative —
    /// positive training (Fig. 7, steps ➀–➂).
    pub fn on_l1d_demand_miss(&mut self, virt_line: u64) {
        if let Some(e) = self.vub.take(virt_line) {
            self.stats.vub_trainings += 1;
            self.bank.reward(&e.indices);
            self.sf.reward(e.sf_mask);
        }
    }

    /// First demand hit on a PCB block (physical line): positive training
    /// via the pUB (Fig. 7, steps ➃–➆).
    pub fn on_pcb_first_hit(&mut self, phys_line: u64) {
        if let Some(e) = self.pbuf.take(phys_line) {
            self.stats.pub_rewards += 1;
            self.bank.reward(&e.indices);
            self.sf.reward(e.sf_mask);
        }
    }

    /// Eviction of a PCB block (Fig. 7, steps ➇–⑪): blocks that never
    /// served a hit punish their pUB entry.
    pub fn on_pcb_eviction(&mut self, phys_line: u64, served_hits: bool) {
        if served_hits {
            // Useful block; any remaining pUB entry is stale.
            self.pbuf.take(phys_line);
            return;
        }
        if let Some(e) = self.pbuf.take(phys_line) {
            self.stats.pub_punishes += 1;
            self.bank.punish(&e.indices);
            self.sf.punish(e.sf_mask);
        }
    }

    /// In-epoch spot check of the adaptive scheme.
    pub fn spot_check(&mut self, snap: &SystemSnapshot) {
        if let Some(a) = &mut self.adaptive {
            a.spot_check(snap);
        }
    }

    /// End-of-epoch update: advances the adaptive scheme and decays the
    /// system-feature weights so stale phase evidence fades.
    pub fn end_epoch(&mut self, snap: &SystemSnapshot) {
        if let Some(a) = &mut self.adaptive {
            a.end_epoch(snap);
        }
        self.sf.decay();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagecross_types::VirtAddr;

    fn cand(target: u64) -> PrefetchCandidate {
        PrefetchCandidate {
            pc: 0x400,
            trigger: VirtAddr::new(0x1FC0),
            target: VirtAddr::new(target),
            delta: 1,
            first_page_access: false,
        }
    }

    fn ctx() -> FeatureContext {
        FeatureContext {
            pc: 0x400,
            va: 0x1FC0,
            target_va: 0x2000,
            delta: 1,
            ..Default::default()
        }
    }

    fn filter(static_thr: i32) -> PageCrossFilter {
        let mut cfg = FilterConfig::with_features(
            vec![ProgramFeature::Delta],
            vec![SystemFeature::StlbMpki, SystemFeature::StlbMissRate],
        );
        cfg.adaptive = false;
        cfg.static_threshold = static_thr;
        PageCrossFilter::new(cfg)
    }

    #[test]
    fn fresh_filter_discards_above_zero_threshold() {
        let mut f = filter(0);
        let d = f.decide(&cand(0x2000), &ctx(), &SystemSnapshot::default());
        assert_eq!(d, Decision::Discard, "weight 0 is not > threshold 0");
        assert_eq!(f.stats.discarded, 1);
    }

    #[test]
    fn vub_false_negative_trains_toward_issue() {
        let mut f = filter(0);
        let snap = SystemSnapshot::default();
        // Discard, then the demand miss arrives: false negative. After one
        // round of vUB training the weights (program + gated system
        // features) exceed the threshold.
        let d = f.decide(&cand(0x2000), &ctx(), &snap);
        assert_eq!(d, Decision::Discard, "fresh filter starts conservative");
        f.on_l1d_demand_miss(VirtAddr::new(0x2000).line().raw());
        assert_eq!(f.stats.vub_trainings, 1);
        let d = f.decide(&cand(0x2000), &ctx(), &snap);
        assert_eq!(d, Decision::Issue);
    }

    #[test]
    fn pub_reward_and_punish_cycle() {
        let mut f = filter(-10); // permissive: always issues
        let snap = SystemSnapshot::default();
        let d = f.decide(&cand(0x2000), &ctx(), &snap);
        assert_eq!(d, Decision::Issue);
        f.confirm_issue(0x999);
        f.on_pcb_first_hit(0x999);
        assert_eq!(f.stats.pub_rewards, 1);

        let d = f.decide(&cand(0x2000), &ctx(), &snap);
        assert_eq!(d, Decision::Issue);
        f.confirm_issue(0x999);
        f.on_pcb_eviction(0x999, false);
        assert_eq!(f.stats.pub_punishes, 1);
    }

    #[test]
    fn useful_eviction_does_not_punish() {
        let mut f = filter(-10);
        f.decide(&cand(0x2000), &ctx(), &SystemSnapshot::default());
        f.confirm_issue(0x42);
        f.on_pcb_eviction(0x42, true);
        assert_eq!(f.stats.pub_punishes, 0);
    }

    #[test]
    fn cancel_issue_leaves_pub_empty() {
        let mut f = filter(-10);
        f.decide(&cand(0x2000), &ctx(), &SystemSnapshot::default());
        f.cancel_issue();
        f.on_pcb_eviction(0x0, false);
        assert_eq!(f.stats.pub_punishes, 0, "nothing was recorded");
    }

    #[test]
    fn repeated_useless_issues_learn_to_discard() {
        let mut f = filter(0);
        let snap = SystemSnapshot::default();
        // Bootstrap to issuing via vUB training.
        for _ in 0..4 {
            f.decide(&cand(0x2000), &ctx(), &snap);
            f.on_l1d_demand_miss(VirtAddr::new(0x2000).line().raw());
        }
        assert_eq!(f.decide(&cand(0x2000), &ctx(), &snap), Decision::Issue);
        f.confirm_issue(0x1);
        // Now the prefetches turn out useless.
        let mut flips = 0;
        for i in 0..20u64 {
            f.on_pcb_eviction(i, false);
            let d = f.decide(&cand(0x2000), &ctx(), &snap);
            if d == Decision::Discard {
                flips += 1;
                break;
            }
            f.confirm_issue(i + 1);
        }
        assert!(
            flips > 0,
            "negative training must eventually flip the decision"
        );
    }

    #[test]
    fn system_features_contribute_when_gated() {
        let mut cfg = FilterConfig::with_features(vec![], vec![SystemFeature::StlbMissRate]);
        cfg.adaptive = false;
        cfg.static_threshold = 0;
        let mut f = PageCrossFilter::new(cfg);
        // High sTLB miss rate activates the feature.
        let hot = SystemSnapshot {
            stlb_miss_rate: 0.5,
            ..Default::default()
        };
        // Train it positive once via the vUB.
        assert_eq!(f.decide(&cand(0x2000), &ctx(), &hot), Decision::Discard);
        f.on_l1d_demand_miss(VirtAddr::new(0x2000).line().raw());
        assert_eq!(f.decide(&cand(0x2000), &ctx(), &hot), Decision::Issue);
        // Same candidate under a cold snapshot: feature gated off -> weight 0.
        let cold = SystemSnapshot::default();
        assert_eq!(f.decide(&cand(0x2000), &ctx(), &cold), Decision::Discard);
    }

    #[test]
    fn adaptive_disable_discards_everything() {
        let cfg = FilterConfig::with_features(vec![ProgramFeature::Delta], vec![]);
        let mut f = PageCrossFilter::new(cfg);
        let extreme = SystemSnapshot {
            llc_miss_rate: 0.99,
            llc_mpki: 80.0,
            pgc_useful: 1,
            pgc_useless: 20,
            ..Default::default()
        };
        f.spot_check(&extreme);
        // Even a heavily-trained candidate is discarded while disabled.
        let snap = SystemSnapshot::default();
        for _ in 0..10 {
            f.decide(&cand(0x2000), &ctx(), &snap);
            f.on_l1d_demand_miss(VirtAddr::new(0x2000).line().raw());
        }
        assert_eq!(f.decide(&cand(0x2000), &ctx(), &snap), Decision::Discard);
        // Epoch boundary lifts the disable; training done via the vUB while
        // disabled lets it resume issuing ("activated again thanks to vUB").
        f.end_epoch(&snap);
        assert_eq!(f.decide(&cand(0x2000), &ctx(), &snap), Decision::Issue);
    }

    #[test]
    fn table_iii_storage_budget() {
        let cfg = FilterConfig::with_features(
            vec![ProgramFeature::Delta],
            vec![SystemFeature::StlbMpki, SystemFeature::StlbMissRate],
        );
        let kb = cfg.storage_kb();
        assert!(
            (kb - 1.44).abs() < 0.05,
            "DRIPPER storage should be ~1.44KB, got {kb:.3}"
        );
    }
}
