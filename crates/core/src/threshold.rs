//! The adaptive thresholding scheme (paper §III-C3, Fig. 8).
//!
//! The filter compares the cumulative weight against an activation
//! threshold `T_a`. A static `T_a` is suboptimal across workload types and
//! phases, so MOKA adjusts it with an epoch-based scheme:
//!
//! **In-epoch spot rules** (checked continuously):
//! * very high ROB pressure with many in-flight L1D misses → `T_a = t_h`;
//! * page-cross accuracy below `T₁` → `T_a = t_h`;
//! * high L1I MPKI → `T_a = max(T_a, t_m)` (avoid L2 contention with
//!   demand instruction traffic);
//! * very high LLC pressure → page-cross prefetching *disabled* for the
//!   rest of the epoch (the vUB keeps learning, so it can resume later).
//!
//! **End-of-epoch rules**:
//! * accuracy < `T₁` → `T_a = t_h`; accuracy < `T₂` → `T_a = max(T_a, t_m)`;
//! * accuracy increased (decreased) vs the previous epoch → `T_a += 1`
//!   (`T_a -= 1`);
//! * IPC dropped vs the previous epoch → `T_a = max(T_a, t_m)`.

use pagecross_types::SystemSnapshot;

/// Tunable constants of the scheme.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThresholdConfig {
    /// Low (default/aggressive) threshold.
    pub t_low: i32,
    /// Medium threshold `t_m`.
    pub t_medium: i32,
    /// High threshold `t_h` (only very confident prefetches pass).
    pub t_high: i32,
    /// Clamp bounds for incremental adjustment.
    pub t_min: i32,
    /// Upper clamp bound.
    pub t_max: i32,
    /// Accuracy below which the high threshold is forced (`T₁`).
    pub acc_low: f64,
    /// Accuracy below which the medium threshold is forced (`T₂`).
    pub acc_medium: f64,
    /// L1I MPKI above which the medium threshold is forced (`T_L1i`).
    pub l1i_mpki_high: f64,
    /// ROB occupancy fraction considered "high pressure".
    pub rob_pressure: f64,
    /// In-flight L1D misses considered "many".
    pub inflight_high: u32,
    /// LLC miss rate considered "very high pressure" (disable rule).
    pub llc_missrate_extreme: f64,
    /// LLC MPKI floor for the disable rule. Set well above what a pure
    /// streaming workload can generate (~16 MPKI at 4 loads/line), so the
    /// rule only fires on genuine thrashing phases — streams are where
    /// page-cross prefetching helps most and must not be disabled.
    pub llc_mpki_extreme: f64,
    /// Relative IPC drop that triggers the IPC rule.
    pub ipc_drop: f64,
}

impl Default for ThresholdConfig {
    fn default() -> Self {
        Self {
            t_low: -1,
            t_medium: 6,
            t_high: 14,
            t_min: -4,
            t_max: 16,
            acc_low: 0.25,
            acc_medium: 0.50,
            l1i_mpki_high: 5.0,
            rob_pressure: 0.90,
            inflight_high: 12,
            llc_missrate_extreme: 0.90,
            llc_mpki_extreme: 50.0,
            ipc_drop: 0.80,
        }
    }
}

/// The adaptive threshold controller.
#[derive(Clone, Debug)]
pub struct AdaptiveThreshold {
    cfg: ThresholdConfig,
    t_a: i32,
    disabled: bool,
    prev_accuracy: Option<f64>,
    prev_ipc: Option<f64>,
    /// Useful page-cross prefetches accumulated since the last accuracy
    /// judgement (low-volume epochs pool their evidence).
    acc_useful: u64,
    /// Useless page-cross prefetches accumulated since the last judgement.
    acc_useless: u64,
    /// Epochs elapsed.
    pub epochs: u64,
}

impl AdaptiveThreshold {
    /// Creates a controller starting at `t_low`.
    pub fn new(cfg: ThresholdConfig) -> Self {
        Self {
            t_a: cfg.t_low,
            cfg,
            disabled: false,
            prev_accuracy: None,
            prev_ipc: None,
            acc_useful: 0,
            acc_useless: 0,
            epochs: 0,
        }
    }

    /// Current activation threshold.
    pub fn threshold(&self) -> i32 {
        self.t_a
    }

    /// True while the disable rule is in force (all page-cross prefetches
    /// discarded; vUB training continues).
    pub fn is_disabled(&self) -> bool {
        self.disabled
    }

    /// The configuration in force.
    pub fn config(&self) -> &ThresholdConfig {
        &self.cfg
    }

    fn clamp(&mut self) {
        self.t_a = self.t_a.clamp(self.cfg.t_min, self.cfg.t_max);
    }

    /// In-epoch spot check against extreme behaviours (step ➁ in Fig. 8).
    pub fn spot_check(&mut self, snap: &SystemSnapshot) {
        // Very high LLC pressure: disable until the epoch ends. Gated on
        // page-cross prefetching being active *and* inaccurate — accurate
        // page-cross prefetches relieve LLC pressure rather than cause it,
        // and blocking them under pressure creates a self-reinforcing
        // lockout (blocked prefetches -> more demand misses -> still
        // "extreme" pressure).
        if snap.llc_miss_rate > self.cfg.llc_missrate_extreme
            && snap.llc_mpki > self.cfg.llc_mpki_extreme
            && snap.pgc_useful + snap.pgc_useless >= 8
            && snap.pgc_accuracy() < self.cfg.acc_medium
        {
            self.disabled = true;
            return;
        }
        // High ROB pressure + many in-flight misses: high threshold.
        // Gated on page-cross prefetches actually being in flight this
        // epoch — pressure that exists *without* page-cross traffic cannot
        // be cured by discarding it, and raising the threshold then only
        // creates a self-reinforcing lockout.
        if snap.rob_occupancy > self.cfg.rob_pressure
            && snap.inflight_l1d_misses > self.cfg.inflight_high
            && snap.pgc_useful + snap.pgc_useless >= 8
        {
            self.t_a = self.t_a.max(self.cfg.t_high);
        }
        // Accuracy collapsed: high threshold.
        if snap.pgc_useful + snap.pgc_useless >= 32 && snap.pgc_accuracy() < self.cfg.acc_low {
            self.t_a = self.t_a.max(self.cfg.t_high);
        }
        // High L1I pressure: at least medium threshold.
        if snap.l1i_mpki > self.cfg.l1i_mpki_high {
            self.t_a = self.t_a.max(self.cfg.t_medium);
        }
        self.clamp();
    }

    /// End-of-epoch update (steps ➂–➄ in Fig. 8). `snap` summarises the
    /// finished epoch.
    ///
    /// Accuracy evidence from low-volume epochs is pooled until at least 8
    /// page-cross outcomes have resolved; judging on fewer would let
    /// trickles of one-off junk prefetches (a fresh weight-table bucket per
    /// novel delta) leak forever below the rules' radar.
    pub fn end_epoch(&mut self, snap: &SystemSnapshot) {
        self.epochs += 1;
        self.disabled = false;

        self.acc_useful += snap.pgc_useful;
        self.acc_useless += snap.pgc_useless;
        let resolved = self.acc_useful + self.acc_useless;

        if resolved >= 8 {
            let acc = self.acc_useful as f64 / resolved as f64;
            if acc < self.cfg.acc_low {
                self.t_a = self.t_a.max(self.cfg.t_high);
            } else if acc < self.cfg.acc_medium {
                self.t_a = self.t_a.max(self.cfg.t_medium);
            } else if self.t_a > self.cfg.t_low {
                // Accuracy is fine: ease one step back toward t_low. The
                // vUB can only recover prefetches whose covering demand
                // arrives within a few accesses of the discard, so without
                // relaxation large-offset prefetchers (BOP) deadlock at a
                // raised threshold with zero issues and zero training.
                self.t_a -= 1;
            }
            if let Some(prev) = self.prev_accuracy {
                // Deviation from the paper's literal text (which raises
                // `T_a` when accuracy *rises*): rising accuracy lowers the
                // threshold (be more aggressive while predictions are
                // good), falling accuracy raises it. The literal reading
                // ratchets the filter into discarding half of the useful
                // page-cross prefetches on perfectly-predictable streams,
                // contradicting the paper's own Fig. 11 (DRIPPER coverage
                // ≈ Permit coverage). See DESIGN.md.
                if acc > prev + 1e-9 {
                    self.t_a -= 1;
                } else if acc < prev - 1e-9 {
                    self.t_a += 1;
                }
            }
            self.prev_accuracy = Some(acc);
            self.acc_useful = 0;
            self.acc_useless = 0;
        } else if resolved == 0
            && self.prev_accuracy.is_none_or(|a| a >= self.cfg.acc_medium)
            && self.t_a > self.cfg.t_low
        {
            // Nothing in flight and no history of inaccuracy: ease back so
            // a raised threshold cannot become a permanent lockout.
            self.t_a -= 1;
        }

        let issued = snap.pgc_useful + snap.pgc_useless;
        if let Some(prev_ipc) = self.prev_ipc {
            // Only blame page-cross prefetching for an IPC drop when it was
            // actually active during the epoch.
            if snap.ipc < prev_ipc * self.cfg.ipc_drop && issued >= 8 {
                self.t_a = self.t_a.max(self.cfg.t_medium);
            }
        }
        self.prev_ipc = Some(snap.ipc);
        self.clamp();
        if std::env::var_os("MOKA_DEBUG_THRESHOLD").is_some() {
            eprintln!(
                "epoch={} t_a={} pending_u/w={}/{} issued={} ipc={:.3}",
                self.epochs, self.t_a, self.acc_useful, self.acc_useless, issued, snap.ipc
            );
        }
    }
}

impl Default for AdaptiveThreshold {
    fn default() -> Self {
        Self::new(ThresholdConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> SystemSnapshot {
        SystemSnapshot {
            ipc: 1.0,
            ..Default::default()
        }
    }

    #[test]
    fn starts_at_low_threshold() {
        let t = AdaptiveThreshold::default();
        assert_eq!(t.threshold(), -1);
        assert!(!t.is_disabled());
    }

    #[test]
    fn rob_pressure_forces_high() {
        let mut t = AdaptiveThreshold::default();
        // Without page-cross traffic the rule must not fire.
        let quiet = SystemSnapshot {
            rob_occupancy: 0.95,
            inflight_l1d_misses: 16,
            ..snap()
        };
        t.spot_check(&quiet);
        assert_eq!(t.threshold(), -1);
        let s = SystemSnapshot {
            rob_occupancy: 0.95,
            inflight_l1d_misses: 16,
            pgc_useful: 5,
            pgc_useless: 5,
            ..snap()
        };
        t.spot_check(&s);
        assert_eq!(t.threshold(), 14);
    }

    #[test]
    fn low_accuracy_spot_rule_needs_volume() {
        let mut t = AdaptiveThreshold::default();
        // Only 4 issued: not enough evidence.
        let s = SystemSnapshot {
            pgc_useful: 0,
            pgc_useless: 4,
            ..snap()
        };
        t.spot_check(&s);
        assert_eq!(t.threshold(), -1);
        // 40 issued, 10% accurate: force high.
        let s = SystemSnapshot {
            pgc_useful: 4,
            pgc_useless: 36,
            ..snap()
        };
        t.spot_check(&s);
        assert_eq!(t.threshold(), 14);
    }

    #[test]
    fn l1i_pressure_forces_medium() {
        let mut t = AdaptiveThreshold::default();
        let s = SystemSnapshot {
            l1i_mpki: 9.0,
            ..snap()
        };
        t.spot_check(&s);
        assert_eq!(t.threshold(), 6);
    }

    #[test]
    fn llc_extreme_disables_until_epoch_end() {
        let mut t = AdaptiveThreshold::default();
        // Pressure alone (no inaccurate page-cross traffic) must not
        // disable.
        let pressure_only = SystemSnapshot {
            llc_miss_rate: 0.95,
            llc_mpki: 60.0,
            ..snap()
        };
        t.spot_check(&pressure_only);
        assert!(!t.is_disabled());
        let s = SystemSnapshot {
            llc_miss_rate: 0.95,
            llc_mpki: 60.0,
            pgc_useful: 2,
            pgc_useless: 20,
            ..snap()
        };
        t.spot_check(&s);
        assert!(t.is_disabled());
        t.end_epoch(&snap());
        assert!(!t.is_disabled(), "epoch boundary re-enables");
    }

    #[test]
    fn accuracy_bands_at_epoch_end() {
        let mut t = AdaptiveThreshold::default();
        let s = SystemSnapshot {
            pgc_useful: 4,
            pgc_useless: 6,
            ..snap()
        }; // 40%
        t.end_epoch(&s);
        assert_eq!(t.threshold(), 6, "accuracy in [T1, T2) forces medium");
        let mut t2 = AdaptiveThreshold::default();
        let s2 = SystemSnapshot {
            pgc_useful: 1,
            pgc_useless: 9,
            ..snap()
        }; // 10%
        t2.end_epoch(&s2);
        assert_eq!(t2.threshold(), 14, "accuracy below T1 forces high");
    }

    #[test]
    fn quiet_epochs_relax_threshold_back_to_low() {
        let mut t = AdaptiveThreshold::default();
        // Force high via an inaccurate judgement, then prove quiet epochs
        // do NOT relax while the last judged accuracy was bad…
        t.end_epoch(&SystemSnapshot {
            pgc_useful: 1,
            pgc_useless: 9,
            ..snap()
        });
        assert_eq!(t.threshold(), 14);
        for _ in 0..5 {
            t.end_epoch(&snap());
        }
        assert_eq!(
            t.threshold(),
            14,
            "bad history blocks the silence relaxation"
        );
        // …but once a good judgement lands, quiet epochs ease back down.
        t.end_epoch(&SystemSnapshot {
            pgc_useful: 10,
            pgc_useless: 0,
            ..snap()
        });
        for _ in 0..30 {
            t.end_epoch(&snap());
        }
        assert_eq!(t.threshold(), t.config().t_low, "recovered to t_low");
    }

    #[test]
    fn accuracy_delta_moves_threshold_by_one() {
        let mut t = AdaptiveThreshold::default();
        t.end_epoch(&SystemSnapshot {
            pgc_useful: 6,
            pgc_useless: 4,
            ..snap()
        }); // 60%
        let base = t.threshold();
        // Rising accuracy -> more aggressive (threshold down).
        t.end_epoch(&SystemSnapshot {
            pgc_useful: 8,
            pgc_useless: 2,
            ..snap()
        }); // 80%
        assert_eq!(t.threshold(), base - 1);
        // Falling accuracy -> more conservative (threshold back up).
        t.end_epoch(&SystemSnapshot {
            pgc_useful: 6,
            pgc_useless: 4,
            ..snap()
        }); // 60%
        assert_eq!(t.threshold(), base);
    }

    #[test]
    fn ipc_drop_forces_medium() {
        let mut t = AdaptiveThreshold::default();
        t.end_epoch(&SystemSnapshot {
            ipc: 2.0,
            pgc_useful: 10,
            ..Default::default()
        });
        assert!(t.threshold() <= -1, "good epoch stays aggressive");
        let before = t.threshold();
        t.end_epoch(&SystemSnapshot {
            ipc: 0.5,
            pgc_useful: 10,
            ..Default::default()
        });
        assert_eq!(
            t.threshold(),
            6,
            "IPC collapse with active PGC forces t_medium"
        );
        assert!(t.threshold() > before);
    }

    #[test]
    fn threshold_clamped() {
        let mut t = AdaptiveThreshold::default();
        // Drive accuracy up for many epochs; threshold must not exceed t_max.
        for i in 0..50u64 {
            let s = SystemSnapshot {
                pgc_useful: 50 + i,
                pgc_useless: 1,
                ipc: 1.0,
                ..Default::default()
            };
            t.end_epoch(&s);
        }
        assert!(t.threshold() <= 16);
    }
}
