//! MOKA's bouquet of program features (paper §III-D1, Table I).
//!
//! A *program feature* is a deterministic function of the triggering load's
//! context — PC, virtual address, the delta the prefetcher applied, short
//! PC/VA/delta histories, and the first-page-access flag — that indexes a
//! perceptron weight table. The framework ships **55** features (the paper:
//! "In total, MOKA contains 55 program features crafted using our expertise
//! as well as prior work in domain"); Table I lists the best-performing
//! subset, all of which are implemented here verbatim, plus the extended
//! shift/xor combinations that fill out the bouquet.
//!
//! Features are prefetcher-*independent*: nothing here peeks at prefetcher
//! metadata, which is what lets one filter design serve Berti, IPCP and BOP.

/// The context a feature is evaluated against.
///
/// Histories are most-recent-first: index 0 is the current access `i`,
/// index 1 is `i-1`, index 2 is `i-2`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FeatureContext {
    /// PC of the triggering load.
    pub pc: u64,
    /// Virtual address of the triggering load.
    pub va: u64,
    /// Virtual address of the prefetch target.
    pub target_va: u64,
    /// Signed line delta the prefetcher applied.
    pub delta: i64,
    /// The triggering access was the first touch to its 4 KB page.
    pub first_page_access: bool,
    /// Last three access VAs (current first).
    pub va_hist: [u64; 3],
    /// Last three access PCs (current first).
    pub pc_hist: [u64; 3],
    /// Last three observed line deltas (current first).
    pub delta_hist: [i64; 3],
}

/// One program feature from the bouquet.
///
/// Shift-parameterised variants take the shift amount in bits; the bouquet
/// instantiates them at 6 (line), 12 (4 KB page) and 21 (2 MB page).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProgramFeature {
    /// Constant bias input.
    Bias,
    /// Raw virtual address (line granularity).
    Va,
    /// Virtual address shifted right by `n`.
    VaShift(u8),
    /// Cache-line offset within the 4 KB page.
    CacheLineOffset,
    /// Program counter.
    Pc,
    /// PC shifted right by `n`.
    PcShift(u8),
    /// PC + cache-line offset.
    PcPlusOffset,
    /// PC ⊕ cache-line offset.
    PcXorOffset,
    /// The prefetcher's delta.
    Delta,
    /// Delta + first-page-access flag.
    DeltaPlusFirstAccess,
    /// VAᵢ₋₂ ⊕ VAᵢ₋₁ ⊕ VAᵢ.
    VaHistXor,
    /// (VAᵢ₋₂ ≫ 12) ⊕ (VAᵢ₋₁ ≫ 12) ⊕ (VAᵢ ≫ 12).
    VaPageHistXor,
    /// PCᵢ₋₂ ⊕ PCᵢ₋₁ ⊕ PCᵢ.
    PcHistXor,
    /// PC ⊕ VA.
    PcXorVa,
    /// PC ⊕ (VA ≫ n).
    PcXorVaShift(u8),
    /// VA ⊕ Delta.
    VaXorDelta,
    /// PC ⊕ Delta — DRIPPER's program feature for BOP and IPCP (Table II).
    PcXorDelta,
    /// (VA ≫ n) ⊕ Delta.
    VaShiftXorDelta(u8),
    /// PC ⊕ FirstPageAccess.
    PcXorFirstAccess,
    /// VA ⊕ FirstPageAccess.
    VaXorFirstAccess,
    /// (VA ≫ n) ⊕ FirstPageAccess.
    VaShiftXorFirstAccess(u8),
    /// CacheLineOffset + FirstPageAccess.
    OffsetPlusFirstAccess,
    /// PC + Delta.
    PcPlusDelta,
    /// VA + Delta (the target line, expressed additively).
    VaPlusDelta,
    /// PC ⊕ VA ⊕ Delta.
    PcXorVaXorDelta,
    /// Δᵢ₋₂ ⊕ Δᵢ₋₁ ⊕ Δᵢ.
    DeltaHistXor,
    /// PC ⊕ (Δᵢ₋₁ ⊕ Δᵢ).
    PcXorDeltaHist,
    /// Signed page distance the prefetch travels (target page − trigger page).
    PageDistance,
    /// PC ⊕ page distance.
    PcXorPageDistance,
    /// Target VA shifted right by `n`.
    TargetVaShift(u8),
    /// Cache-line offset of the target within its page.
    TargetOffset,
    /// PC ⊕ target offset.
    PcXorTargetOffset,
    /// Offset ⊕ Delta.
    OffsetXorDelta,
    /// Sign of the delta (direction feature).
    DeltaSign,
    /// |Delta| bucketed by powers of two.
    DeltaMagnitude,
    /// PC rotated ⊕ VA (decorrelated variant of PC ⊕ VA).
    PcRotXorVa,
    /// (VAᵢ₋₁ ⊕ VAᵢ) ⊕ Delta.
    VaHistXorDelta,
}

const SHIFTS: [u8; 3] = [6, 12, 21];

impl ProgramFeature {
    /// The complete 55-feature bouquet.
    pub fn bouquet() -> Vec<ProgramFeature> {
        use ProgramFeature::*;
        let mut v = vec![
            Bias,
            Va,
            CacheLineOffset,
            Pc,
            PcPlusOffset,
            PcXorOffset,
            Delta,
            DeltaPlusFirstAccess,
            VaHistXor,
            VaPageHistXor,
            PcHistXor,
            PcXorVa,
            VaXorDelta,
            PcXorDelta,
            PcXorFirstAccess,
            VaXorFirstAccess,
            OffsetPlusFirstAccess,
            PcPlusDelta,
            VaPlusDelta,
            PcXorVaXorDelta,
            DeltaHistXor,
            PcXorDeltaHist,
            PageDistance,
            PcXorPageDistance,
            TargetOffset,
            PcXorTargetOffset,
            OffsetXorDelta,
            DeltaSign,
            DeltaMagnitude,
            PcRotXorVa,
            VaHistXorDelta,
        ];
        for s in SHIFTS {
            v.push(VaShift(s));
            v.push(PcShift(s));
            v.push(PcXorVaShift(s));
            v.push(VaShiftXorDelta(s));
            v.push(VaShiftXorFirstAccess(s));
            v.push(TargetVaShift(s));
        }
        // 31 + 6*3 = 49; six more high-shift page-granularity variants.
        v.push(VaShift(30));
        v.push(PcXorVaShift(30));
        v.push(VaShiftXorDelta(30));
        v.push(TargetVaShift(30));
        v.push(PcShift(30));
        v.push(VaShiftXorFirstAccess(30));
        v
    }

    /// Evaluates the feature to a raw 64-bit value (pre-hash).
    pub fn value(self, ctx: &FeatureContext) -> u64 {
        use ProgramFeature::*;
        let line = ctx.va >> 6;
        let offset = (ctx.va >> 6) & 0x3F;
        let delta = ctx.delta as u64;
        let fpa = ctx.first_page_access as u64;
        match self {
            Bias => 0,
            Va => line,
            VaShift(n) => ctx.va >> n,
            CacheLineOffset => offset,
            Pc => ctx.pc,
            PcShift(n) => ctx.pc >> n,
            PcPlusOffset => ctx.pc.wrapping_add(offset),
            PcXorOffset => ctx.pc ^ offset,
            Delta => delta,
            DeltaPlusFirstAccess => delta.wrapping_add(fpa),
            VaHistXor => (ctx.va_hist[2] >> 6) ^ (ctx.va_hist[1] >> 6) ^ line,
            VaPageHistXor => (ctx.va_hist[2] >> 12) ^ (ctx.va_hist[1] >> 12) ^ (ctx.va >> 12),
            PcHistXor => ctx.pc_hist[2] ^ ctx.pc_hist[1] ^ ctx.pc,
            PcXorVa => ctx.pc ^ line,
            PcXorVaShift(n) => ctx.pc ^ (ctx.va >> n),
            VaXorDelta => line ^ delta,
            PcXorDelta => ctx.pc ^ delta,
            VaShiftXorDelta(n) => (ctx.va >> n) ^ delta,
            PcXorFirstAccess => ctx.pc ^ fpa,
            VaXorFirstAccess => line ^ fpa,
            VaShiftXorFirstAccess(n) => (ctx.va >> n) ^ fpa,
            OffsetPlusFirstAccess => offset + fpa,
            PcPlusDelta => ctx.pc.wrapping_add(delta),
            VaPlusDelta => line.wrapping_add(delta),
            PcXorVaXorDelta => ctx.pc ^ line ^ delta,
            DeltaHistXor => (ctx.delta_hist[2] as u64) ^ (ctx.delta_hist[1] as u64) ^ delta,
            PcXorDeltaHist => ctx.pc ^ (ctx.delta_hist[1] as u64) ^ delta,
            PageDistance => ((ctx.target_va >> 12) as i64 - (ctx.va >> 12) as i64) as u64,
            PcXorPageDistance => {
                ctx.pc ^ (((ctx.target_va >> 12) as i64 - (ctx.va >> 12) as i64) as u64)
            }
            TargetVaShift(n) => ctx.target_va >> n,
            TargetOffset => (ctx.target_va >> 6) & 0x3F,
            PcXorTargetOffset => ctx.pc ^ ((ctx.target_va >> 6) & 0x3F),
            OffsetXorDelta => offset ^ delta,
            DeltaSign => (ctx.delta < 0) as u64,
            DeltaMagnitude => 63 - (ctx.delta.unsigned_abs().max(1)).leading_zeros() as u64,
            PcRotXorVa => ctx.pc.rotate_left(17) ^ line,
            VaHistXorDelta => ((ctx.va_hist[1] >> 6) ^ line) ^ delta,
        }
    }

    /// Hashes the feature value into a weight-table index in `[0, entries)`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `entries` is not a power of two.
    pub fn index(self, ctx: &FeatureContext, entries: usize) -> usize {
        debug_assert!(
            entries.is_power_of_two(),
            "weight tables are power-of-two sized"
        );
        (mix64(self.value(ctx)) & (entries as u64 - 1)) as usize
    }

    /// A short stable label for reports.
    pub fn label(self) -> String {
        format!("{self:?}")
    }
}

/// SplitMix64 finaliser: a cheap, well-distributed hash.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FeatureContext {
        FeatureContext {
            pc: 0x0040_1230,
            va: 0x7FFF_1234_5678,
            target_va: 0x7FFF_1234_6000,
            delta: 38,
            first_page_access: true,
            va_hist: [0x7FFF_1234_5678, 0x7FFF_1234_5638, 0x7FFF_1234_55F8],
            pc_hist: [0x0040_1230, 0x0040_1228, 0x0040_1220],
            delta_hist: [38, 1, 1],
        }
    }

    #[test]
    fn bouquet_has_55_features() {
        let b = ProgramFeature::bouquet();
        assert_eq!(b.len(), 55, "the paper's bouquet size");
        // All distinct.
        let set: std::collections::HashSet<_> = b.iter().collect();
        assert_eq!(set.len(), 55);
    }

    #[test]
    fn table_i_features_present() {
        use ProgramFeature::*;
        let b = ProgramFeature::bouquet();
        for f in [
            Va,
            VaShift(12),
            VaShift(21),
            CacheLineOffset,
            Pc,
            PcPlusOffset,
            VaHistXor,
            VaPageHistXor,
            PcHistXor,
            PcXorVa,
            PcXorVaShift(12),
            VaXorDelta,
            PcXorDelta,
            VaShiftXorDelta(12),
            PcXorFirstAccess,
            VaXorFirstAccess,
            VaShiftXorFirstAccess(12),
            OffsetPlusFirstAccess,
            DeltaPlusFirstAccess,
            Delta, // Table II (DRIPPER for Berti)
        ] {
            assert!(
                b.contains(&f),
                "Table I/II feature {f:?} missing from bouquet"
            );
        }
    }

    #[test]
    fn values_are_deterministic() {
        let c = ctx();
        for f in ProgramFeature::bouquet() {
            assert_eq!(f.value(&c), f.value(&c));
        }
    }

    #[test]
    fn delta_sensitivity() {
        let mut a = ctx();
        let mut b = ctx();
        a.delta = 1;
        b.delta = -1;
        assert_ne!(
            ProgramFeature::Delta.value(&a),
            ProgramFeature::Delta.value(&b)
        );
        assert_ne!(
            ProgramFeature::PcXorDelta.value(&a),
            ProgramFeature::PcXorDelta.value(&b)
        );
        assert_ne!(
            ProgramFeature::DeltaSign.value(&a),
            ProgramFeature::DeltaSign.value(&b)
        );
    }

    #[test]
    fn page_distance_signed() {
        let mut c = ctx();
        c.va = 0x5000;
        c.target_va = 0x4000; // backward cross
        assert_eq!(ProgramFeature::PageDistance.value(&c), (-1i64) as u64);
    }

    #[test]
    fn index_in_range() {
        let c = ctx();
        for f in ProgramFeature::bouquet() {
            let i = f.index(&c, 512);
            assert!(i < 512);
        }
    }

    #[test]
    fn hash_spreads_adjacent_values() {
        // Adjacent deltas should not collide into the same 512-entry slot
        // systematically.
        let mut collisions = 0;
        for d in 0..64i64 {
            let mut a = ctx();
            a.delta = d;
            let mut b = ctx();
            b.delta = d + 1;
            if ProgramFeature::Delta.index(&a, 512) == ProgramFeature::Delta.index(&b, 512) {
                collisions += 1;
            }
        }
        assert!(
            collisions < 8,
            "hash should separate adjacent deltas, got {collisions}"
        );
    }

    #[test]
    fn delta_magnitude_buckets() {
        let mut c = ctx();
        c.delta = 1;
        assert_eq!(ProgramFeature::DeltaMagnitude.value(&c), 0);
        c.delta = -8;
        assert_eq!(ProgramFeature::DeltaMagnitude.value(&c), 3);
        c.delta = 100;
        assert_eq!(ProgramFeature::DeltaMagnitude.value(&c), 6);
    }

    #[test]
    fn first_page_access_flag_matters() {
        let mut a = ctx();
        let mut b = ctx();
        a.first_page_access = true;
        b.first_page_access = false;
        assert_ne!(
            ProgramFeature::VaXorFirstAccess.value(&a),
            ProgramFeature::VaXorFirstAccess.value(&b)
        );
    }

    #[test]
    fn labels_nonempty_and_unique_enough() {
        let b = ProgramFeature::bouquet();
        let labels: std::collections::HashSet<String> = b.iter().map(|f| f.label()).collect();
        assert_eq!(labels.len(), b.len());
    }
}
