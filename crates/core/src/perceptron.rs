//! Hashed perceptron weight tables (paper §III-B).
//!
//! Each selected program feature owns one *Weight Table (WT)*: an array of
//! saturating counters indexed by the hashed feature value. Prediction sums
//! the weights read from every table; training increments/decrements the
//! exact entries that produced a prediction (the hash indices are carried in
//! the vUB/pUB entries, see [`crate::buffers`]).

use crate::features::{FeatureContext, ProgramFeature};
use pagecross_types::SatCounter;

/// A single feature's weight table.
#[derive(Clone, Debug)]
pub struct WeightTable {
    feature: ProgramFeature,
    weights: Vec<SatCounter>,
}

impl WeightTable {
    /// Creates a zeroed table of `entries` counters of `bits` width.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(feature: ProgramFeature, entries: usize, bits: u32) -> Self {
        assert!(
            entries.is_power_of_two(),
            "weight tables are power-of-two sized"
        );
        Self {
            feature,
            weights: vec![SatCounter::new(bits); entries],
        }
    }

    /// The feature this table is indexed with.
    pub fn feature(&self) -> ProgramFeature {
        self.feature
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.weights.len()
    }

    /// Index for a context.
    pub fn index(&self, ctx: &FeatureContext) -> u16 {
        self.feature.index(ctx, self.weights.len()) as u16
    }

    /// Weight at a stored index.
    pub fn weight_at(&self, index: u16) -> i16 {
        self.weights[index as usize].get()
    }

    /// Reads the weight for a context.
    pub fn read(&self, ctx: &FeatureContext) -> i16 {
        self.weight_at(self.index(ctx))
    }

    /// Positive training at a stored index.
    pub fn reward(&mut self, index: u16) {
        self.weights[index as usize].inc();
    }

    /// Negative training at a stored index.
    pub fn punish(&mut self, index: u16) {
        self.weights[index as usize].dec();
    }

    /// `(saturated, total)` weight counts — a weight is saturated when it
    /// sits at either bound of its saturating range.
    pub fn saturation(&self) -> (u64, u64) {
        let saturated = self
            .weights
            .iter()
            .filter(|w| w.is_max() || w.is_min())
            .count() as u64;
        (saturated, self.weights.len() as u64)
    }
}

/// A bank of weight tables, one per selected program feature.
#[derive(Clone, Debug)]
pub struct PerceptronBank {
    tables: Vec<WeightTable>,
}

impl PerceptronBank {
    /// Builds one table per feature.
    pub fn new(features: &[ProgramFeature], entries: usize, bits: u32) -> Self {
        Self {
            tables: features
                .iter()
                .map(|&f| WeightTable::new(f, entries, bits))
                .collect(),
        }
    }

    /// Number of tables (= selected features).
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no features are selected.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// The features, in table order.
    pub fn features(&self) -> impl Iterator<Item = ProgramFeature> + '_ {
        self.tables.iter().map(|t| t.feature())
    }

    /// Computes the hash indices for a context (stored in vUB/pUB entries).
    pub fn indices(&self, ctx: &FeatureContext) -> Vec<u16> {
        self.tables.iter().map(|t| t.index(ctx)).collect()
    }

    /// Sums the weights for a context.
    pub fn predict(&self, ctx: &FeatureContext) -> i32 {
        self.tables.iter().map(|t| t.read(ctx) as i32).sum()
    }

    /// Sum of weights at stored indices.
    pub fn predict_at(&self, indices: &[u16]) -> i32 {
        self.tables
            .iter()
            .zip(indices)
            .map(|(t, &i)| t.weight_at(i) as i32)
            .sum()
    }

    /// Positive training at stored indices.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `indices` length mismatches the table count.
    pub fn reward(&mut self, indices: &[u16]) {
        debug_assert_eq!(indices.len(), self.tables.len());
        for (t, &i) in self.tables.iter_mut().zip(indices) {
            t.reward(i);
        }
    }

    /// Negative training at stored indices.
    pub fn punish(&mut self, indices: &[u16]) {
        debug_assert_eq!(indices.len(), self.tables.len());
        for (t, &i) in self.tables.iter_mut().zip(indices) {
            t.punish(i);
        }
    }

    /// Fraction of all weights sitting at a saturating bound, across every
    /// table (0.0 for an empty bank). A rising fraction means the
    /// perceptron is running out of dynamic range — the telemetry signal
    /// the interval sampler exposes.
    pub fn saturation_fraction(&self) -> f64 {
        let (saturated, total) = self
            .tables
            .iter()
            .map(|t| t.saturation())
            .fold((0u64, 0u64), |(s, n), (ts, tn)| (s + ts, n + tn));
        if total == 0 {
            0.0
        } else {
            saturated as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(pc: u64, delta: i64) -> FeatureContext {
        FeatureContext {
            pc,
            delta,
            va: 0x1000,
            target_va: 0x2000,
            ..Default::default()
        }
    }

    #[test]
    fn fresh_bank_predicts_zero() {
        let bank = PerceptronBank::new(&[ProgramFeature::Delta, ProgramFeature::Pc], 512, 5);
        assert_eq!(bank.predict(&ctx(1, 2)), 0);
    }

    #[test]
    fn reward_shifts_prediction_up() {
        let mut bank = PerceptronBank::new(&[ProgramFeature::Delta], 512, 5);
        let c = ctx(1, 7);
        let idx = bank.indices(&c);
        for _ in 0..3 {
            bank.reward(&idx);
        }
        assert_eq!(bank.predict(&c), 3);
        // A different delta is unaffected (modulo hash collision; pick one
        // that does not collide).
        let other = ctx(1, 8);
        if bank.indices(&other) != idx {
            assert_eq!(bank.predict(&other), 0);
        }
    }

    #[test]
    fn punish_saturates_at_minimum() {
        let mut bank = PerceptronBank::new(&[ProgramFeature::Pc], 64, 3);
        let c = ctx(42, 0);
        let idx = bank.indices(&c);
        for _ in 0..100 {
            bank.punish(&idx);
        }
        assert_eq!(bank.predict(&c), -4);
    }

    #[test]
    fn predict_at_matches_predict() {
        let mut bank =
            PerceptronBank::new(&[ProgramFeature::Delta, ProgramFeature::PcXorDelta], 512, 5);
        let c = ctx(0xABC, -3);
        let idx = bank.indices(&c);
        bank.reward(&idx);
        bank.reward(&idx);
        assert_eq!(bank.predict(&c), bank.predict_at(&idx));
        assert_eq!(bank.predict(&c), 4);
    }

    #[test]
    fn multiple_features_sum() {
        let mut bank = PerceptronBank::new(&[ProgramFeature::Delta, ProgramFeature::Pc], 512, 5);
        let c = ctx(5, 6);
        let idx = bank.indices(&c);
        bank.reward(&idx); // both tables +1
        assert_eq!(bank.predict(&c), 2);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_pow2_rejected() {
        let _ = WeightTable::new(ProgramFeature::Pc, 500, 5);
    }
}
