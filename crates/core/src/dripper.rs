//! DRIPPER — the Page-Cross Filter prototype (paper §III-E, Table II) —
//! plus the comparison filters of §V (PPF, PPF+Dthr, single-feature
//! filters, DRIPPER-SF).
//!
//! | Prefetcher | DRIPPER program feature | System features |
//! |---|---|---|
//! | Berti | `Delta` | sTLB MPKI, sTLB Miss Rate |
//! | BOP   | `PC ⊕ Delta` | sTLB MPKI, sTLB Miss Rate |
//! | IPCP  | `PC ⊕ Delta` | sTLB MPKI, sTLB Miss Rate |

use crate::features::ProgramFeature;
use crate::filter::{FilterConfig, PageCrossFilter};
use crate::policy::FilterPolicy;
use crate::system_features::SystemFeature;

/// The prefetchers DRIPPER was prototyped for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TargetPrefetcher {
    /// Berti (MICRO'22).
    Berti,
    /// IPCP (ISCA'20).
    Ipcp,
    /// BOP (HPCA'16).
    Bop,
}

impl TargetPrefetcher {
    /// DRIPPER's selected program feature for this prefetcher (Table II).
    pub fn dripper_program_feature(self) -> ProgramFeature {
        match self {
            TargetPrefetcher::Berti => ProgramFeature::Delta,
            TargetPrefetcher::Ipcp | TargetPrefetcher::Bop => ProgramFeature::PcXorDelta,
        }
    }
}

/// DRIPPER's system features (same for all prefetchers, Table II).
pub fn dripper_system_features() -> Vec<SystemFeature> {
    vec![SystemFeature::StlbMpki, SystemFeature::StlbMissRate]
}

/// Builds the DRIPPER filter configuration for a prefetcher.
pub fn dripper_config(target: TargetPrefetcher) -> FilterConfig {
    FilterConfig::with_features(
        vec![target.dripper_program_feature()],
        dripper_system_features(),
    )
}

/// DRIPPER as a ready-to-use policy.
pub fn dripper(target: TargetPrefetcher) -> FilterPolicy {
    FilterPolicy::new("dripper", PageCrossFilter::new(dripper_config(target)))
}

/// DRIPPER-SF (§V-B5): system features only, no program feature.
pub fn dripper_sf() -> FilterPolicy {
    let cfg = FilterConfig::with_features(vec![], dripper_system_features());
    FilterPolicy::new("dripper-sf", PageCrossFilter::new(cfg))
}

/// A single-program-feature filter (§V-B5, Fig. 14).
pub fn single_program_feature(feature: ProgramFeature) -> FilterPolicy {
    let cfg = FilterConfig::with_features(vec![feature], vec![]);
    FilterPolicy::new("single-feature", PageCrossFilter::new(cfg))
}

/// A single-system-feature filter (§V-B5, Fig. 14).
pub fn single_system_feature(feature: SystemFeature) -> FilterPolicy {
    let cfg = FilterConfig::with_features(vec![], vec![feature]);
    FilterPolicy::new("single-sys-feature", PageCrossFilter::new(cfg))
}

/// PPF converted to a page-cross filter (§V-A): perceptron filtering with a
/// set of prefetcher-independent program features (the SPP-specific ones
/// are excluded, as in the paper), **no system features**, and a static
/// activation threshold.
pub fn ppf() -> FilterPolicy {
    let mut cfg = FilterConfig::with_features(ppf_features(), vec![]);
    cfg.adaptive = false;
    cfg.static_threshold = 0;
    FilterPolicy::new("ppf", PageCrossFilter::new(cfg))
}

/// PPF combined with MOKA's dynamic thresholding (§V-A, "PPF+Dthr").
pub fn ppf_dthr() -> FilterPolicy {
    let cfg = FilterConfig::with_features(ppf_features(), vec![]);
    FilterPolicy::new("ppf+dthr", PageCrossFilter::new(cfg))
}

/// The prefetcher-independent subset of PPF's feature set.
pub fn ppf_features() -> Vec<ProgramFeature> {
    vec![
        ProgramFeature::Pc,
        ProgramFeature::Va,
        ProgramFeature::VaShift(12),
        ProgramFeature::CacheLineOffset,
        ProgramFeature::PcXorVa,
        ProgramFeature::PcXorOffset,
        ProgramFeature::PcHistXor,
        ProgramFeature::PcPlusOffset,
        ProgramFeature::PcXorVaShift(12),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_feature_selection() {
        assert_eq!(
            TargetPrefetcher::Berti.dripper_program_feature(),
            ProgramFeature::Delta
        );
        assert_eq!(
            TargetPrefetcher::Bop.dripper_program_feature(),
            ProgramFeature::PcXorDelta
        );
        assert_eq!(
            TargetPrefetcher::Ipcp.dripper_program_feature(),
            ProgramFeature::PcXorDelta
        );
        assert_eq!(
            dripper_system_features(),
            vec![SystemFeature::StlbMpki, SystemFeature::StlbMissRate]
        );
    }

    #[test]
    fn dripper_storage_matches_table_iii() {
        for t in [
            TargetPrefetcher::Berti,
            TargetPrefetcher::Ipcp,
            TargetPrefetcher::Bop,
        ] {
            let kb = dripper_config(t).storage_kb();
            assert!((kb - 1.44).abs() < 0.05, "{t:?}: {kb:.3} KB");
        }
    }

    #[test]
    fn dripper_uses_adaptive_threshold() {
        use crate::policy::PgcPolicy;
        let d = dripper(TargetPrefetcher::Berti);
        assert!(d.filter().config().adaptive);
        assert_eq!(d.name(), "dripper");
    }

    #[test]
    fn ppf_uses_static_threshold_and_no_system_features() {
        let p = ppf();
        assert!(!p.filter().config().adaptive);
        assert!(p.filter().config().system_features.is_empty());
        assert!(p.filter().config().program_features.len() >= 8);
    }

    #[test]
    fn ppf_dthr_is_adaptive() {
        assert!(ppf_dthr().filter().config().adaptive);
    }

    #[test]
    fn ppf_features_are_prefetcher_independent() {
        // None of the PPF features consults the prefetcher's delta — that is
        // what "excluding features specialised to SPP's metadata" leaves.
        let c0 = crate::features::FeatureContext {
            delta: 1,
            ..Default::default()
        };
        let c1 = crate::features::FeatureContext {
            delta: 9,
            ..Default::default()
        };
        for f in ppf_features() {
            assert_eq!(f.value(&c0), f.value(&c1), "{f:?} must not depend on delta");
        }
    }

    #[test]
    fn dripper_sf_has_no_program_features() {
        let d = dripper_sf();
        assert!(d.filter().config().program_features.is_empty());
        assert_eq!(d.filter().config().system_features.len(), 2);
    }
}
