//! Offline feature selection (paper §III-D3).
//!
//! The paper selects DRIPPER's features offline: evaluate each of the 60
//! single-feature filters (55 program + 6 system, one disqualified overlap)
//! in isolation, sort by geomean IPC speedup, then greedily grow the set —
//! a candidate joins if it improves geomean IPC by more than 0.3% over the
//! best configuration so far. The process is repeated per prefetcher.
//!
//! This module implements that search generically over an
//! evaluation closure, so it can be driven by the full simulator (see the
//! `feature_selection` example) or by fast surrogates in tests.

use crate::features::ProgramFeature;
use crate::system_features::SystemFeature;

/// A candidate feature: one program feature or one system feature.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CandidateFeature {
    /// A hashed-perceptron program feature.
    Program(ProgramFeature),
    /// A gated system feature.
    System(SystemFeature),
}

/// A feature set under evaluation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FeatureSet {
    /// Selected program features.
    pub program: Vec<ProgramFeature>,
    /// Selected system features.
    pub system: Vec<SystemFeature>,
}

impl FeatureSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a copy with `f` added.
    pub fn with(&self, f: CandidateFeature) -> Self {
        let mut s = self.clone();
        match f {
            CandidateFeature::Program(p) => s.program.push(p),
            CandidateFeature::System(y) => s.system.push(y),
        }
        s
    }

    /// Number of features in the set.
    pub fn len(&self) -> usize {
        self.program.len() + self.system.len()
    }

    /// True when no feature is selected.
    pub fn is_empty(&self) -> bool {
        self.program.is_empty() && self.system.is_empty()
    }
}

/// The paper's candidate pool: the 55-feature program bouquet plus the six
/// system features.
pub fn candidate_pool() -> Vec<CandidateFeature> {
    let mut v: Vec<CandidateFeature> = ProgramFeature::bouquet()
        .into_iter()
        .map(CandidateFeature::Program)
        .collect();
    v.extend(SystemFeature::ALL.into_iter().map(CandidateFeature::System));
    v
}

/// Result of a selection run.
#[derive(Clone, Debug)]
pub struct SelectionOutcome {
    /// The selected feature set, in adoption order.
    pub selected: FeatureSet,
    /// Geomean speedup of the selected set.
    pub score: f64,
    /// Every candidate's isolated score, sorted descending (the paper's
    /// intermediate ranking step), as `(feature, geomean speedup)`.
    pub isolated_ranking: Vec<(CandidateFeature, f64)>,
    /// Evaluations performed (cost accounting).
    pub evaluations: usize,
}

/// Greedy forward selection per §III-D3.
///
/// `evaluate` maps a [`FeatureSet`] to its geomean IPC speedup over the
/// Discard-PGC baseline (1.0 = parity). `min_gain` is the paper's 0.3%
/// adoption threshold, expressed as a ratio delta (0.003).
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn select_features<F>(
    candidates: &[CandidateFeature],
    mut evaluate: F,
    min_gain: f64,
) -> SelectionOutcome
where
    F: FnMut(&FeatureSet) -> f64,
{
    assert!(
        !candidates.is_empty(),
        "need at least one candidate feature"
    );
    let mut evaluations = 0;

    // Round 1: isolated scores.
    let mut ranking: Vec<(CandidateFeature, f64)> = candidates
        .iter()
        .map(|&f| {
            evaluations += 1;
            (f, evaluate(&FeatureSet::new().with(f)))
        })
        .collect();
    ranking.sort_by(|a, b| b.1.total_cmp(&a.1));

    // Round 2: greedy growth from the best performer, in ranking order.
    let mut selected = FeatureSet::new().with(ranking[0].0);
    let mut best_score = ranking[0].1;
    for &(f, _) in &ranking[1..] {
        let trial = selected.with(f);
        evaluations += 1;
        let score = evaluate(&trial);
        if score > best_score + min_gain {
            selected = trial;
            best_score = score;
        }
    }

    SelectionOutcome {
        selected,
        score: best_score,
        isolated_ranking: ranking,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic objective: Delta is worth 2%, each sTLB feature 1%,
    /// everything else is noise-free 0%; gains are additive with mild
    /// diminishing returns.
    fn toy_objective(s: &FeatureSet) -> f64 {
        let mut gain = 0.0;
        if s.program.contains(&ProgramFeature::Delta) {
            gain += 0.02;
        }
        if s.system.contains(&SystemFeature::StlbMpki) {
            gain += 0.01;
        }
        if s.system.contains(&SystemFeature::StlbMissRate) {
            gain += 0.01;
        }
        // Every extra feature beyond 3 costs a little (overfitting proxy).
        let overflow = s.len().saturating_sub(3) as f64;
        1.0 + gain - overflow * 0.004
    }

    #[test]
    fn pool_has_61_candidates() {
        assert_eq!(candidate_pool().len(), 55 + 6);
    }

    #[test]
    fn greedy_selection_recovers_dripper_like_set() {
        let out = select_features(&candidate_pool(), toy_objective, 0.003);
        assert!(out.selected.program.contains(&ProgramFeature::Delta));
        assert!(out.selected.system.contains(&SystemFeature::StlbMpki));
        assert!(out.selected.system.contains(&SystemFeature::StlbMissRate));
        assert_eq!(
            out.selected.len(),
            3,
            "nothing beyond the useful three is adopted"
        );
        assert!((out.score - 1.04).abs() < 1e-9);
    }

    #[test]
    fn ranking_is_sorted_descending() {
        let out = select_features(&candidate_pool(), toy_objective, 0.003);
        for w in out.isolated_ranking.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(
            out.isolated_ranking[0].0,
            CandidateFeature::Program(ProgramFeature::Delta),
            "Delta has the best isolated score"
        );
    }

    #[test]
    fn high_min_gain_stops_growth() {
        let out = select_features(&candidate_pool(), toy_objective, 0.05);
        assert_eq!(out.selected.len(), 1, "no candidate clears a 5% bar");
    }

    #[test]
    fn evaluation_count_is_bounded() {
        let pool = candidate_pool();
        let out = select_features(&pool, toy_objective, 0.003);
        // One isolated evaluation per candidate + one trial per non-first
        // candidate.
        assert_eq!(out.evaluations, pool.len() + pool.len() - 1);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_pool_rejected() {
        let _ = select_features(&[], |_| 1.0, 0.003);
    }
}
