//! MOKA's system features (paper §III-D2).
//!
//! A *system feature* ties the usefulness of page-cross prefetching to the
//! current system state. Each feature is a single saturating-counter weight
//! gated by a threshold on one field of the [`SystemSnapshot`]: the weight
//! participates in the cumulative sum **only** while the gate condition
//! holds (`SFₙ ? Tₛfₙ` in Fig. 6, where `?` is `>` or `<` per feature).
//! Training updates a feature's weight only if the feature was active when
//! the corresponding prediction was made — the active-feature bitmask is
//! carried through the vUB/pUB entries.

use pagecross_types::{SatCounter, SystemSnapshot};

/// The six system features of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SystemFeature {
    /// Active when L1D MPKI is high.
    L1dMpki,
    /// Active when the L1D miss rate is high.
    L1dMissRate,
    /// Active when LLC MPKI is high.
    LlcMpki,
    /// Active when the LLC miss rate is high.
    LlcMissRate,
    /// Active when sTLB MPKI is **low** (page-cross prefetches are likely to
    /// hit the TLB hierarchy, so walks are unlikely; §III-E).
    StlbMpki,
    /// Active when the sTLB miss rate is **high** (page-cross prefetches can
    /// relieve translation pressure; §III-E).
    StlbMissRate,
}

impl SystemFeature {
    /// All six features.
    pub const ALL: [SystemFeature; 6] = [
        SystemFeature::L1dMpki,
        SystemFeature::L1dMissRate,
        SystemFeature::LlcMpki,
        SystemFeature::LlcMissRate,
        SystemFeature::StlbMpki,
        SystemFeature::StlbMissRate,
    ];

    /// Default gate threshold for the feature.
    pub fn default_threshold(self) -> f64 {
        match self {
            SystemFeature::L1dMpki => 20.0,
            SystemFeature::L1dMissRate => 0.20,
            SystemFeature::LlcMpki => 5.0,
            SystemFeature::LlcMissRate => 0.50,
            SystemFeature::StlbMpki => 1.0,
            SystemFeature::StlbMissRate => 0.10,
        }
    }

    /// Whether the gate condition holds for a snapshot at `threshold`.
    pub fn active(self, snap: &SystemSnapshot, threshold: f64) -> bool {
        match self {
            SystemFeature::L1dMpki => snap.l1d_mpki > threshold,
            SystemFeature::L1dMissRate => snap.l1d_miss_rate > threshold,
            SystemFeature::LlcMpki => snap.llc_mpki > threshold,
            SystemFeature::LlcMissRate => snap.llc_miss_rate > threshold,
            // sTLB MPKI gates on *low* pressure.
            SystemFeature::StlbMpki => snap.stlb_mpki < threshold,
            SystemFeature::StlbMissRate => snap.stlb_miss_rate > threshold,
        }
    }
}

/// A bank of gated system-feature weights.
#[derive(Clone, Debug)]
pub struct SystemFeatureBank {
    features: Vec<(SystemFeature, f64)>,
    weights: Vec<SatCounter>,
    bits: u32,
}

impl SystemFeatureBank {
    /// Builds a bank with default thresholds and `bits`-wide weights.
    pub fn new(features: &[SystemFeature], bits: u32) -> Self {
        Self {
            features: features
                .iter()
                .map(|&f| (f, f.default_threshold()))
                .collect(),
            weights: vec![SatCounter::new(bits); features.len()],
            bits,
        }
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when the bank has no features.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// The features, in order.
    pub fn features(&self) -> impl Iterator<Item = SystemFeature> + '_ {
        self.features.iter().map(|(f, _)| *f)
    }

    /// Bitmask of features active for this snapshot (bit i = feature i).
    pub fn active_mask(&self, snap: &SystemSnapshot) -> u8 {
        let mut mask = 0u8;
        for (i, (f, t)) in self.features.iter().enumerate() {
            if f.active(snap, *t) {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// Sum of the weights of the features in `mask`.
    pub fn predict(&self, mask: u8) -> i32 {
        self.weights
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, w)| w.get() as i32)
            .sum()
    }

    /// Positive training of the features in `mask`.
    pub fn reward(&mut self, mask: u8) {
        for (i, w) in self.weights.iter_mut().enumerate() {
            if mask & (1 << i) != 0 {
                w.inc();
            }
        }
    }

    /// Negative training of the features in `mask`.
    pub fn punish(&mut self, mask: u8) {
        for (i, w) in self.weights.iter_mut().enumerate() {
            if mask & (1 << i) != 0 {
                w.dec();
            }
        }
    }

    /// Epoch-boundary decay: halves every weight toward zero.
    ///
    /// System features summarise *phase-conditional* usefulness, so stale
    /// evidence must fade: without decay, an early burst of one-sided
    /// training parks the counters at saturation, where balanced traffic
    /// (reward ≈ punish) can never pull them back, and two saturated
    /// system features (±15 each) override any single program feature
    /// (±16). The paper leaves the update policy unspecified; periodic
    /// decay is the standard fix for exactly this failure mode.
    pub fn decay(&mut self) {
        let bits = self.bits;
        for w in &mut self.weights {
            let halved = w.get() / 2;
            *w = SatCounter::with_value(bits, halved);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(stlb_mpki: f64, stlb_mr: f64) -> SystemSnapshot {
        SystemSnapshot {
            stlb_mpki,
            stlb_miss_rate: stlb_mr,
            ..Default::default()
        }
    }

    #[test]
    fn stlb_mpki_gates_on_low_pressure() {
        let f = SystemFeature::StlbMpki;
        assert!(f.active(&snap(0.1, 0.0), 1.0));
        assert!(!f.active(&snap(5.0, 0.0), 1.0));
    }

    #[test]
    fn stlb_miss_rate_gates_on_high_pressure() {
        let f = SystemFeature::StlbMissRate;
        assert!(f.active(&snap(0.0, 0.5), 0.1));
        assert!(!f.active(&snap(0.0, 0.01), 0.1));
    }

    #[test]
    fn mask_reflects_activation() {
        let bank =
            SystemFeatureBank::new(&[SystemFeature::StlbMpki, SystemFeature::StlbMissRate], 5);
        // Low MPKI, high miss rate -> both active.
        assert_eq!(bank.active_mask(&snap(0.1, 0.5)), 0b11);
        // High MPKI, low miss rate -> neither.
        assert_eq!(bank.active_mask(&snap(5.0, 0.01)), 0b00);
        // Low MPKI only.
        assert_eq!(bank.active_mask(&snap(0.1, 0.01)), 0b01);
    }

    #[test]
    fn inactive_features_do_not_contribute() {
        let mut bank =
            SystemFeatureBank::new(&[SystemFeature::StlbMpki, SystemFeature::StlbMissRate], 5);
        bank.reward(0b11);
        bank.reward(0b11);
        assert_eq!(bank.predict(0b11), 4);
        assert_eq!(bank.predict(0b01), 2);
        assert_eq!(bank.predict(0b00), 0);
    }

    #[test]
    fn training_respects_mask() {
        let mut bank =
            SystemFeatureBank::new(&[SystemFeature::StlbMpki, SystemFeature::StlbMissRate], 5);
        bank.reward(0b01);
        bank.punish(0b10);
        assert_eq!(bank.predict(0b01), 1);
        assert_eq!(bank.predict(0b10), -1);
        assert_eq!(bank.predict(0b11), 0);
    }

    #[test]
    fn decay_halves_toward_zero() {
        let mut bank =
            SystemFeatureBank::new(&[SystemFeature::StlbMpki, SystemFeature::StlbMissRate], 5);
        for _ in 0..20 {
            bank.reward(0b01);
            bank.punish(0b10);
        }
        assert_eq!(bank.predict(0b01), 15);
        assert_eq!(bank.predict(0b10), -16);
        bank.decay();
        assert_eq!(bank.predict(0b01), 7);
        assert_eq!(bank.predict(0b10), -8);
        for _ in 0..10 {
            bank.decay();
        }
        assert_eq!(bank.predict(0b11), 0);
    }

    #[test]
    fn cache_features_gate_on_high_pressure() {
        let s = SystemSnapshot {
            l1d_mpki: 50.0,
            l1d_miss_rate: 0.5,
            llc_mpki: 10.0,
            llc_miss_rate: 0.8,
            ..Default::default()
        };
        for f in [
            SystemFeature::L1dMpki,
            SystemFeature::L1dMissRate,
            SystemFeature::LlcMpki,
            SystemFeature::LlcMissRate,
        ] {
            assert!(
                f.active(&s, f.default_threshold()),
                "{f:?} should be active under pressure"
            );
            assert!(
                !f.active(&SystemSnapshot::default(), f.default_threshold()),
                "{f:?} should be inactive when idle"
            );
        }
    }
}
