//! # MOKA — a framework for page-cross prefetch filters
//!
//! This crate is the primary contribution of *"To Cross, or Not to Cross
//! Pages for Prefetching?"* (HPCA 2025): a holistic framework for building
//! **Page-Cross Filters** — microarchitectural predictors that decide, per
//! prefetch request crossing a virtual 4 KB page boundary, whether issuing
//! it (possibly at the cost of a speculative page walk) will help or hurt.
//!
//! The framework combines:
//!
//! 1. [`features`] — a bouquet of 55 prefetcher-independent **program
//!    features** hashed into perceptron weight tables ([`perceptron`]);
//! 2. [`system_features`] — gated saturating-counter **system features**
//!    that fold TLB/cache pressure into the decision;
//! 3. [`buffers`] — the **vUB**/**pUB** update buffers that route training
//!    back to the exact weights that produced each decision;
//! 4. [`threshold`] — the epoch-based **adaptive thresholding** scheme.
//!
//! [`dripper`] instantiates the framework as the paper's DRIPPER prototype
//! (Table II) and as every comparison scheme of Fig. 9.
//!
//! # Example: DRIPPER learns from false negatives
//!
//! ```
//! use moka_pgc::dripper::{dripper, TargetPrefetcher};
//! use moka_pgc::features::FeatureContext;
//! use moka_pgc::policy::{PgcPolicy, PolicyAction};
//! use pagecross_types::{PrefetchCandidate, SystemSnapshot, VirtAddr};
//!
//! let mut policy = dripper(TargetPrefetcher::Berti);
//! let cand = PrefetchCandidate {
//!     pc: 0x400100,
//!     trigger: VirtAddr::new(0x1FC0),
//!     target: VirtAddr::new(0x2000), // crosses into the next page
//!     delta: 1,
//!     first_page_access: false,
//! };
//! let ctx = FeatureContext { pc: 0x400100, va: 0x1FC0, target_va: 0x2000, delta: 1, ..Default::default() };
//! let snap = SystemSnapshot::default();
//!
//! // A fresh DRIPPER starts permissive (bootstrap through the pUB)…
//! assert!(matches!(policy.decide(&cand, &ctx, &snap), PolicyAction::Issue { .. }));
//! // …and useless outcomes (PCB blocks evicted without serving a hit)
//! // teach it to discard this delta:
//! for line in 0..8u64 {
//!     policy.decide(&cand, &ctx, &snap);
//!     policy.on_issued(line);
//!     policy.on_pcb_eviction(line, false);
//! }
//! assert_eq!(policy.decide(&cand, &ctx, &snap), PolicyAction::Discard);
//! // A discarded prefetch that turns into a demand miss is a false
//! // negative caught by the vUB, training the filter back toward issuing.
//! for _ in 0..20 {
//!     policy.decide(&cand, &ctx, &snap);
//!     policy.on_l1d_demand_miss(cand.target.line().raw());
//! }
//! assert!(matches!(policy.decide(&cand, &ctx, &snap), PolicyAction::Issue { .. }));
//! ```

pub mod buffers;
pub mod dripper;
pub mod features;
pub mod filter;
pub mod perceptron;
pub mod policy;
pub mod selection;
pub mod system_features;
pub mod threshold;

pub use dripper::{dripper, dripper_sf, ppf, ppf_dthr, TargetPrefetcher};
pub use features::{FeatureContext, ProgramFeature};
pub use filter::{FilterConfig, FilterStats, PageCrossFilter};
pub use policy::{DiscardPgc, DiscardPtw, FilterPolicy, PermitPgc, PgcPolicy, PolicyAction};
pub use selection::{select_features, CandidateFeature, FeatureSet, SelectionOutcome};
pub use system_features::SystemFeature;
pub use threshold::{AdaptiveThreshold, ThresholdConfig};
