//! The Virtual and Physical Update Buffers (paper §III-B, §III-C2).
//!
//! * **vUB** — remembers page-cross prefetches the filter *discarded*, keyed
//!   by **virtual** line (prefetchers operate in the virtual space). A later
//!   L1D demand miss that hits in the vUB is a *false negative*: the filter
//!   threw away a prefetch that would have saved the miss, so the stored
//!   hash indices receive positive training.
//! * **pUB** — remembers page-cross prefetches the filter *issued*, keyed by
//!   **physical** line (training triggers on L1D demand hits and evictions,
//!   and L1Ds are physically tagged). Demand hits on PCB blocks reward the
//!   stored indices; evictions of zero-hit PCB blocks punish them.
//!
//! Both buffers carry the exact weight-table indices and the active
//! system-feature mask captured at prediction time, so training updates the
//! same entries that produced the decision.

use std::collections::VecDeque;

/// Training context captured at prediction time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateEntry {
    /// Line address (virtual for vUB, physical for pUB).
    pub line: u64,
    /// Per-weight-table hash indices.
    pub indices: Vec<u16>,
    /// Active system-feature bitmask at prediction time.
    pub sf_mask: u8,
}

/// A small FIFO update buffer with associative lookup by line.
#[derive(Clone, Debug)]
pub struct UpdateBuffer {
    entries: VecDeque<UpdateEntry>,
    capacity: usize,
    /// Lookups that found a matching entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
}

impl UpdateBuffer {
    /// Creates a buffer of `capacity` entries (4 for vUB, 128 for pUB in
    /// the paper's Table III configuration).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "update buffer capacity must be positive");
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Inserts an entry, evicting the oldest when full. An existing entry
    /// for the same line is replaced (refreshed).
    pub fn insert(&mut self, entry: UpdateEntry) {
        if let Some(pos) = self.entries.iter().position(|e| e.line == entry.line) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
    }

    /// Removes and returns the entry for `line`, if present.
    pub fn take(&mut self, line: u64) -> Option<UpdateEntry> {
        if let Some(pos) = self.entries.iter().position(|e| e.line == line) {
            self.hits += 1;
            self.entries.remove(pos)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Looks up without removing (pUB positive training keeps the entry so
    /// a later eviction can still match if the block never hits again —
    /// but the paper trains once; we expose both shapes).
    pub fn peek(&self, line: u64) -> Option<&UpdateEntry> {
        self.entries.iter().find(|e| e.line == line)
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(line: u64) -> UpdateEntry {
        UpdateEntry {
            line,
            indices: vec![7, 9],
            sf_mask: 0b01,
        }
    }

    #[test]
    fn insert_take_roundtrip() {
        let mut b = UpdateBuffer::new(4);
        b.insert(entry(100));
        let e = b.take(100).unwrap();
        assert_eq!(e.indices, vec![7, 9]);
        assert_eq!(e.sf_mask, 0b01);
        assert!(b.take(100).is_none(), "take removes");
        assert_eq!(b.hits, 1);
        assert_eq!(b.misses, 1);
    }

    #[test]
    fn fifo_eviction_when_full() {
        let mut b = UpdateBuffer::new(2);
        b.insert(entry(1));
        b.insert(entry(2));
        b.insert(entry(3)); // evicts 1
        assert!(b.take(1).is_none());
        assert!(b.take(2).is_some());
        assert!(b.take(3).is_some());
    }

    #[test]
    fn reinsert_refreshes_position() {
        let mut b = UpdateBuffer::new(2);
        b.insert(entry(1));
        b.insert(entry(2));
        b.insert(entry(1)); // refresh 1 -> 2 is now oldest
        b.insert(entry(3)); // evicts 2
        assert!(b.take(2).is_none());
        assert!(b.take(1).is_some());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut b = UpdateBuffer::new(4);
        b.insert(entry(5));
        assert!(b.peek(5).is_some());
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn paper_capacities() {
        assert_eq!(UpdateBuffer::new(4).capacity(), 4); // vUB
        assert_eq!(UpdateBuffer::new(128).capacity(), 128); // pUB
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = UpdateBuffer::new(0);
    }
}
