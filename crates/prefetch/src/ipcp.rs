//! IPCP: Instruction Pointer Classifier-based spatial Prefetching (ISCA'20).
//!
//! IPCP classifies each load PC into one of three classes and prefetches
//! accordingly:
//!
//! * **CS (constant stride)** — the PC strides by a fixed number of lines;
//!   prefetch `stride * 1..=degree` ahead.
//! * **CPLX (complex)** — the PC's deltas are irregular but predictable
//!   from a signature of recent deltas; a Complex Stride Prediction Table
//!   (CSPT) maps signatures to next deltas and is walked with lookahead.
//! * **GS (global stream)** — the PC participates in a dense global stream;
//!   prefetch the next lines in the stream direction aggressively.
//!
//! Classification priority is GS > CS > CPLX, as in the paper.

use crate::{candidate, AccessInfo, L1dPrefetcher};
use pagecross_types::PrefetchCandidate;
use std::collections::HashMap;

const CS_DEGREE: i64 = 4;
const GS_DEGREE: i64 = 6;
const CPLX_LOOKAHEAD: usize = 3;
const SIG_BITS: u32 = 12;

#[derive(Clone, Copy, Debug, Default)]
struct IpEntry {
    last_line: i64,
    stride: i64,
    cs_conf: u8,
    signature: u16,
    stream_hits: u8,
}

#[derive(Clone, Copy, Debug, Default)]
struct CsptEntry {
    delta: i64,
    conf: u8,
}

/// Global stream detector: tracks how dense and directional recent
/// accesses are within an aligned 1 KB region window.
#[derive(Clone, Debug, Default)]
struct StreamDetector {
    last_line: i64,
    forward: u32,
    backward: u32,
}

impl StreamDetector {
    fn observe(&mut self, line: i64) -> Option<i64> {
        let d = line - self.last_line;
        self.last_line = line;
        if d > 0 && d <= 4 {
            self.forward = (self.forward + 1).min(64);
            self.backward = self.backward.saturating_sub(1);
        } else if (-4..0).contains(&d) {
            self.backward = (self.backward + 1).min(64);
            self.forward = self.forward.saturating_sub(1);
        } else {
            self.forward = self.forward.saturating_sub(1);
            self.backward = self.backward.saturating_sub(1);
        }
        if self.forward >= 32 {
            Some(1)
        } else if self.backward >= 32 {
            Some(-1)
        } else {
            None
        }
    }
}

/// The IPCP prefetcher.
#[derive(Clone, Debug)]
pub struct Ipcp {
    ip_table: HashMap<u64, IpEntry>,
    cspt: HashMap<u16, CsptEntry>,
    stream: StreamDetector,
    max_ips: usize,
}

impl Ipcp {
    /// Creates an IPCP instance. `size_multiplier` scales the IP table
    /// (ISO-Storage scenario).
    ///
    /// # Panics
    ///
    /// Panics if `size_multiplier == 0`.
    pub fn new(size_multiplier: u32) -> Self {
        assert!(size_multiplier > 0, "size multiplier must be positive");
        Self {
            ip_table: HashMap::new(),
            cspt: HashMap::new(),
            stream: StreamDetector::default(),
            max_ips: 128 * size_multiplier as usize,
        }
    }

    fn update_signature(sig: u16, delta: i64) -> u16 {
        let d = (delta & 0x3F) as u16;
        ((sig << 3) ^ d) & ((1 << SIG_BITS) - 1)
    }
}

impl L1dPrefetcher for Ipcp {
    fn name(&self) -> &'static str {
        "ipcp"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchCandidate>) {
        let line = info.va.line().raw() as i64;
        let stream_dir = self.stream.observe(line);

        if self.ip_table.len() >= self.max_ips && !self.ip_table.contains_key(&info.pc) {
            self.ip_table.clear();
        }
        let e = self.ip_table.entry(info.pc).or_default();

        let delta = if e.last_line != 0 {
            line - e.last_line
        } else {
            0
        };
        if delta != 0 {
            // CS training.
            if delta == e.stride {
                e.cs_conf = (e.cs_conf + 1).min(3);
            } else {
                e.cs_conf = e.cs_conf.saturating_sub(1);
                if e.cs_conf == 0 {
                    e.stride = delta;
                }
            }
            // CPLX training: the *previous* signature predicted this delta.
            let prev_sig = e.signature;
            let c = self.cspt.entry(prev_sig).or_default();
            if c.delta == delta {
                c.conf = (c.conf + 1).min(3);
            } else {
                c.conf = c.conf.saturating_sub(1);
                if c.conf == 0 {
                    c.delta = delta;
                }
            }
            e.signature = Self::update_signature(prev_sig, delta);
            if self.cspt.len() > 4096 {
                self.cspt.clear();
            }
        }
        // GS training.
        if stream_dir.is_some() {
            e.stream_hits = (e.stream_hits + 1).min(15);
        } else {
            e.stream_hits = e.stream_hits.saturating_sub(1);
        }
        e.last_line = line;

        // Classification & issue: GS > CS > CPLX.
        let (cs_ready, stride) = (e.cs_conf >= 2 && e.stride != 0, e.stride);
        let gs_ready = e.stream_hits >= 8;
        let signature = e.signature;

        if gs_ready {
            let dir = stream_dir.unwrap_or(1);
            for k in 1..=GS_DEGREE {
                out.push(candidate(info.pc, info.va, dir * k, info.first_page_access));
            }
        } else if cs_ready {
            for k in 1..=CS_DEGREE {
                out.push(candidate(
                    info.pc,
                    info.va,
                    stride * k,
                    info.first_page_access,
                ));
            }
        } else {
            // CPLX: walk the CSPT with lookahead.
            let mut sig = signature;
            let mut total = 0i64;
            for _ in 0..CPLX_LOOKAHEAD {
                let Some(c) = self.cspt.get(&sig) else { break };
                if c.conf < 2 || c.delta == 0 {
                    break;
                }
                total += c.delta;
                out.push(candidate(info.pc, info.va, total, info.first_page_access));
                sig = Self::update_signature(sig, c.delta);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagecross_types::VirtAddr;

    fn run(pf: &mut Ipcp, pc: u64, addrs: &[u64]) -> Vec<PrefetchCandidate> {
        let mut out = Vec::new();
        for (i, &a) in addrs.iter().enumerate() {
            let info = AccessInfo {
                pc,
                va: VirtAddr::new(a),
                hit: false,
                cycle: i as u64 * 10,
                first_page_access: false,
            };
            pf.on_access(&info, &mut out);
        }
        out
    }

    #[test]
    fn constant_stride_class_prefetches_multiples() {
        let mut pf = Ipcp::new(1);
        let addrs: Vec<u64> = (0..16).map(|i| 0x40_0000 + i * 192).collect(); // 3-line stride
        let out = run(&mut pf, 0x400, &addrs);
        assert!(!out.is_empty());
        assert!(out.iter().any(|c| c.delta == 3));
        assert!(out.iter().any(|c| c.delta == 12), "degree-4 CS prefetching");
    }

    #[test]
    fn global_stream_class_is_aggressive() {
        let mut pf = Ipcp::new(1);
        // Dense +1 stream from many PCs to trigger the global detector,
        // then one access from a participating PC.
        let mut out = Vec::new();
        for i in 0..200u64 {
            let info = AccessInfo {
                pc: 0x400 + (i % 4),
                va: VirtAddr::new(0x80_0000 + i * 64),
                hit: false,
                cycle: i * 5,
                first_page_access: false,
            };
            out.clear();
            pf.on_access(&info, &mut out);
        }
        assert_eq!(
            out.len(),
            GS_DEGREE as usize,
            "GS issues degree-{GS_DEGREE}"
        );
        assert!(out.iter().all(|c| c.delta > 0));
    }

    #[test]
    fn complex_pattern_via_cspt() {
        let mut pf = Ipcp::new(1);
        // Repeating delta pattern +2, +5, +2, +5... is not constant-stride
        // but perfectly signature-predictable.
        let mut addrs = vec![0x10_0000u64];
        for i in 0..60 {
            let d = if i % 2 == 0 { 2 } else { 5 };
            addrs.push(addrs.last().unwrap() + d * 64);
        }
        let out = run(&mut pf, 0x777, &addrs);
        assert!(
            out.iter()
                .any(|c| c.delta == 2 || c.delta == 5 || c.delta == 7),
            "CSPT should predict pattern deltas, got {:?}",
            out.iter().map(|c| c.delta).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_accesses_stay_mostly_quiet() {
        let mut pf = Ipcp::new(1);
        let mut rng = pagecross_types::Rng64::new(11);
        let addrs: Vec<u64> = (0..300).map(|_| rng.below(1 << 32) & !63).collect();
        let out = run(&mut pf, 0x400, &addrs);
        assert!(
            out.len() < 60,
            "random traffic should not trigger much, got {}",
            out.len()
        );
    }

    #[test]
    fn stream_detector_finds_backward_streams() {
        let mut det = StreamDetector::default();
        let mut dir = None;
        for i in (0..100i64).rev() {
            dir = det.observe(i);
        }
        assert_eq!(dir, Some(-1));
    }

    #[test]
    fn signature_stays_in_range() {
        let mut sig = 0u16;
        for d in [-3i64, 100, 5, -62, 7] {
            sig = Ipcp::update_signature(sig, d);
            assert!(sig < (1 << SIG_BITS));
        }
    }
}
