//! Berti: an accurate local-delta data prefetcher (MICRO'22).
//!
//! Berti learns, per load PC, which *local deltas* (distance in lines
//! between two accesses of the same PC) would have produced **timely**
//! prefetches: when a demand miss completes, it searches the PC's recent
//! access history for earlier accesses that happened early enough that a
//! prefetch launched then would have beaten the miss, and credits the
//! corresponding deltas. Deltas with high coverage become active and are
//! used to issue prefetches on subsequent accesses.
//!
//! This implementation keeps the mechanism (history + fill-time timeliness
//! attribution + per-PC delta table with confidence) and compacts the
//! bookkeeping. Unlike the reference code it does **not** drop candidates
//! at page boundaries — that is the page-cross policy's job.

use crate::{candidate, AccessInfo, L1dPrefetcher};
use pagecross_types::{PrefetchCandidate, VirtAddr};
use std::collections::{HashMap, VecDeque};

const HISTORY_LEN: usize = 64;
const PENDING_LEN: usize = 32;
const MAX_DELTAS_PER_PC: usize = 8;
const MAX_PCS_BASE: usize = 256;
/// Deltas beyond ±4 pages are noise.
const MAX_ABS_DELTA: i64 = 256;
/// Counter value at which a delta becomes active.
const ACTIVE_THRESHOLD: u8 = 4;
const COUNTER_MAX: u8 = 15;

#[derive(Clone, Copy, Debug)]
struct HistEntry {
    pc: u64,
    line: i64,
    cycle: u64,
}

#[derive(Clone, Copy, Debug)]
struct PendingMiss {
    pc: u64,
    line: i64,
    issue_cycle: u64,
}

#[derive(Clone, Debug, Default)]
struct DeltaSet {
    deltas: Vec<(i64, u8)>, // (delta_lines, confidence)
    updates: u16,
}

impl DeltaSet {
    fn credit(&mut self, delta: i64) {
        // Periodic decay: without it, uniformly random deltas accumulate
        // confidence over time and Berti starts spraying garbage (the
        // original evaluates coverage per window for the same reason).
        self.updates += 1;
        if self.updates >= 256 {
            self.updates = 0;
            for (_, c) in &mut self.deltas {
                *c /= 2;
            }
            self.deltas.retain(|(_, c)| *c > 0);
        }
        if let Some(e) = self.deltas.iter_mut().find(|(d, _)| *d == delta) {
            e.1 = (e.1 + 1).min(COUNTER_MAX);
            return;
        }
        if self.deltas.len() < MAX_DELTAS_PER_PC {
            self.deltas.push((delta, 1));
        } else if let Some(weakest) = self.deltas.iter_mut().min_by_key(|(_, c)| *c) {
            if weakest.1 <= 1 {
                *weakest = (delta, 1);
            } else {
                weakest.1 -= 1;
            }
        }
    }

    /// Up to two strongest active deltas.
    fn active(&self) -> impl Iterator<Item = i64> + '_ {
        let mut best: Vec<(i64, u8)> = self
            .deltas
            .iter()
            .copied()
            .filter(|(_, c)| *c >= ACTIVE_THRESHOLD)
            .collect();
        best.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
        best.into_iter().take(2).map(|(d, _)| d)
    }
}

/// The Berti prefetcher.
#[derive(Clone, Debug)]
pub struct Berti {
    history: VecDeque<HistEntry>,
    pending: VecDeque<PendingMiss>,
    per_pc: HashMap<u64, DeltaSet>,
    max_pcs: usize,
}

impl Berti {
    /// Creates a Berti instance. `size_multiplier` scales the per-PC table
    /// capacity (used by the ISO-Storage scenario of Fig. 9).
    ///
    /// # Panics
    ///
    /// Panics if `size_multiplier == 0`.
    pub fn new(size_multiplier: u32) -> Self {
        assert!(size_multiplier > 0, "size multiplier must be positive");
        Self {
            history: VecDeque::with_capacity(HISTORY_LEN),
            pending: VecDeque::with_capacity(PENDING_LEN),
            per_pc: HashMap::new(),
            max_pcs: MAX_PCS_BASE * size_multiplier as usize,
        }
    }

    fn record_history(&mut self, pc: u64, line: i64, cycle: u64) {
        if self.history.len() == HISTORY_LEN {
            self.history.pop_front();
        }
        self.history.push_back(HistEntry { pc, line, cycle });
    }
}

impl L1dPrefetcher for Berti {
    fn name(&self) -> &'static str {
        "berti"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchCandidate>) {
        let line = info.va.line().raw() as i64;

        // Issue from the learned delta set first (pre-update, like hardware
        // would: the table read races the table update).
        if let Some(set) = self.per_pc.get(&info.pc) {
            for delta in set.active() {
                out.push(candidate(info.pc, info.va, delta, info.first_page_access));
            }
        }

        self.record_history(info.pc, line, info.cycle);

        if !info.hit {
            if self.pending.len() == PENDING_LEN {
                self.pending.pop_front();
            }
            self.pending.push_back(PendingMiss {
                pc: info.pc,
                line,
                issue_cycle: info.cycle,
            });
        }
    }

    fn on_fill(&mut self, va: VirtAddr, fill_cycle: u64) {
        let line = va.line().raw() as i64;
        let Some(pos) = self.pending.iter().position(|m| m.line == line) else {
            return;
        };
        let miss = self.pending.remove(pos).expect("position valid");
        let latency = fill_cycle.saturating_sub(miss.issue_cycle);
        // Timely: an access that happened at least `latency` before the fill
        // could have issued a prefetch that arrived in time.
        let deadline = fill_cycle.saturating_sub(latency);
        if self.per_pc.len() >= self.max_pcs && !self.per_pc.contains_key(&miss.pc) {
            self.per_pc.clear(); // bounded storage; cold restart
        }
        let set = self.per_pc.entry(miss.pc).or_default();
        for h in self.history.iter().rev() {
            if h.pc != miss.pc || h.cycle > deadline {
                continue;
            }
            let delta = miss.line - h.line;
            if delta != 0 && delta.abs() <= MAX_ABS_DELTA {
                set.credit(delta);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_stream(
        pf: &mut Berti,
        pc: u64,
        base: u64,
        stride_lines: u64,
        n: u64,
    ) -> Vec<PrefetchCandidate> {
        let mut out = Vec::new();
        for i in 0..n {
            let va = VirtAddr::new(base + i * stride_lines * 64);
            let info = AccessInfo {
                pc,
                va,
                hit: false,
                cycle: i * 100,
                first_page_access: false,
            };
            pf.on_access(&info, &mut out);
            pf.on_fill(va, i * 100 + 50);
        }
        out
    }

    #[test]
    fn learns_unit_stride_stream() {
        let mut pf = Berti::new(1);
        let out = drive_stream(&mut pf, 0x400, 0x10_0000, 1, 64);
        assert!(!out.is_empty(), "trained Berti issues prefetches");
        assert!(
            out.iter().all(|c| c.delta > 0),
            "forward stream gives positive deltas"
        );
    }

    #[test]
    fn learns_large_stride() {
        let mut pf = Berti::new(1);
        let out = drive_stream(&mut pf, 0x400, 0x10_0000, 8, 64);
        assert!(out.iter().any(|c| c.delta % 8 == 0 && c.delta != 0));
    }

    #[test]
    fn produces_page_cross_candidates_on_streams() {
        let mut pf = Berti::new(1);
        let out = drive_stream(&mut pf, 0x400, 0x10_0000, 1, 200);
        assert!(
            out.iter().any(|c| c.crosses_page_4k()),
            "a long stream must eventually cross pages"
        );
    }

    #[test]
    fn untrained_pc_is_silent() {
        let mut pf = Berti::new(1);
        let mut out = Vec::new();
        let info = AccessInfo {
            pc: 0x999,
            va: VirtAddr::new(0x5000),
            hit: false,
            cycle: 0,
            first_page_access: true,
        };
        pf.on_access(&info, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn different_pcs_do_not_share_deltas() {
        let mut pf = Berti::new(1);
        drive_stream(&mut pf, 0x400, 0x10_0000, 1, 64);
        let mut out = Vec::new();
        let info = AccessInfo {
            pc: 0x500,
            va: VirtAddr::new(0x20_0000),
            hit: false,
            cycle: 100_000,
            first_page_access: false,
        };
        pf.on_access(&info, &mut out);
        assert!(out.is_empty(), "PC 0x500 never trained");
    }

    #[test]
    fn random_pattern_stays_quiet() {
        let mut pf = Berti::new(1);
        let mut out = Vec::new();
        let mut rng = pagecross_types::Rng64::new(3);
        for i in 0..200 {
            let va = VirtAddr::new(rng.below(1 << 30) & !63);
            let info = AccessInfo {
                pc: 0x700,
                va,
                hit: false,
                cycle: i * 100,
                first_page_access: false,
            };
            pf.on_access(&info, &mut out);
            pf.on_fill(va, i * 100 + 50);
        }
        // Random deltas never accumulate enough confidence.
        assert!(
            out.len() < 20,
            "random stream should rarely trigger prefetches, got {}",
            out.len()
        );
    }

    #[test]
    fn delta_set_eviction_prefers_weak_entries() {
        let mut set = DeltaSet::default();
        for d in 1..=8i64 {
            set.credit(d);
            set.credit(d);
        }
        for _ in 0..10 {
            set.credit(99); // decays weakest entries, eventually replaces one
        }
        assert!(set.deltas.iter().any(|(d, _)| *d == 99));
    }
}
