//! FNL+MMA instruction prefetcher (Seznec, IPC-1), the L1I prefetcher of
//! the paper's Table IV configuration.
//!
//! Two cooperating predictors, simplified to their cores:
//!
//! * **FNL (Footprint Next Line)** — on fetching a new instruction line,
//!   prefetch the next `degree` sequential lines (most instruction fetch
//!   is sequential).
//! * **MMA (Multiple Miss Ahead)** — a table correlating an instruction
//!   miss line with the *next* miss line observed after it, capturing
//!   taken-branch discontinuities that next-line prefetching cannot.

use std::collections::HashMap;

/// An L1I prefetcher: observes fetched instruction lines, emits line
/// numbers to prefetch.
pub trait L1iPrefetcher {
    /// Prefetcher name.
    fn name(&self) -> &'static str;

    /// Observes a fetch of instruction line `line` with its L1I hit flag;
    /// appends predicted line numbers to `out`.
    fn on_fetch(&mut self, line: u64, hit: bool, out: &mut Vec<u64>);
}

/// The FNL+MMA prefetcher.
#[derive(Clone, Debug)]
pub struct FnlMma {
    degree: u64,
    last_miss: Option<u64>,
    mma: HashMap<u64, u64>,
    max_entries: usize,
}

impl FnlMma {
    /// Creates an instance prefetching `degree` sequential lines ahead.
    ///
    /// # Panics
    ///
    /// Panics if `degree == 0`.
    pub fn new(degree: u64) -> Self {
        assert!(degree > 0, "degree must be positive");
        Self {
            degree,
            last_miss: None,
            mma: HashMap::new(),
            max_entries: 1024,
        }
    }
}

impl Default for FnlMma {
    fn default() -> Self {
        Self::new(2)
    }
}

impl L1iPrefetcher for FnlMma {
    fn name(&self) -> &'static str {
        "fnl+mma"
    }

    fn on_fetch(&mut self, line: u64, hit: bool, out: &mut Vec<u64>) {
        // FNL: sequential footprint.
        for d in 1..=self.degree {
            out.push(line + d);
        }
        // MMA: follow the learned miss successor.
        if let Some(&succ) = self.mma.get(&line) {
            out.push(succ);
        }
        if !hit {
            if let Some(prev) = self.last_miss {
                // Only discontinuities are worth a table entry; sequential
                // successors are already covered by FNL.
                if line != prev + 1 && line != prev {
                    if self.mma.len() >= self.max_entries {
                        self.mma.clear();
                    }
                    self.mma.insert(prev, line);
                }
            }
            self.last_miss = Some(line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnl_prefetches_sequential_lines() {
        let mut p = FnlMma::new(2);
        let mut out = Vec::new();
        p.on_fetch(100, true, &mut out);
        assert_eq!(out, vec![101, 102]);
    }

    #[test]
    fn mma_learns_miss_discontinuities() {
        let mut p = FnlMma::new(1);
        let mut out = Vec::new();
        // Miss at 100, then a discontinuous miss at 500: learn 100 -> 500.
        p.on_fetch(100, false, &mut out);
        p.on_fetch(500, false, &mut out);
        out.clear();
        p.on_fetch(100, true, &mut out);
        assert!(
            out.contains(&500),
            "MMA predicts the learned successor, got {out:?}"
        );
        assert!(out.contains(&101), "FNL still fires");
    }

    #[test]
    fn sequential_misses_do_not_pollute_mma() {
        let mut p = FnlMma::new(1);
        let mut out = Vec::new();
        p.on_fetch(100, false, &mut out);
        p.on_fetch(101, false, &mut out);
        out.clear();
        p.on_fetch(100, true, &mut out);
        assert_eq!(out, vec![101], "no MMA entry for a sequential successor");
    }

    #[test]
    fn table_is_bounded() {
        let mut p = FnlMma::new(1);
        let mut out = Vec::new();
        for i in 0..5_000u64 {
            p.on_fetch(i * 7 + (i % 3) * 1000, false, &mut out);
        }
        assert!(p.mma.len() <= 1024);
    }
}
