//! BOP: Best-Offset Prefetching (HPCA'16).
//!
//! BOP maintains a single global *best offset* selected by a scoring
//! tournament: a Recent-Requests (RR) table remembers lines that were
//! recently filled; each access tests one candidate offset `d` by asking
//! whether `line - d` is in the RR table (i.e., a prefetch at offset `d`
//! launched from that earlier access would have covered this access). The
//! candidate list is scanned round-robin; at the end of a learning round the
//! highest-scoring offset becomes the active prefetch offset.
//!
//! The classic offset list contains values up to 256 lines — four 4 KB
//! pages — so BOP naturally produces page-cross candidates; the reference
//! implementation truncates them, this one hands them to the policy layer.

use crate::{candidate, AccessInfo, L1dPrefetcher};
use pagecross_types::{PrefetchCandidate, VirtAddr};

/// Classic BOP offset candidates: products of small primes up to 256.
const OFFSETS: &[i64] = &[
    1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25, 27, 30, 32, 36, 40, 45, 48, 50, 54, 60,
    64, 72, 75, 80, 81, 90, 96, 100, 108, 120, 125, 128, 135, 144, 150, 160, 162, 180, 192, 200,
    216, 225, 240, 243, 250, 256,
];
const SCORE_MAX: u32 = 31;
const ROUND_MAX: u32 = 100;
const BAD_SCORE: u32 = 1;

/// The BOP prefetcher.
#[derive(Clone, Debug)]
pub struct Bop {
    rr: Vec<u64>, // RR table: line addresses, direct-mapped
    rr_mask: u64,
    scores: Vec<u32>,
    candidate_idx: usize,
    round: u32,
    best_offset: Option<i64>,
    best_score: u32,
    degree: i64,
}

impl Bop {
    /// Creates a BOP instance. `size_multiplier` scales the RR table
    /// (ISO-Storage scenario).
    ///
    /// # Panics
    ///
    /// Panics if `size_multiplier == 0`.
    pub fn new(size_multiplier: u32) -> Self {
        assert!(size_multiplier > 0, "size multiplier must be positive");
        let rr_entries = (256usize * size_multiplier as usize).next_power_of_two();
        Self {
            rr: vec![u64::MAX; rr_entries],
            rr_mask: rr_entries as u64 - 1,
            scores: vec![0; OFFSETS.len()],
            candidate_idx: 0,
            round: 0,
            best_offset: None,
            best_score: 0,
            degree: 1,
        }
    }

    fn rr_insert(&mut self, line: u64) {
        let idx = (line & self.rr_mask) as usize;
        self.rr[idx] = line;
    }

    fn rr_contains(&self, line: u64) -> bool {
        self.rr[(line & self.rr_mask) as usize] == line
    }

    fn end_round(&mut self) {
        // Ties break toward the smallest offset: on a dense stream every
        // offset eventually matches the RR table, and a 256-line winner
        // (chosen by last-max semantics) prefetches four pages ahead of
        // use for no benefit.
        let (best_i, &best_s) = self
            .scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(std::cmp::Ordering::Greater))
            .expect("nonempty scores");
        self.best_offset = (best_s > BAD_SCORE).then(|| OFFSETS[best_i]);
        self.best_score = best_s;
        self.scores.iter_mut().for_each(|s| *s = 0);
        self.round = 0;
        self.candidate_idx = 0;
    }

    /// The currently selected offset, if any (diagnostics).
    pub fn active_offset(&self) -> Option<i64> {
        self.best_offset
    }
}

impl L1dPrefetcher for Bop {
    fn name(&self) -> &'static str {
        "bop"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchCandidate>) {
        let line = info.va.line().raw();

        // Learning: test the current candidate offset against the RR table.
        let cand_off = OFFSETS[self.candidate_idx];
        if line >= cand_off as u64 && self.rr_contains(line - cand_off as u64) {
            self.scores[self.candidate_idx] += 1;
            if self.scores[self.candidate_idx] >= SCORE_MAX {
                self.end_round();
            }
        }
        self.candidate_idx += 1;
        if self.candidate_idx == OFFSETS.len() {
            self.candidate_idx = 0;
            self.round += 1;
            if self.round >= ROUND_MAX {
                self.end_round();
            }
        }

        // Prefetch with the active offset.
        if let Some(off) = self.best_offset {
            for k in 1..=self.degree {
                out.push(candidate(info.pc, info.va, off * k, info.first_page_access));
            }
        }
    }

    fn on_fill(&mut self, va: VirtAddr, _cycle: u64) {
        // BOP inserts the *base* line of completed fills into the RR table
        // (approximating the original's insertion of X - D on fill of X).
        self.rr_insert(va.line().raw());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(pf: &mut Bop, va: u64, cycle: u64, out: &mut Vec<PrefetchCandidate>) {
        let info = AccessInfo {
            pc: 0x400,
            va: VirtAddr::new(va),
            hit: false,
            cycle,
            first_page_access: false,
        };
        pf.on_fill(VirtAddr::new(va), cycle + 30);
        pf.on_access(&info, out);
    }

    #[test]
    fn selects_offset_on_sequential_stream() {
        let mut pf = Bop::new(1);
        let mut out = Vec::new();
        for i in 0..20_000u64 {
            access(&mut pf, 0x100_0000 + i * 64, i * 10, &mut out);
        }
        let off = pf.active_offset().expect("an offset must be selected");
        assert!(off >= 1, "sequential stream selects a positive offset");
        assert!(!out.is_empty());
    }

    #[test]
    fn quiet_until_first_round_completes() {
        let mut pf = Bop::new(1);
        let mut out = Vec::new();
        for i in 0..16u64 {
            access(&mut pf, 0x100_0000 + i * 64, i, &mut out);
        }
        assert!(out.is_empty(), "no offset selected yet");
    }

    #[test]
    fn random_traffic_selects_nothing() {
        let mut pf = Bop::new(1);
        let mut out = Vec::new();
        let mut rng = pagecross_types::Rng64::new(5);
        for i in 0..30_000u64 {
            access(&mut pf, rng.below(1 << 34) & !63, i, &mut out);
        }
        // Random lines almost never match line - d in the RR table, so the
        // best score stays at/below BAD_SCORE for most rounds.
        assert!(out.len() < 1_000, "random traffic should mostly stay quiet");
    }

    #[test]
    fn offset_candidates_include_page_crossing_values() {
        assert!(
            OFFSETS.iter().any(|&o| o > 64),
            "offsets beyond one page exist"
        );
    }

    #[test]
    fn stride_stream_prefers_matching_offset() {
        let mut pf = Bop::new(1);
        let mut out = Vec::new();
        // Stride of 4 lines.
        for i in 0..40_000u64 {
            access(&mut pf, 0x100_0000 + i * 256, i * 10, &mut out);
        }
        let off = pf.active_offset().expect("offset selected");
        assert_eq!(
            off % 4,
            0,
            "selected offset {off} should be a multiple of the stride"
        );
    }

    #[test]
    fn rr_table_is_bounded() {
        let pf = Bop::new(1);
        assert_eq!(pf.rr.len(), 256);
        let pf2 = Bop::new(4);
        assert_eq!(pf2.rr.len(), 1024);
    }
}
