//! Trivial baseline prefetchers: next-line and PC-stride.
//!
//! These are not evaluated in the paper but serve as sanity baselines for
//! the harness and as the simplest possible producers of page-cross
//! candidates (a next-line prefetch on the last line of a page crosses).

use crate::{candidate, AccessInfo, L1dPrefetcher};
use pagecross_types::PrefetchCandidate;
use std::collections::HashMap;

/// Always prefetches the next `degree` lines.
#[derive(Clone, Debug)]
pub struct NextLine {
    degree: i64,
}

impl NextLine {
    /// Creates a next-line prefetcher of the given degree.
    ///
    /// # Panics
    ///
    /// Panics if `degree == 0`.
    pub fn new(degree: u32) -> Self {
        assert!(degree > 0, "degree must be positive");
        Self {
            degree: degree as i64,
        }
    }
}

impl L1dPrefetcher for NextLine {
    fn name(&self) -> &'static str {
        "next-line"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchCandidate>) {
        for d in 1..=self.degree {
            out.push(candidate(info.pc, info.va, d, info.first_page_access));
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct StrideEntry {
    last_line: u64,
    stride: i64,
    confidence: u8,
}

/// Classic per-PC stride prefetcher with 2-bit confidence.
#[derive(Clone, Debug)]
pub struct Stride {
    table: HashMap<u64, StrideEntry>,
    degree: i64,
    max_entries: usize,
}

impl Stride {
    /// Creates a stride prefetcher with the given issue degree.
    pub fn new(degree: u32) -> Self {
        assert!(degree > 0, "degree must be positive");
        Self {
            table: HashMap::new(),
            degree: degree as i64,
            max_entries: 1024,
        }
    }
}

impl L1dPrefetcher for Stride {
    fn name(&self) -> &'static str {
        "stride"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchCandidate>) {
        let line = info.va.line().raw();
        if self.table.len() >= self.max_entries && !self.table.contains_key(&info.pc) {
            self.table.clear(); // crude but bounded
        }
        let e = self.table.entry(info.pc).or_default();
        if e.last_line != 0 {
            let observed = line as i64 - e.last_line as i64;
            if observed != 0 {
                if observed == e.stride {
                    e.confidence = (e.confidence + 1).min(3);
                } else {
                    e.confidence = e.confidence.saturating_sub(1);
                    if e.confidence == 0 {
                        e.stride = observed;
                    }
                }
            }
        }
        e.last_line = line;
        if e.confidence >= 2 && e.stride != 0 {
            for k in 1..=self.degree {
                out.push(candidate(
                    info.pc,
                    info.va,
                    e.stride * k,
                    info.first_page_access,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagecross_types::VirtAddr;

    fn info(pc: u64, va: u64) -> AccessInfo {
        AccessInfo {
            pc,
            va: VirtAddr::new(va),
            hit: false,
            cycle: 0,
            first_page_access: false,
        }
    }

    #[test]
    fn next_line_emits_degree_candidates() {
        let mut p = NextLine::new(3);
        let mut out = Vec::new();
        p.on_access(&info(1, 0x1000), &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].delta, 1);
        assert_eq!(out[2].delta, 3);
    }

    #[test]
    fn next_line_crosses_at_page_end() {
        let mut p = NextLine::new(1);
        let mut out = Vec::new();
        p.on_access(&info(1, 0x1FC0), &mut out);
        assert!(out[0].crosses_page_4k());
    }

    #[test]
    fn stride_learns_constant_stride() {
        let mut p = Stride::new(2);
        let mut out = Vec::new();
        for i in 0..8u64 {
            out.clear();
            p.on_access(&info(7, 0x10000 + i * 256), &mut out); // stride 4 lines
        }
        assert!(!out.is_empty());
        assert_eq!(out[0].delta, 4);
        assert_eq!(out[1].delta, 8);
    }

    #[test]
    fn stride_needs_confidence() {
        let mut p = Stride::new(1);
        let mut out = Vec::new();
        p.on_access(&info(7, 0x10000), &mut out);
        p.on_access(&info(7, 0x10100), &mut out);
        assert!(out.is_empty(), "one observation is not enough");
    }

    #[test]
    fn stride_unlearns_on_pattern_change() {
        let mut p = Stride::new(1);
        let mut out = Vec::new();
        for i in 0..6u64 {
            p.on_access(&info(7, 0x10000 + i * 64), &mut out);
        }
        out.clear();
        // Break the pattern repeatedly; confidence must collapse.
        p.on_access(&info(7, 0x90000), &mut out);
        out.clear();
        p.on_access(&info(7, 0x20000), &mut out);
        out.clear();
        p.on_access(&info(7, 0xF0000), &mut out);
        out.clear();
        p.on_access(&info(7, 0x30000), &mut out);
        assert!(out.is_empty(), "confidence should have collapsed");
    }

    #[test]
    fn distinct_pcs_track_independently() {
        let mut p = Stride::new(1);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for i in 0..8u64 {
            out_a.clear();
            out_b.clear();
            p.on_access(&info(1, 0x10000 + i * 64), &mut out_a);
            p.on_access(&info(2, 0x80000 + i * 128), &mut out_b);
        }
        assert_eq!(out_a[0].delta, 1);
        assert_eq!(out_b[0].delta, 2);
    }
}
