//! Hardware prefetchers for the `pagecross` reproduction.
//!
//! The paper evaluates page-cross filtering for three state-of-the-art L1D
//! prefetchers — **Berti** (MICRO'22), **IPCP** (ISCA'20) and **BOP**
//! (HPCA'16) — plus **SPP** (MICRO'16) as an L2C prefetcher in §V-B7. All
//! four are reimplemented here from their papers, mechanism-faithful but
//! compact.
//!
//! A crucial departure from the reference implementations: the originals
//! *clamp or drop* prefetch candidates at the 4 KB page boundary. Here every
//! prefetcher emits its raw candidates, page-crossing or not, and the
//! page-cross *policy* (crate `moka-pgc`) decides their fate — exactly the
//! decomposition the paper proposes (Fig. 5).
//!
//! # Example
//!
//! ```
//! use pagecross_prefetch::{AccessInfo, Berti, L1dPrefetcher};
//! use pagecross_types::VirtAddr;
//!
//! let mut pf = Berti::new(1);
//! let mut out = Vec::new();
//! // A steady +1-line stream trains Berti to prefetch ahead.
//! for i in 0..256u64 {
//!     let info = AccessInfo {
//!         pc: 0x400100,
//!         va: VirtAddr::new(0x10_0000 + i * 64),
//!         hit: i % 4 != 0,
//!         cycle: i * 10,
//!         first_page_access: false,
//!     };
//!     pf.on_access(&info, &mut out);
//!     pf.on_fill(info.va, info.cycle + 200);
//! }
//! assert!(!out.is_empty(), "a trained Berti issues prefetches");
//! ```

pub mod baseline;
pub mod berti;
pub mod bop;
pub mod fnl;
pub mod ipcp;
pub mod spp;

pub use baseline::{NextLine, Stride};
pub use berti::Berti;
pub use bop::Bop;
pub use fnl::{FnlMma, L1iPrefetcher};
pub use ipcp::Ipcp;
pub use spp::Spp;

use pagecross_types::{PrefetchCandidate, VirtAddr};

/// One demand access as seen by an L1D prefetcher.
#[derive(Clone, Copy, Debug)]
pub struct AccessInfo {
    /// Program counter of the load/store.
    pub pc: u64,
    /// Virtual address accessed.
    pub va: VirtAddr,
    /// The access hit in L1D.
    pub hit: bool,
    /// Cycle of the access.
    pub cycle: u64,
    /// First touch to this 4 KB page (program-feature input).
    pub first_page_access: bool,
}

/// An L1D prefetcher: trained by demand accesses in the virtual address
/// space, emits [`PrefetchCandidate`]s that the page-cross policy filters.
pub trait L1dPrefetcher {
    /// Prefetcher name for reports.
    fn name(&self) -> &'static str;

    /// Observes a demand access and appends prefetch candidates to `out`.
    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchCandidate>);

    /// Observes the completion (fill) of a demand miss; prefetchers that
    /// learn timeliness (Berti) use this. Default: ignored.
    fn on_fill(&mut self, _va: VirtAddr, _cycle: u64) {}
}

/// An L2C prefetcher: trained by L2 accesses in the physical address space,
/// never crosses a physical 4 KB page (§II-A2).
pub trait L2Prefetcher {
    /// Prefetcher name for reports.
    fn name(&self) -> &'static str;

    /// Observes an L2 access (physical byte address) with a hit flag and
    /// appends physical prefetch targets (byte addresses) that stay within
    /// the same 4 KB physical page.
    fn on_access(&mut self, pc: u64, paddr: u64, hit: bool, out: &mut Vec<u64>);
}

pub(crate) fn candidate(
    pc: u64,
    trigger: VirtAddr,
    delta_lines: i64,
    first_page_access: bool,
) -> PrefetchCandidate {
    let target = trigger
        .line_base()
        .offset(delta_lines * pagecross_types::LINE_SIZE as i64);
    PrefetchCandidate {
        pc,
        trigger,
        target,
        delta: delta_lines,
        first_page_access,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_helper_computes_target_and_delta() {
        let c = candidate(0x400, VirtAddr::new(0x1040), 2, false);
        assert_eq!(c.target.raw(), 0x1000 + 0x40 + 2 * 64);
        assert_eq!(c.delta, 2);
        assert!(!c.crosses_page_4k());
    }

    #[test]
    fn candidate_helper_negative_delta_crosses_backward() {
        let c = candidate(0x400, VirtAddr::new(0x1000), -1, true);
        assert!(c.crosses_page_4k());
        assert!(c.first_page_access);
    }
}
