//! SPP: Signature Path Prefetcher (MICRO'16), used at the L2C in §V-B7.
//!
//! SPP tracks, per physical 4 KB page, a compressed *signature* of the
//! recent delta history, and a pattern table mapping signatures to likely
//! next deltas with confidence. Prediction walks the signature path with
//! *lookahead*: each predicted delta extends the signature and multiplies
//! the path confidence; prefetching continues until confidence drops below
//! a threshold or the 4 KB page boundary is reached (L2C prefetchers
//! operate in the physical space and never cross pages).

use crate::L2Prefetcher;
use pagecross_types::{LINE_SHIFT, PAGE_SHIFT_4K};
use std::collections::HashMap;

const SIG_BITS: u32 = 12;
const LOOKAHEAD_MAX: usize = 8;
const CONF_THRESHOLD: f64 = 0.25;
const LINES_PER_PAGE: i64 = 64;

#[derive(Clone, Copy, Debug, Default)]
struct PageEntry {
    signature: u16,
    last_offset: i64,
    valid: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct Pattern {
    delta: i64,
    hits: u16,
    total: u16,
}

/// The SPP prefetcher (L2C, physical address space).
#[derive(Clone, Debug)]
pub struct Spp {
    pages: HashMap<u64, PageEntry>,
    patterns: HashMap<u16, [Pattern; 4]>,
}

impl Spp {
    /// Creates an SPP instance.
    pub fn new() -> Self {
        Self {
            pages: HashMap::new(),
            patterns: HashMap::new(),
        }
    }

    fn update_sig(sig: u16, delta: i64) -> u16 {
        let d = (delta & 0x7F) as u16;
        ((sig << 3) ^ d) & ((1 << SIG_BITS) - 1)
    }

    fn train(&mut self, sig: u16, delta: i64) {
        let slots = self.patterns.entry(sig).or_default();
        // Bump matching slot or replace the weakest.
        if let Some(s) = slots.iter_mut().find(|s| s.total > 0 && s.delta == delta) {
            s.hits = s.hits.saturating_add(1);
        } else {
            let weakest = slots
                .iter_mut()
                .min_by_key(|s| if s.total == 0 { 0 } else { s.hits })
                .expect("4 slots");
            if weakest.total == 0 || weakest.hits <= 1 {
                *weakest = Pattern {
                    delta,
                    hits: 1,
                    total: 0,
                };
            }
        }
        for s in slots.iter_mut() {
            if s.total > 0 || s.hits > 0 {
                s.total = s.total.saturating_add(1);
            }
        }
        if self.patterns.len() > 8192 {
            self.patterns.clear();
        }
    }

    fn best(&self, sig: u16) -> Option<(i64, f64)> {
        let slots = self.patterns.get(&sig)?;
        slots
            .iter()
            .filter(|s| s.total > 2)
            .map(|s| (s.delta, s.hits as f64 / s.total as f64))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

impl Default for Spp {
    fn default() -> Self {
        Self::new()
    }
}

impl L2Prefetcher for Spp {
    fn name(&self) -> &'static str {
        "spp"
    }

    fn on_access(&mut self, _pc: u64, paddr: u64, _hit: bool, out: &mut Vec<u64>) {
        let page = paddr >> PAGE_SHIFT_4K;
        let offset = ((paddr >> LINE_SHIFT) & (LINES_PER_PAGE as u64 - 1)) as i64;

        if self.pages.len() > 4096 {
            self.pages.clear();
        }
        let entry = self.pages.entry(page).or_default();
        let (mut sig, prev_offset, valid) = (entry.signature, entry.last_offset, entry.valid);

        if valid {
            let delta = offset - prev_offset;
            if delta != 0 {
                self.train(sig, delta);
                sig = Self::update_sig(sig, delta);
            }
        }
        // Re-borrow after train() released the map.
        let entry = self.pages.entry(page).or_default();
        entry.signature = sig;
        entry.last_offset = offset;
        entry.valid = true;

        // Lookahead prediction within the page.
        let mut conf = 1.0f64;
        let mut cur_offset = offset;
        let mut cur_sig = sig;
        for _ in 0..LOOKAHEAD_MAX {
            let Some((delta, p)) = self.best(cur_sig) else {
                break;
            };
            conf *= p;
            if conf < CONF_THRESHOLD {
                break;
            }
            cur_offset += delta;
            if !(0..LINES_PER_PAGE).contains(&cur_offset) {
                break; // never cross the physical page
            }
            out.push((page << PAGE_SHIFT_4K) | ((cur_offset as u64) << LINE_SHIFT));
            cur_sig = Self::update_sig(cur_sig, delta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_sequential_pattern_within_page() {
        let mut spp = Spp::new();
        let mut out = Vec::new();
        // Train on many pages with +1 line strides.
        for page in 0..32u64 {
            for off in 0..32u64 {
                out.clear();
                spp.on_access(0, (page << 12) | (off << 6), false, &mut out);
            }
        }
        assert!(!out.is_empty(), "trained SPP predicts ahead");
        // All predictions stay inside the page.
        for &t in &out {
            assert_eq!(t >> 12, 31, "prediction left the page: {t:#x}");
        }
    }

    #[test]
    fn never_crosses_page_boundary() {
        let mut spp = Spp::new();
        let mut out = Vec::new();
        for page in 0..64u64 {
            for off in 0..64u64 {
                out.clear();
                spp.on_access(0, (page << 12) | (off << 6), false, &mut out);
                let this_page = page;
                assert!(
                    out.iter().all(|t| t >> 12 == this_page),
                    "SPP must stay within the physical page"
                );
            }
        }
    }

    #[test]
    fn cold_page_is_silent() {
        let mut spp = Spp::new();
        let mut out = Vec::new();
        spp.on_access(0, 0xABCD_E000, false, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn signature_sharing_across_pages() {
        let mut spp = Spp::new();
        let mut out = Vec::new();
        // Train pattern on pages 0..8, then apply to a fresh page.
        for page in 0..8u64 {
            for step in 0..16u64 {
                out.clear();
                spp.on_access(0, (page << 12) | ((step * 2) << 6), false, &mut out);
            }
        }
        out.clear();
        // Fresh page: first two accesses build the signature, then predict.
        spp.on_access(0, 99 << 12, false, &mut out);
        spp.on_access(0, (99 << 12) | (2 << 6), false, &mut out);
        spp.on_access(0, (99 << 12) | (4 << 6), false, &mut out);
        assert!(
            out.contains(&((99 << 12) | (6 << 6))),
            "cross-page signature reuse predicts +2, got {:?}",
            out.iter().map(|t| format!("{t:#x}")).collect::<Vec<_>>()
        );
    }

    #[test]
    fn lookahead_depth_bounded() {
        let mut spp = Spp::new();
        let mut out = Vec::new();
        for page in 0..64u64 {
            for off in 0..60u64 {
                out.clear();
                spp.on_access(0, (page << 12) | (off << 6), false, &mut out);
            }
        }
        assert!(out.len() <= LOOKAHEAD_MAX);
    }
}
