//! Imitation-OS memory management above the `pagecross-mem` mechanism
//! layer: demand paging, finite physical memory with CLOCK frame
//! reclamation, a khugepaged-style online THP promotion daemon, and TLB
//! shootdowns.
//!
//! The memory system (`crates/mem`) owns the *mechanism* — address
//! spaces, frame pools, TLB/PSC invalidation hooks. This crate owns the
//! *policy*: which virtual pages are resident, which frame backs them,
//! when a region is collapsed to a 2 MB mapping, and who pays for every
//! transition. All latencies are returned to the caller (the CPU engine)
//! in cycles so they land in the faulting core's stall attribution and
//! preserve the exact stall-sum invariant.
//!
//! Deliberate deviations from Linux, chosen for determinism and model
//! economy, are listed in `DESIGN.md` §11: code pages are mapped by a
//! zero-cost loader model, promotion swaps in the whole region as part
//! of the collapse cost, shootdown IPIs broadcast to every core, and
//! split 2 MB frames are never coalesced back (no memory compaction).

use pagecross_mem::{MemorySystem, OomError};
use pagecross_types::{OsOp, OsStats, TraceEvent, VirtAddr};
use std::collections::{HashMap, HashSet, VecDeque};

/// Tunables for the imitation OS. All latencies are in core cycles
/// (4 GHz in the paper's Table IV, so 1 ns = 4 cycles).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OsConfig {
    /// Physical memory size; becomes the frame allocator's capacity.
    pub phys_mem_bytes: u64,
    /// THP aggressiveness in `[0, 1]`. `0.0` disables the promotion
    /// daemon entirely; `1.0` collapses a region on its first resident
    /// page. In between, a region is promoted once
    /// `ceil((1 - thp) * 512)` of its 4 KB pages are resident.
    pub thp: f64,
    /// Minor (first-touch) fault handler latency.
    pub minor_fault_cycles: u64,
    /// Major (swapped-out) fault latency, including device swap-in.
    pub major_fault_cycles: u64,
    /// Cost of receiving one shootdown IPI, charged to the receiving
    /// core at its next memory access.
    pub ipi_cycles: u64,
    /// Cost of collapsing a region to a 2 MB mapping, charged to the
    /// core whose fault tipped the region over the threshold.
    pub promote_cycles: u64,
}

impl Default for OsConfig {
    fn default() -> Self {
        OsConfig {
            phys_mem_bytes: 4 << 30,
            thp: 0.0,
            minor_fault_cycles: 4_000,
            major_fault_cycles: 32_000,
            ipi_cycles: 800,
            promote_cycles: 2_000,
        }
    }
}

impl OsConfig {
    /// Number of resident 4 KB pages at which a 2 MB region is
    /// collapsed. `u64::MAX` when the daemon is off.
    pub fn promote_threshold(&self) -> u64 {
        if self.thp <= 0.0 {
            return u64::MAX;
        }
        let t = ((1.0 - self.thp.min(1.0)) * 512.0).ceil() as u64;
        t.max(1)
    }
}

const PAGES_PER_REGION: u64 = 512;

/// Per-core pager state. Every core runs its own process (separate
/// address space), so residency bookkeeping is per core; only the frame
/// pools (partitioned per core inside `FrameAllocator`) and the
/// shootdown broadcast are shared.
#[derive(Default)]
struct CorePager {
    /// Resident 4 KB pages: vpn4k -> CLOCK referenced bit.
    pages: HashMap<u64, bool>,
    /// CLOCK hand order over reclaimable 4 KB pages (lazy deletion:
    /// stale entries are skipped when popped).
    clock: VecDeque<u64>,
    /// Resident 2 MB regions: vpn2m -> CLOCK referenced bit.
    huge: HashMap<u64, bool>,
    clock_huge: VecDeque<u64>,
    /// Pages that were reclaimed; their next touch is a major fault.
    swapped: HashSet<u64>,
    /// Code pages mapped by the loader model: never reclaimed.
    pinned: HashSet<u64>,
    /// Resident 4 KB pages per 2 MB region (promotion trigger).
    region_resident: HashMap<u64, u64>,
    /// Pinned pages per region (a pinned page blocks collapse).
    region_pinned: HashMap<u64, u64>,
    /// 4 KB frames carved out of demoted 2 MB frames, available for
    /// reuse. Split frames are never coalesced back (no compaction).
    free_subframes: Vec<u64>,
    /// Shootdown IPIs not yet acknowledged; drained (and charged) at
    /// this core's next memory access.
    pending_ipis: u64,
    stats: OsStats,
}

/// The imitation OS: one instance per simulation, spanning all cores.
pub struct Os {
    cfg: OsConfig,
    pagers: Vec<CorePager>,
}

impl Os {
    pub fn new(cfg: OsConfig, n_cores: usize) -> Self {
        let pagers = (0..n_cores).map(|_| CorePager::default()).collect();
        Os { cfg, pagers }
    }

    pub fn config(&self) -> &OsConfig {
        &self.cfg
    }

    pub fn n_cores(&self) -> usize {
        self.pagers.len()
    }

    /// Counters for one core since the last [`Os::reset_stats`].
    pub fn stats(&self, core: usize) -> OsStats {
        self.pagers[core].stats
    }

    /// Sum over all cores.
    pub fn total_stats(&self) -> OsStats {
        let mut t = OsStats::default();
        for p in &self.pagers {
            t.accumulate(&p.stats);
        }
        t
    }

    /// Zeroes the counters (warmup/measure boundary). Residency state
    /// is deliberately kept — the page cache survives the boundary.
    pub fn reset_stats(&mut self) {
        for p in &mut self.pagers {
            p.stats = OsStats::default();
        }
    }

    /// True when a demand access to `va` would not fault. Used by the
    /// engine to gate prefetch page walks: a prefetcher is never
    /// allowed to fault a page in.
    pub fn is_resident(&self, core: usize, va: VirtAddr) -> bool {
        let p = &self.pagers[core];
        p.huge.contains_key(&va.page_2m().raw()) || p.pages.contains_key(&va.page_4k().raw())
    }

    /// The demand-paging front door: called by the engine before every
    /// load/store is handed to the memory system. Ensures the page is
    /// resident and returns the cycles to charge to this access (IPI
    /// acknowledgements, fault handling, THP collapse). Zero on the hot
    /// path (page resident, no pending IPIs).
    pub fn before_access(
        &mut self,
        mem: &mut MemorySystem,
        core: usize,
        va: VirtAddr,
        cycle: u64,
    ) -> Result<u64, OomError> {
        let vpn4k = va.page_4k().raw();
        let vpn2m = va.page_2m().raw();
        let mut charge = self.drain_ipis(core);

        let p = &mut self.pagers[core];
        if let Some(r) = p.huge.get_mut(&vpn2m) {
            *r = true;
            p.stats.fault_cycles += charge;
            return Ok(charge);
        }
        if let Some(r) = p.pages.get_mut(&vpn4k) {
            *r = true;
            p.stats.fault_cycles += charge;
            return Ok(charge);
        }

        // Fault path.
        let major = p.swapped.remove(&vpn4k);
        let fault_cost = if major {
            p.stats.major_faults += 1;
            self.cfg.major_fault_cycles
        } else {
            p.stats.minor_faults += 1;
            self.cfg.minor_fault_cycles
        };
        charge += fault_cost;

        let pfn = self.alloc_4k_with_reclaim(mem, core, cycle)?;
        let (vmem, _) = mem.vmem_and_frames(core);
        vmem.map_4k_at(vpn4k, pfn);
        let p = &mut self.pagers[core];
        p.pages.insert(vpn4k, true);
        p.clock.push_back(vpn4k);
        *p.region_resident.entry(vpn2m).or_insert(0) += 1;
        let op = if major {
            OsOp::MajorFault
        } else {
            OsOp::MinorFault
        };
        mem.push_event(
            core,
            cycle,
            TraceEvent::Os {
                op,
                va_page: vpn4k,
                cycles: fault_cost,
            },
        );

        charge += self.maybe_promote(mem, core, vpn2m, cycle);
        self.pagers[core].stats.fault_cycles += charge;
        Ok(charge)
    }

    /// Loader model for code pages: maps the page holding `va` without
    /// charging fault latency (the binary is assumed pre-faulted by the
    /// loader) and pins it so the reclaimer never evicts the working
    /// text. Reclaims it forces on a full pool are still real and
    /// counted.
    pub fn pin_code_page(
        &mut self,
        mem: &mut MemorySystem,
        core: usize,
        va: VirtAddr,
        cycle: u64,
    ) -> Result<(), OomError> {
        let vpn4k = va.page_4k().raw();
        let vpn2m = va.page_2m().raw();
        let p = &mut self.pagers[core];
        if p.huge.contains_key(&vpn2m) {
            return Ok(());
        }
        if p.pages.contains_key(&vpn4k) {
            if p.pinned.insert(vpn4k) {
                *p.region_pinned.entry(vpn2m).or_insert(0) += 1;
            }
            return Ok(());
        }
        p.swapped.remove(&vpn4k);
        let pfn = self.alloc_4k_with_reclaim(mem, core, cycle)?;
        let (vmem, _) = mem.vmem_and_frames(core);
        vmem.map_4k_at(vpn4k, pfn);
        let p = &mut self.pagers[core];
        p.pages.insert(vpn4k, true);
        p.pinned.insert(vpn4k);
        *p.region_pinned.entry(vpn2m).or_insert(0) += 1;
        *p.region_resident.entry(vpn2m).or_insert(0) += 1;
        Ok(())
    }

    fn drain_ipis(&mut self, core: usize) -> u64 {
        let p = &mut self.pagers[core];
        if p.pending_ipis == 0 {
            return 0;
        }
        let n = p.pending_ipis;
        p.pending_ipis = 0;
        p.stats.ipis_received += n;
        n * self.cfg.ipi_cycles
    }

    /// A 4 KB frame for `core`, reclaiming (and if necessary demoting a
    /// 2 MB mapping) until one is free. Split-frame slots are preferred
    /// so demotions actually relieve 4 KB-pool pressure.
    fn alloc_4k_with_reclaim(
        &mut self,
        mem: &mut MemorySystem,
        core: usize,
        cycle: u64,
    ) -> Result<u64, OomError> {
        loop {
            if let Some(pfn) = self.pagers[core].free_subframes.pop() {
                return Ok(pfn);
            }
            match mem.frames_mut().alloc_4k(core as u32) {
                Ok(pfn) => return Ok(pfn),
                Err(e) => self.reclaim_one(mem, core, cycle).map_err(|_| e)?,
            }
        }
    }

    /// Evicts one 4 KB page chosen by CLOCK second-chance; when the
    /// 4 KB clock is exhausted (everything pinned or already huge),
    /// demotes one 2 MB region to refill it. Errors only when nothing
    /// reclaimable remains.
    fn reclaim_one(
        &mut self,
        mem: &mut MemorySystem,
        core: usize,
        cycle: u64,
    ) -> Result<(), OomError> {
        let victim = match self.pick_victim_4k(core) {
            Some(v) => v,
            None => {
                if !self.demote_one(mem, core, cycle) {
                    return Err(OomError::Frames4K);
                }
                self.pick_victim_4k(core).ok_or(OomError::Frames4K)?
            }
        };
        self.evict_4k(mem, core, victim, cycle);
        Ok(())
    }

    /// CLOCK hand over the 4 KB residency list: referenced pages get a
    /// second chance, stale and pinned entries are skipped lazily.
    fn pick_victim_4k(&mut self, core: usize) -> Option<u64> {
        let p = &mut self.pagers[core];
        let mut budget = 2 * p.clock.len() + 1;
        while budget > 0 {
            budget -= 1;
            let vpn = p.clock.pop_front()?;
            if p.pinned.contains(&vpn) {
                continue;
            }
            match p.pages.get_mut(&vpn) {
                None => continue, // promoted away or already evicted
                Some(r) if *r => {
                    *r = false;
                    p.clock.push_back(vpn);
                }
                Some(_) => return Some(vpn),
            }
        }
        None
    }

    fn pick_victim_2m(&mut self, core: usize) -> Option<u64> {
        let p = &mut self.pagers[core];
        let mut budget = 2 * p.clock_huge.len() + 1;
        while budget > 0 {
            budget -= 1;
            let vpn2m = p.clock_huge.pop_front()?;
            match p.huge.get_mut(&vpn2m) {
                None => continue,
                Some(r) if *r => {
                    *r = false;
                    p.clock_huge.push_back(vpn2m);
                }
                Some(_) => return Some(vpn2m),
            }
        }
        None
    }

    fn evict_4k(&mut self, mem: &mut MemorySystem, core: usize, vpn4k: u64, cycle: u64) {
        let huge_base = mem.frames_mut().huge_region_base();
        let (vmem, frames) = mem.vmem_and_frames(core);
        let pfn = vmem.unmap_4k(vpn4k).expect("victim must be mapped");
        let p = &mut self.pagers[core];
        p.pages.remove(&vpn4k);
        let vpn2m = vpn4k >> 9;
        if let Some(n) = p.region_resident.get_mut(&vpn2m) {
            *n -= 1;
            if *n == 0 {
                p.region_resident.remove(&vpn2m);
            }
        }
        if pfn >= huge_base {
            // Carved out of a demoted 2 MB frame: recycle the slot.
            p.free_subframes.push(pfn);
        } else {
            frames.free_4k(pfn);
        }
        p.swapped.insert(vpn4k);
        p.stats.reclaims += 1;
        mem.push_event(
            core,
            cycle,
            TraceEvent::Os {
                op: OsOp::Reclaim,
                va_page: vpn4k,
                cycles: 0,
            },
        );
        self.broadcast_page(mem, core, vpn4k, cycle);
    }

    /// Splits one CLOCK-chosen 2 MB mapping back into 512 resident
    /// 4 KB pages backed by the same physical frame, making them
    /// individually reclaimable. Returns false when no region is
    /// resident.
    fn demote_one(&mut self, mem: &mut MemorySystem, core: usize, cycle: u64) -> bool {
        let Some(vpn2m) = self.pick_victim_2m(core) else {
            return false;
        };
        let p = &mut self.pagers[core];
        p.huge.remove(&vpn2m);
        let (vmem, _) = mem.vmem_and_frames(core);
        let pfn2m = vmem.unmap_2m(vpn2m).expect("huge victim must be mapped");
        let lo = vpn2m << 9;
        for idx in 0..PAGES_PER_REGION {
            vmem.map_4k_at(lo + idx, (pfn2m << 9) + idx);
        }
        let p = &mut self.pagers[core];
        for idx in 0..PAGES_PER_REGION {
            p.pages.insert(lo + idx, false);
            p.clock.push_back(lo + idx);
        }
        p.region_resident.insert(vpn2m, PAGES_PER_REGION);
        p.stats.thp_demotions += 1;
        mem.push_event(
            core,
            cycle,
            TraceEvent::Os {
                op: OsOp::Demote,
                va_page: vpn2m,
                cycles: 0,
            },
        );
        self.broadcast_region(mem, core, vpn2m, cycle);
        true
    }

    /// khugepaged step: collapses `vpn2m` to a 2 MB mapping when enough
    /// of its pages are resident, none are pinned, and a 2 MB frame is
    /// available (allocation failure skips silently, like khugepaged
    /// backing off). Previously swapped pages of the region come back
    /// in as part of the collapse cost. Returns the cycles charged.
    fn maybe_promote(
        &mut self,
        mem: &mut MemorySystem,
        core: usize,
        vpn2m: u64,
        cycle: u64,
    ) -> u64 {
        let threshold = self.cfg.promote_threshold();
        {
            let p = &self.pagers[core];
            if p.huge.contains_key(&vpn2m)
                || p.region_pinned.get(&vpn2m).copied().unwrap_or(0) > 0
                || p.region_resident.get(&vpn2m).copied().unwrap_or(0) < threshold
            {
                return 0;
            }
        }
        let Ok(pfn2m) = mem.frames_mut().alloc_2m(core as u32) else {
            return 0;
        };
        let huge_base = mem.frames_mut().huge_region_base();
        let (vmem, frames) = mem.vmem_and_frames(core);
        let moved = vmem.take_region_4k(vpn2m);
        let p = &mut self.pagers[core];
        for (vpn, pfn) in &moved {
            p.pages.remove(vpn);
            if *pfn >= huge_base {
                p.free_subframes.push(*pfn);
            } else {
                frames.free_4k(*pfn);
            }
        }
        let lo = vpn2m << 9;
        for vpn in lo..lo + PAGES_PER_REGION {
            p.swapped.remove(&vpn);
        }
        vmem.map_2m_at(vpn2m, pfn2m);
        p.huge.insert(vpn2m, true);
        p.clock_huge.push_back(vpn2m);
        p.region_resident.remove(&vpn2m);
        p.stats.thp_promotions += 1;
        mem.push_event(
            core,
            cycle,
            TraceEvent::Os {
                op: OsOp::Promote,
                va_page: vpn2m,
                cycles: self.cfg.promote_cycles,
            },
        );
        self.broadcast_region(mem, core, vpn2m, cycle);
        self.cfg.promote_cycles
    }

    /// One shootdown broadcast: flush the page everywhere, count one
    /// shootdown on the initiator, queue an IPI for every other core.
    fn broadcast_page(&mut self, mem: &mut MemorySystem, core: usize, vpn4k: u64, cycle: u64) {
        mem.shootdown_page(vpn4k);
        self.finish_broadcast(mem, core, vpn4k, cycle);
    }

    fn broadcast_region(&mut self, mem: &mut MemorySystem, core: usize, vpn2m: u64, cycle: u64) {
        mem.shootdown_region(vpn2m);
        self.finish_broadcast(mem, core, vpn2m, cycle);
    }

    fn finish_broadcast(&mut self, mem: &mut MemorySystem, core: usize, va_page: u64, cycle: u64) {
        self.pagers[core].stats.shootdowns += 1;
        for (i, p) in self.pagers.iter_mut().enumerate() {
            if i != core {
                p.pending_ipis += 1;
            }
        }
        mem.push_event(
            core,
            cycle,
            TraceEvent::Os {
                op: OsOp::Shootdown,
                va_page,
                cycles: self.cfg.ipi_cycles,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagecross_mem::vmem::HugePagePolicy;
    use pagecross_mem::MemConfig;

    const MB: u64 = 1 << 20;

    fn sys(cores: usize) -> MemorySystem {
        let mut cfg = MemConfig::table_iv(1);
        cfg.dram.capacity_bytes = 64 * MB;
        MemorySystem::new(cfg, cores, HugePagePolicy::None, 42)
    }

    fn os(thp: f64, cores: usize) -> Os {
        let cfg = OsConfig {
            phys_mem_bytes: 64 * MB,
            thp,
            ..OsConfig::default()
        };
        Os::new(cfg, cores)
    }

    #[test]
    fn promote_threshold_scales_with_thp() {
        let mut c = OsConfig::default();
        assert_eq!(c.promote_threshold(), u64::MAX);
        c.thp = 1.0;
        assert_eq!(c.promote_threshold(), 1);
        c.thp = 0.5;
        assert_eq!(c.promote_threshold(), 256);
        c.thp = 0.25;
        assert_eq!(c.promote_threshold(), 384);
        c.thp = 0.001;
        assert!(c.promote_threshold() <= 512);
    }

    #[test]
    fn first_touch_is_a_minor_fault_second_is_free() {
        let mut mem = sys(1);
        let mut os = os(0.0, 1);
        let va = VirtAddr::new(0x1234_5678);
        let c1 = os.before_access(&mut mem, 0, va, 0).unwrap();
        assert_eq!(c1, os.config().minor_fault_cycles);
        let c2 = os.before_access(&mut mem, 0, va, 10).unwrap();
        assert_eq!(c2, 0);
        let s = os.stats(0);
        assert_eq!(s.minor_faults, 1);
        assert_eq!(s.major_faults, 0);
        assert_eq!(s.fault_cycles, c1);
        assert!(os.is_resident(0, va));
        assert!(!os.is_resident(0, VirtAddr::new(0xdead_0000)));
    }

    #[test]
    fn pressure_reclaims_then_major_faults_on_return() {
        let mut mem = sys(1);
        let mut os = os(0.0, 1);
        // 64 MB => 8192 4 KB pool frames. Touch well past that.
        let n = mem.frames_mut().total_4k_frames() + 512;
        for i in 0..n {
            os.before_access(&mut mem, 0, VirtAddr::new(i << 12), i)
                .unwrap();
        }
        let s = os.stats(0);
        assert_eq!(s.minor_faults, n);
        assert!(s.reclaims >= 512, "reclaims: {}", s.reclaims);
        assert_eq!(s.shootdowns, s.reclaims);
        // Page 0 was evicted long ago: coming back is a major fault.
        let c = os
            .before_access(&mut mem, 0, VirtAddr::new(0), n + 1)
            .unwrap();
        assert_eq!(c, os.config().major_fault_cycles);
        assert_eq!(os.stats(0).major_faults, 1);
    }

    #[test]
    fn clock_gives_referenced_pages_a_second_chance() {
        let mut mem = sys(1);
        let mut os = os(0.0, 1);
        let total = mem.frames_mut().total_4k_frames();
        for i in 0..total {
            os.before_access(&mut mem, 0, VirtAddr::new(i << 12), i)
                .unwrap();
        }
        // First overflow: every page is freshly referenced, so the full
        // CLOCK pass clears all bits and evicts page 0.
        os.before_access(&mut mem, 0, VirtAddr::new(total << 12), total)
            .unwrap();
        assert!(!os.is_resident(0, VirtAddr::new(0)));
        // Re-reference page 1, then overflow again: CLOCK must give
        // page 1 its second chance and evict page 2 instead.
        os.before_access(&mut mem, 0, VirtAddr::new(1 << 12), total + 1)
            .unwrap();
        os.before_access(&mut mem, 0, VirtAddr::new((total + 1) << 12), total + 2)
            .unwrap();
        assert!(os.is_resident(0, VirtAddr::new(1 << 12)));
        assert!(!os.is_resident(0, VirtAddr::new(2 << 12)));
    }

    #[test]
    fn aggressive_thp_promotes_on_first_touch() {
        let mut mem = sys(1);
        let mut os = os(1.0, 1);
        let va = VirtAddr::new(5 << 21);
        let c = os.before_access(&mut mem, 0, va, 0).unwrap();
        assert_eq!(
            c,
            os.config().minor_fault_cycles + os.config().promote_cycles
        );
        let s = os.stats(0);
        assert_eq!(s.thp_promotions, 1);
        assert_eq!(s.shootdowns, 1);
        // The whole region is now resident without further faults.
        let c2 = os
            .before_access(&mut mem, 0, VirtAddr::new((5 << 21) + 300 * 4096), 1)
            .unwrap();
        assert_eq!(c2, 0);
        assert_eq!(os.stats(0).minor_faults, 1);
    }

    #[test]
    fn fractional_thp_waits_for_the_threshold() {
        let mut mem = sys(1);
        let mut os = os(0.5, 1); // threshold = 256 resident pages
        for i in 0..255 {
            os.before_access(&mut mem, 0, VirtAddr::new(i << 12), i)
                .unwrap();
        }
        assert_eq!(os.stats(0).thp_promotions, 0);
        os.before_access(&mut mem, 0, VirtAddr::new(255 << 12), 255)
            .unwrap();
        assert_eq!(os.stats(0).thp_promotions, 1);
        assert!(os.is_resident(0, VirtAddr::new(511 << 12)));
    }

    #[test]
    fn pinned_code_pages_block_promotion_and_reclaim() {
        let mut mem = sys(1);
        let mut os = os(1.0, 1);
        let code = VirtAddr::new(7 << 21);
        os.pin_code_page(&mut mem, 0, code, 0).unwrap();
        assert!(os.is_resident(0, code));
        assert_eq!(os.stats(0).minor_faults, 0, "loader model charges nothing");
        // A data touch in the same region would normally promote
        // (thp=1.0) but the pinned page blocks it.
        os.before_access(&mut mem, 0, VirtAddr::new((7 << 21) + 4096), 1)
            .unwrap();
        assert_eq!(os.stats(0).thp_promotions, 0);
    }

    #[test]
    fn pinned_code_pages_survive_reclaim_pressure() {
        let mut mem = sys(1);
        let mut os = os(0.0, 1);
        let code = VirtAddr::new(7 << 21);
        os.pin_code_page(&mut mem, 0, code, 0).unwrap();
        let total = mem.frames_mut().total_4k_frames();
        for i in 0..total + 64 {
            os.before_access(&mut mem, 0, VirtAddr::new((1 << 30) + (i << 12)), i)
                .unwrap();
        }
        assert!(os.stats(0).reclaims > 0);
        assert!(os.is_resident(0, code));
    }

    #[test]
    fn demotion_splits_a_region_under_pressure() {
        let mut mem = sys(1);
        let mut os = os(1.0, 1);
        // Promote every 2 MB frame the pool has (12 at 64 MB).
        let n2m = mem.frames_mut().total_2m_frames();
        for r in 0..n2m {
            os.before_access(&mut mem, 0, VirtAddr::new(r << 21), r)
                .unwrap();
        }
        assert_eq!(os.stats(0).thp_promotions, n2m);
        // Now pin the whole 4 KB pool so CLOCK has nothing to evict,
        // then fault one more data page: the OS must demote a region
        // and recycle one of its sub-frames.
        let total = mem.frames_mut().total_4k_frames();
        for i in 0..total {
            os.pin_code_page(&mut mem, 0, VirtAddr::new((1 << 31) + (i << 12)), i)
                .unwrap();
        }
        os.before_access(&mut mem, 0, VirtAddr::new(1 << 32), 99)
            .unwrap();
        let s = os.stats(0);
        assert_eq!(s.thp_demotions, 1);
        assert!(s.reclaims >= 1);
        assert!(os.is_resident(0, VirtAddr::new(1 << 32)));
    }

    #[test]
    fn shootdowns_queue_ipis_for_other_cores() {
        let mut mem = sys(2);
        let mut os = os(1.0, 2);
        // Core 0 promotes a region -> broadcast -> core 1 owes an IPI.
        os.before_access(&mut mem, 0, VirtAddr::new(3 << 21), 0)
            .unwrap();
        assert_eq!(os.stats(0).shootdowns, 1);
        assert_eq!(os.stats(1).ipis_received, 0);
        // Core 1's next access pays the IPI on top of its own fault
        // (and, at thp=1.0, its own first-touch collapse).
        let c = os
            .before_access(&mut mem, 1, VirtAddr::new(0x9000), 5)
            .unwrap();
        assert_eq!(
            c,
            os.config().ipi_cycles + os.config().minor_fault_cycles + os.config().promote_cycles
        );
        assert_eq!(os.stats(1).ipis_received, 1);
    }

    #[test]
    fn reset_stats_keeps_residency() {
        let mut mem = sys(1);
        let mut os = os(0.0, 1);
        let va = VirtAddr::new(0xabc0_0000);
        os.before_access(&mut mem, 0, va, 0).unwrap();
        os.reset_stats();
        assert_eq!(os.stats(0), OsStats::default());
        assert!(os.is_resident(0, va));
        assert_eq!(os.before_access(&mut mem, 0, va, 1).unwrap(), 0);
    }

    #[test]
    fn total_stats_accumulates_cores() {
        let mut mem = sys(2);
        let mut os = os(0.0, 2);
        os.before_access(&mut mem, 0, VirtAddr::new(0x1000), 0)
            .unwrap();
        os.before_access(&mut mem, 1, VirtAddr::new(0x2000), 0)
            .unwrap();
        assert_eq!(os.total_stats().minor_faults, 2);
    }
}
