//! The workload registry: 218 seen + 178 unseen memory-intensive synthetic
//! workloads plus a non-intensive set, organised into suites mirroring the
//! paper's §IV-A benchmark sources.
//!
//! Seen and unseen workloads are drawn from the same per-suite template
//! families but from disjoint seed spaces, reproducing the paper's
//! development/validation split (§V-B8). QMM workloads carry the shorter
//! warm-up/measure lengths of the CVP-1 methodology.

use crate::gen::{Component, GenParams, Phase, SyntheticTrace};
use pagecross_cpu::trace::{TraceFactory, TraceSource};
use std::sync::OnceLock;

/// Benchmark suites (paper §IV-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SuiteId {
    /// SPEC CPU 2006-like general-purpose workloads.
    Spec06,
    /// SPEC CPU 2017-like general-purpose workloads.
    Spec17,
    /// GAP-like graph kernels (big footprints, high TLB pressure).
    Gap,
    /// Ligra-like graph kernels.
    Ligra,
    /// PARSEC-like parallel-application slices.
    Parsec,
    /// Geekbench-5-like mixed workloads.
    Gkb5,
    /// Qualcomm CVP-1 integer traces (short-running).
    QmmInt,
    /// Qualcomm CVP-1 floating-point traces (short-running).
    QmmFp,
}

impl SuiteId {
    /// All suites, in report order.
    pub const ALL: [SuiteId; 8] = [
        SuiteId::Spec06,
        SuiteId::Spec17,
        SuiteId::Gap,
        SuiteId::Ligra,
        SuiteId::Parsec,
        SuiteId::Gkb5,
        SuiteId::QmmInt,
        SuiteId::QmmFp,
    ];

    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            SuiteId::Spec06 => "spec06",
            SuiteId::Spec17 => "spec17",
            SuiteId::Gap => "gap",
            SuiteId::Ligra => "ligra",
            SuiteId::Parsec => "parsec",
            SuiteId::Gkb5 => "gkb5",
            SuiteId::QmmInt => "qmm_int",
            SuiteId::QmmFp => "qmm_fp",
        }
    }

    /// (seen, unseen) workload counts per suite; totals 218 / 178.
    fn counts(self) -> (usize, usize) {
        match self {
            SuiteId::Spec06 => (40, 30),
            SuiteId::Spec17 => (40, 30),
            SuiteId::Gap => (24, 18),
            SuiteId::Ligra => (24, 18),
            SuiteId::Parsec => (20, 16),
            SuiteId::Gkb5 => (20, 18),
            SuiteId::QmmInt => (25, 24),
            SuiteId::QmmFp => (25, 24),
        }
    }
}

/// One registered workload.
#[derive(Clone, Debug)]
pub struct Workload {
    name: String,
    suite: SuiteId,
    params: GenParams,
    intensive: bool,
    seen: bool,
}

impl Workload {
    /// The suite this workload belongs to.
    pub fn suite(&self) -> SuiteId {
        self.suite
    }

    /// True for memory-intensive workloads (LLC MPKI ≥ 1 territory).
    pub fn is_intensive(&self) -> bool {
        self.intensive
    }

    /// True for workloads in the 218-strong "seen" (development) set.
    pub fn is_seen(&self) -> bool {
        self.seen
    }

    /// Generator parameters (ablation tooling).
    pub fn params(&self) -> &GenParams {
        &self.params
    }

    /// Default (warm-up, measured) instruction counts, scaled from the
    /// paper's methodology: QMM traces are short (§IV-A1).
    pub fn default_lengths(&self) -> (u64, u64) {
        match self.suite {
            SuiteId::QmmInt | SuiteId::QmmFp => (25_000, 50_000),
            _ => (50_000, 100_000),
        }
    }
}

impl TraceFactory for Workload {
    fn name(&self) -> &str {
        &self.name
    }

    fn build(&self) -> Box<dyn TraceSource> {
        Box::new(SyntheticTrace::new(self.params.clone()))
    }
}

/// A suite's workload collection.
#[derive(Clone, Debug)]
pub struct Suite {
    id: SuiteId,
    workloads: Vec<Workload>,
}

impl Suite {
    /// Suite identity.
    pub fn id(&self) -> SuiteId {
        self.id
    }

    /// All workloads (seen + unseen + non-intensive).
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }
}

// ---------------------------------------------------------------------------
// Template families per suite.
// ---------------------------------------------------------------------------

fn mix(phases: Vec<Phase>, load: f64, phase_len: u64, seed: u64) -> GenParams {
    GenParams {
        load_ratio: load,
        store_ratio: load * 0.25,
        branch_ratio: 0.12,
        branch_predictability: 0.96,
        phases,
        phase_len,
        code_lines: 32,
        seed,
    }
}

fn one(components: Vec<(Component, u32)>) -> Vec<Phase> {
    vec![Phase { components }]
}

/// Builds the `idx`-th template of a suite, perturbed by `seed`.
fn template(suite: SuiteId, idx: usize, seed: u64) -> GenParams {
    use Component::*;
    // Seed-derived size scaling keeps members of a family distinct.
    let scale = 1 + (seed % 3);
    let pages_big = 2048 * scale;
    let pages_mid = 512 * scale;
    match suite {
        SuiteId::Spec06 | SuiteId::Spec17 => match idx % 7 {
            // libquantum/lbm-like pure stream: page-cross friendly.
            0 => mix(
                one(vec![(
                    Stream {
                        stride_lines: 1,
                        pages: pages_big,
                    },
                    1,
                )]),
                0.28,
                64_000,
                seed,
            ),
            // sphinx3/fotonik-like segmented over a TLB-exceeding footprint:
            // page-cross hostile.
            1 => mix(
                one(vec![(SegmentedStream { pages: pages_big }, 1)]),
                0.30,
                64_000,
                seed,
            ),
            // mcf-like chase.
            2 => mix(
                one(vec![(Chase { pages: pages_big }, 1)]),
                0.22,
                64_000,
                seed,
            ),
            // astar-like TLB-bound strided stream: crosses pages every few
            // accesses, very page-cross friendly.
            3 => mix(
                one(vec![(
                    Stream {
                        stride_lines: 16,
                        pages: pages_big,
                    },
                    1,
                )]),
                0.26,
                64_000,
                seed,
            ),
            // stencil sweep: every touch lands on a new page, predictable
            // large delta.
            4 => mix(
                one(vec![(
                    Stencil {
                        row_lines: 80,
                        rows: 128 * scale,
                    },
                    1,
                )]),
                0.27,
                64_000,
                seed,
            ),
            // phase-flipping stream: the same PC/delta is page-cross
            // friendly and hostile in alternating phases.
            5 => mix(
                one(vec![(
                    AlternatingStream {
                        pages: pages_big,
                        period_pages: 24,
                    },
                    1,
                )]),
                0.28,
                64_000,
                seed,
            ),
            // twin streams from one PC: useful and harmful page-cross
            // deltas share every trigger-level feature.
            _ => mix(
                one(vec![(TwinStream { pages: pages_mid }, 1)]),
                0.28,
                64_000,
                seed,
            ),
        },
        SuiteId::Gap | SuiteId::Ligra => match idx % 5 {
            // cc.road/tc.road-like: streaming-dominated graph, PGC-friendly.
            0 => mix(
                one(vec![
                    (
                        Stream {
                            stride_lines: 1,
                            pages: pages_big,
                        },
                        2,
                    ),
                    (
                        GraphCsr {
                            pages: pages_big,
                            degree: 3,
                        },
                        1,
                    ),
                ]),
                0.30,
                48_000,
                seed,
            ),
            // bc.web/pr.web-like: segmented + zipf neighbours, PGC-hostile.
            1 => mix(
                one(vec![
                    (SegmentedStream { pages: pages_big }, 2),
                    (
                        GraphCsr {
                            pages: pages_big,
                            degree: 6,
                        },
                        1,
                    ),
                ]),
                0.30,
                48_000,
                seed,
            ),
            // bfs-like: CSR heavy.
            2 => mix(
                one(vec![(
                    GraphCsr {
                        pages: pages_big,
                        degree: 4,
                    },
                    1,
                )]),
                0.32,
                48_000,
                seed,
            ),
            // phase-flipping graph frontier.
            3 => mix(
                one(vec![
                    (
                        AlternatingStream {
                            pages: pages_big,
                            period_pages: 32,
                        },
                        2,
                    ),
                    (
                        GraphCsr {
                            pages: pages_big,
                            degree: 4,
                        },
                        1,
                    ),
                ]),
                0.30,
                48_000,
                seed,
            ),
            // mis/kcore-like: chase + stream phases alternating.
            _ => mix(
                vec![
                    Phase {
                        components: vec![(
                            Stream {
                                stride_lines: 1,
                                pages: pages_mid,
                            },
                            1,
                        )],
                    },
                    Phase {
                        components: vec![(Chase { pages: pages_big }, 1)],
                    },
                ],
                0.28,
                24_000,
                seed,
            ),
        },
        SuiteId::Parsec => match idx % 3 {
            // vips-like streaming kernels.
            0 => mix(
                one(vec![(
                    Stream {
                        stride_lines: 1,
                        pages: pages_mid,
                    },
                    1,
                )]),
                0.24,
                64_000,
                seed,
            ),
            // canneal-like chase (footprint beyond the LLC).
            1 => mix(
                one(vec![(Chase { pages: pages_big }, 1)]),
                0.20,
                64_000,
                seed,
            ),
            // streamcluster-like stencil.
            _ => mix(
                one(vec![(
                    Stencil {
                        row_lines: 72,
                        rows: 96 * scale,
                    },
                    1,
                )]),
                0.24,
                64_000,
                seed,
            ),
        },
        SuiteId::Gkb5 => match idx % 4 {
            0 => mix(
                one(vec![(
                    AlternatingStream {
                        pages: pages_big,
                        period_pages: 48,
                    },
                    1,
                )]),
                0.26,
                16_000,
                seed,
            ),
            1 => mix(
                one(vec![(TwinStream { pages: pages_mid }, 1)]),
                0.26,
                32_000,
                seed,
            ),
            2 => mix(
                one(vec![
                    (Chase { pages: pages_mid }, 1),
                    (
                        Stream {
                            stride_lines: 1,
                            pages: pages_mid,
                        },
                        1,
                    ),
                ]),
                0.24,
                32_000,
                seed,
            ),
            _ => {
                // High L1I pressure member (exercises the T_L1i rule).
                let mut p = mix(
                    one(vec![(SegmentedStream { pages: pages_mid }, 1)]),
                    0.24,
                    32_000,
                    seed,
                );
                p.code_lines = 4096;
                p
            }
        },
        SuiteId::QmmInt => {
            // Short-phase integer mixes: fast phase changes.
            let mut p = match idx % 3 {
                0 => mix(
                    vec![
                        Phase {
                            components: vec![(SegmentedStream { pages: pages_mid }, 1)],
                        },
                        Phase {
                            components: vec![(Chase { pages: pages_mid }, 1)],
                        },
                    ],
                    0.26,
                    8_000,
                    seed,
                ),
                1 => mix(
                    one(vec![(Chase { pages: pages_big }, 1)]),
                    0.22,
                    8_000,
                    seed,
                ),
                _ => mix(
                    one(vec![
                        (
                            Stream {
                                stride_lines: 1,
                                pages: pages_mid,
                            },
                            1,
                        ),
                        (SegmentedStream { pages: pages_mid }, 2),
                    ]),
                    0.26,
                    8_000,
                    seed,
                ),
            };
            p.branch_predictability = 0.90;
            p
        }
        SuiteId::QmmFp => match idx % 3 {
            0 => mix(
                one(vec![(
                    Stream {
                        stride_lines: 2,
                        pages: pages_big,
                    },
                    1,
                )]),
                0.30,
                12_000,
                seed,
            ),
            1 => mix(
                one(vec![(
                    Stencil {
                        row_lines: 96,
                        rows: 64 * scale,
                    },
                    1,
                )]),
                0.28,
                12_000,
                seed,
            ),
            _ => mix(
                vec![
                    Phase {
                        components: vec![(
                            Stream {
                                stride_lines: 1,
                                pages: pages_mid,
                            },
                            1,
                        )],
                    },
                    Phase {
                        components: vec![(
                            Stencil {
                                row_lines: 80,
                                rows: 64,
                            },
                            1,
                        )],
                    },
                ],
                0.28,
                12_000,
                seed,
            ),
        },
    }
}

fn build_suite(id: SuiteId) -> Suite {
    let (n_seen, n_unseen) = id.counts();
    let mut workloads = Vec::with_capacity(n_seen + n_unseen + 5);
    // Seen: seed space [1000, …); unseen: disjoint space [900000, …).
    for i in 0..n_seen {
        let seed = 1_000 + i as u64 * 17 + id.label().len() as u64 * 131;
        workloads.push(Workload {
            name: format!("{}.s{:02}", id.label(), i),
            suite: id,
            params: template(id, i, seed),
            intensive: true,
            seen: true,
        });
    }
    for i in 0..n_unseen {
        let seed = 900_000 + i as u64 * 23 + id.label().len() as u64 * 197;
        workloads.push(Workload {
            name: format!("{}.u{:02}", id.label(), i),
            suite: id,
            params: template(id, i + 2, seed),
            intensive: true,
            seen: false,
        });
    }
    // Five non-intensive members per suite (cache-resident).
    for i in 0..5 {
        let seed = 500_000 + i as u64 * 29;
        let mut params = mix(
            one(vec![(Component::Hot { pages: 8 }, 1)]),
            0.20,
            64_000,
            seed,
        );
        params.seed = seed;
        workloads.push(Workload {
            name: format!("{}.n{:02}", id.label(), i),
            suite: id,
            params,
            intensive: false,
            seen: false,
        });
    }
    Suite { id, workloads }
}

static REGISTRY: OnceLock<Vec<Suite>> = OnceLock::new();

fn registry() -> &'static [Suite] {
    REGISTRY.get_or_init(|| SuiteId::ALL.iter().map(|&id| build_suite(id)).collect())
}

/// The suite registry entry for `id`.
pub fn suite(id: SuiteId) -> &'static Suite {
    registry()
        .iter()
        .find(|s| s.id == id)
        .expect("all suites registered")
}

/// All 218 seen memory-intensive workloads.
pub fn seen_workloads() -> Vec<&'static Workload> {
    registry()
        .iter()
        .flat_map(|s| s.workloads.iter())
        .filter(|w| w.seen && w.intensive)
        .collect()
}

/// All 178 unseen memory-intensive workloads.
pub fn unseen_workloads() -> Vec<&'static Workload> {
    registry()
        .iter()
        .flat_map(|s| s.workloads.iter())
        .filter(|w| !w.seen && w.intensive)
        .collect()
}

/// The non-intensive workloads (§V-B9).
pub fn non_intensive_workloads() -> Vec<&'static Workload> {
    registry()
        .iter()
        .flat_map(|s| s.workloads.iter())
        .filter(|w| !w.intensive)
        .collect()
}

/// A curated, diverse subset of seen workloads sized for quick experiment
/// campaigns: `per_suite` members of each suite, template-stratified.
pub fn representative_seen(per_suite: usize) -> Vec<&'static Workload> {
    registry()
        .iter()
        .flat_map(|s| {
            // The first k workloads of a suite instantiate templates
            // 0..k, so a prefix sample is template-stratified.
            s.workloads
                .iter()
                .filter(|w| w.seen && w.intensive)
                .take(per_suite)
        })
        .collect()
}

/// A curated subset of unseen workloads.
pub fn representative_unseen(per_suite: usize) -> Vec<&'static Workload> {
    registry()
        .iter()
        .flat_map(|s| {
            s.workloads
                .iter()
                .filter(|w| !w.seen && w.intensive)
                .take(per_suite)
        })
        .collect()
}

/// Deterministic random `n`-way mixes for the multi-core campaign (§IV-A2).
pub fn random_mixes(n_mixes: usize, cores: usize, seed: u64) -> Vec<Vec<&'static Workload>> {
    let pool = seen_workloads();
    let mut rng = pagecross_types::Rng64::new(seed);
    (0..n_mixes)
        .map(|_| {
            (0..cores)
                .map(|_| pool[rng.below(pool.len() as u64) as usize])
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts() {
        assert_eq!(seen_workloads().len(), 218);
        assert_eq!(unseen_workloads().len(), 178);
        assert_eq!(non_intensive_workloads().len(), 40);
    }

    #[test]
    fn names_unique() {
        let all: Vec<&str> = registry()
            .iter()
            .flat_map(|s| s.workloads.iter())
            .map(|w| w.name.as_str())
            .collect();
        let set: std::collections::HashSet<&str> = all.iter().copied().collect();
        assert_eq!(all.len(), set.len());
    }

    #[test]
    fn seen_and_unseen_use_disjoint_seeds() {
        for s in registry() {
            for w in &s.workloads {
                if w.seen {
                    assert!(w.params.seed < 500_000);
                } else if w.intensive {
                    assert!(w.params.seed >= 900_000);
                }
            }
        }
    }

    #[test]
    fn traces_build_and_generate() {
        for w in representative_seen(1) {
            let mut t = w.build();
            for _ in 0..100 {
                let _ = t.next_instr();
            }
        }
    }

    #[test]
    fn qmm_has_short_lengths() {
        let q = suite(SuiteId::QmmInt)
            .workloads()
            .first()
            .unwrap()
            .default_lengths();
        let s = suite(SuiteId::Spec06)
            .workloads()
            .first()
            .unwrap()
            .default_lengths();
        assert!(q.1 < s.1);
    }

    #[test]
    fn mixes_are_deterministic() {
        let a = random_mixes(5, 8, 42);
        let b = random_mixes(5, 8, 42);
        for (ma, mb) in a.iter().zip(&b) {
            assert_eq!(ma.len(), 8);
            for (wa, wb) in ma.iter().zip(mb.iter()) {
                assert_eq!(wa.name(), wb.name());
            }
        }
    }

    #[test]
    fn representative_subset_spans_suites() {
        let r = representative_seen(2);
        assert_eq!(r.len(), 16);
        let suites: std::collections::HashSet<_> = r.iter().map(|w| w.suite()).collect();
        assert_eq!(suites.len(), 8);
    }

    #[test]
    fn registry_has_page_cross_friendly_and_hostile_members() {
        // Template 0 of spec06 is a pure stream; template 1 is segmented.
        let s = suite(SuiteId::Spec06);
        let w0 = &s.workloads()[0];
        let w1 = &s.workloads()[1];
        assert!(format!("{:?}", w0.params().phases).contains("Stream"));
        assert!(format!("{:?}", w1.params().phases).contains("SegmentedStream"));
    }
}
