//! Synthetic trace generation.
//!
//! The paper's workloads are proprietary SimPoint traces; this module
//! substitutes parameterised generators that control exactly the properties
//! page-cross prefetching is sensitive to (DESIGN.md §3):
//!
//! * [`Component::Stream`] — contiguous streams crossing page boundaries
//!   predictably: page-cross prefetching *helps* (astar/cc.road-like);
//! * [`Component::SegmentedStream`] — sequential within a page, random jump
//!   at page end: in-page prefetching works, page-cross prefetches are
//!   systematically wrong (sphinx3/pr.web-like);
//! * [`Component::Chase`] — dependent random loads: latency-bound, TLB-heavy
//!   (mcf-like);
//! * [`Component::GraphCsr`] — sequential offsets + power-law neighbour
//!   reads: the GAP/LIGRA shape, huge TLB footprints;
//! * [`Component::Stencil`] — 2-D sweeps with large constant strides;
//! * [`Component::Hot`] — a cache-resident working set (non-intensive).
//!
//! A workload mixes up to two *phases* of weighted components, switching
//! every `phase_len` instructions — the phase-changing behaviour MOKA's
//! adaptive thresholding targets.

use pagecross_cpu::trace::{Instr, Op, TraceSource};
use pagecross_types::{Rng64, VirtAddr, LINE_SIZE, PAGE_SIZE_4K};

/// One access-pattern component.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Component {
    /// Contiguous stream: `stride_lines` apart, over `pages` pages.
    Stream {
        /// Stride between consecutive accesses, in cache lines.
        stride_lines: u64,
        /// Region size in 4 KB pages.
        pages: u64,
    },
    /// Alternates between contiguous-stream mode (page-cross prefetching
    /// useful) and segmented mode (page-cross prefetching harmful) every
    /// `period_pages` pages, from the *same* load PC — the adversarial
    /// case for filters without system features or adaptive thresholds.
    AlternatingStream {
        /// Region size in 4 KB pages.
        pages: u64,
        /// Pages walked per mode before switching.
        period_pages: u64,
    },
    /// Two interleaved streams issued from the *same* load PC: a
    /// contiguous stride-2 walk (its page-cross prefetches are useful) and
    /// a segmented stride-1 walk with random page hops (its page-cross
    /// prefetches are useless). Because both share one PC and trigger
    /// context, only *candidate-level* features (the delta) can separate
    /// the useful crossings from the harmful ones — trigger-level filters
    /// like PPF cannot (paper §VI).
    TwinStream {
        /// Region size in 4 KB pages (each stream gets its own region).
        pages: u64,
    },
    /// Sequential within each page; random page hop at the boundary.
    SegmentedStream {
        /// Region size in 4 KB pages (hop target space).
        pages: u64,
    },
    /// Dependent random loads over `pages` pages.
    Chase {
        /// Working-set size in 4 KB pages.
        pages: u64,
    },
    /// CSR traversal: a sequential offsets array plus `degree` power-law
    /// neighbour loads per vertex over a `pages`-page vertex array.
    GraphCsr {
        /// Vertex-data region in 4 KB pages.
        pages: u64,
        /// Average neighbours visited per offsets-array step.
        degree: u32,
    },
    /// Row-major 2-D sweep with a `row_lines`-line stride between touches.
    Stencil {
        /// Lines per row (the large stride).
        row_lines: u64,
        /// Rows in the grid.
        rows: u64,
    },
    /// Uniform random over a tiny, cache-resident region.
    Hot {
        /// Region size in 4 KB pages (small).
        pages: u64,
    },
}

/// A weighted mixture of components forming one execution phase.
#[derive(Clone, Debug)]
pub struct Phase {
    /// `(component, weight)` pairs; weights need not be normalised.
    pub components: Vec<(Component, u32)>,
}

/// Full generator parameters for one workload.
#[derive(Clone, Debug)]
pub struct GenParams {
    /// Fraction of instructions that are loads.
    pub load_ratio: f64,
    /// Fraction of instructions that are stores.
    pub store_ratio: f64,
    /// Fraction of instructions that are conditional branches.
    pub branch_ratio: f64,
    /// Probability a branch's outcome is the pattern-predicted one
    /// (lower = more mispredictions).
    pub branch_predictability: f64,
    /// Execution phases (1 or 2); switched every `phase_len` instructions.
    pub phases: Vec<Phase>,
    /// Instructions per phase before switching.
    pub phase_len: u64,
    /// Number of distinct instruction-cache lines the code spans
    /// (L1I pressure).
    pub code_lines: u64,
    /// Generator seed.
    pub seed: u64,
}

impl GenParams {
    /// A reasonable default: one stream phase, moderately memory-intensive.
    pub fn streaming_default(seed: u64) -> Self {
        Self {
            load_ratio: 0.25,
            store_ratio: 0.05,
            branch_ratio: 0.10,
            branch_predictability: 0.97,
            phases: vec![Phase {
                components: vec![(
                    Component::Stream {
                        stride_lines: 1,
                        pages: 4096,
                    },
                    1,
                )],
            }],
            phase_len: 50_000,
            code_lines: 32,
            seed,
        }
    }
}

/// Per-component runtime state.
#[derive(Clone, Debug)]
struct CompState {
    comp: Component,
    base: u64,
    pos: u64,
    pc_base: u64,
    /// GraphCsr: neighbour burst remaining.
    burst: u32,
}

impl CompState {
    fn next_access(&mut self, rng: &mut Rng64) -> (u64, u64, bool) {
        // Returns (pc, va, depends_on_prev).
        match self.comp {
            Component::Stream {
                stride_lines,
                pages,
            } => {
                // Four 16-byte touches per line, like a real array sweep.
                let span_lines = pages * (PAGE_SIZE_4K / LINE_SIZE);
                let line = ((self.pos / 4) * stride_lines) % span_lines;
                let va = self.base + line * LINE_SIZE + (self.pos % 4) * 16;
                self.pos += 1;
                (self.pc_base, va, false)
            }
            Component::AlternatingStream {
                pages,
                period_pages,
            } => {
                // Four 16-byte touches per line, sequential within the page.
                let lines_per_page = PAGE_SIZE_4K / LINE_SIZE;
                let touches_per_page = 4 * lines_per_page;
                let page_idx = self.pos / touches_per_page;
                let within = self.pos % touches_per_page;
                let contiguous_mode = (page_idx / period_pages).is_multiple_of(2);
                if within == 0 {
                    self.burst = if contiguous_mode {
                        // Walk the next sequential page.
                        ((self.burst as u64 + 1) % pages) as u32
                    } else {
                        rng.below(pages) as u32
                    };
                }
                let line_in_page = within / 4;
                let va = self.base
                    + self.burst as u64 * PAGE_SIZE_4K
                    + line_in_page * LINE_SIZE
                    + (self.pos % 4) * 16;
                self.pos += 1;
                (self.pc_base, va, false)
            }
            Component::TwinStream { pages } => {
                let lines_per_page = PAGE_SIZE_4K / LINE_SIZE;
                let va = if self.pos.is_multiple_of(2) {
                    // Stream A: contiguous stride-2 walk (even lines only).
                    let step = self.pos / 2;
                    let line = (step * 2) % (pages * lines_per_page);
                    self.base + line * LINE_SIZE
                } else {
                    // Stream B: stride-1 within a page, random page hops.
                    let step = self.pos / 2;
                    let line_in_page = step % lines_per_page;
                    if line_in_page == 0 {
                        self.burst = rng.below(pages) as u32;
                    }
                    self.base
                        + (1 << 31)
                        + self.burst as u64 * PAGE_SIZE_4K
                        + line_in_page * LINE_SIZE
                };
                self.pos += 1;
                (self.pc_base, va, false)
            }
            Component::SegmentedStream { pages } => {
                // Four 16-byte touches per line, sequential within the
                // page; random page hop at the boundary.
                let lines_per_page = PAGE_SIZE_4K / LINE_SIZE;
                let line_in_page = (self.pos / 4) % lines_per_page;
                if line_in_page == 0 && self.pos.is_multiple_of(4) {
                    // Hop to a random page.
                    self.burst = rng.below(pages) as u32;
                }
                let va = self.base
                    + self.burst as u64 * PAGE_SIZE_4K
                    + line_in_page * LINE_SIZE
                    + (self.pos % 4) * 16;
                self.pos += 1;
                (self.pc_base, va, false)
            }
            Component::Chase { pages } => {
                // Pointer chase with chains of ~2: half the loads depend on
                // the previous load (pure serialisation is unrealistically
                // slow even for mcf-class workloads).
                let va = self.base
                    + rng.below(pages) * PAGE_SIZE_4K
                    + rng.below(PAGE_SIZE_4K / LINE_SIZE) * LINE_SIZE;
                (self.pc_base, va, rng.chance(0.5))
            }
            Component::GraphCsr { pages, degree } => {
                if self.burst == 0 {
                    // Offsets-array step: sequential 8-byte entries.
                    self.burst = 1 + (rng.below(2 * degree as u64)) as u32;
                    let va = self.base + (self.pos * 8) % (pages * PAGE_SIZE_4K);
                    self.pos += 1;
                    (self.pc_base, va, false)
                } else {
                    // Neighbour load: power-law vertex.
                    self.burst -= 1;
                    let v = rng.zipf(pages * (PAGE_SIZE_4K / 64));
                    let va = self.base + (1 << 30) + v * 64;
                    (self.pc_base + 8, va, false)
                }
            }
            Component::Stencil { row_lines, rows } => {
                // Two touches per element; column-major over a row-major
                // grid, so consecutive elements are a full row apart.
                let total = row_lines * rows;
                let idx = (self.pos / 2) % total;
                let (col, row) = (idx / rows, idx % rows);
                let va = self.base + (row * row_lines + col) * LINE_SIZE + (self.pos % 2) * 16;
                self.pos += 1;
                (self.pc_base, va, false)
            }
            Component::Hot { pages } => {
                let va = self.base
                    + rng.below(pages) * PAGE_SIZE_4K
                    + rng.below(PAGE_SIZE_4K / LINE_SIZE) * LINE_SIZE;
                (self.pc_base, va, false)
            }
        }
    }
}

/// The synthetic trace source.
pub struct SyntheticTrace {
    params: GenParams,
    rng: Rng64,
    phase_states: Vec<Vec<(CompState, u32)>>,
    total_weight: Vec<u64>,
    instrs: u64,
    loop_pc: u64,
}

impl SyntheticTrace {
    /// Builds a trace from parameters.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase has no components.
    pub fn new(params: GenParams) -> Self {
        assert!(!params.phases.is_empty(), "need at least one phase");
        let mut rng = Rng64::new(params.seed);
        let mut phase_states = Vec::new();
        let mut total_weight = Vec::new();
        for (pi, phase) in params.phases.iter().enumerate() {
            assert!(!phase.components.is_empty(), "phase {pi} has no components");
            let mut states = Vec::new();
            let mut tw = 0u64;
            for (ci, &(comp, w)) in phase.components.iter().enumerate() {
                // Each component gets its own virtual region and PC block.
                let base = 0x1_0000_0000u64
                    + (pi as u64 * 64 + ci as u64) * 0x1000_0000
                    + (rng.below(16)) * PAGE_SIZE_4K;
                let pc_base = 0x40_0000 + (pi as u64 * 64 + ci as u64) * 0x100;
                states.push((
                    CompState {
                        comp,
                        base,
                        pos: 0,
                        pc_base,
                        burst: 0,
                    },
                    w.max(1),
                ));
                tw += w.max(1) as u64;
            }
            phase_states.push(states);
            total_weight.push(tw);
        }
        Self {
            params,
            rng,
            phase_states,
            total_weight,
            instrs: 0,
            loop_pc: 0,
        }
    }

    fn phase_index(&self) -> usize {
        ((self.instrs / self.params.phase_len) as usize) % self.phase_states.len()
    }

    fn pick_component(&mut self) -> (u64, u64, bool) {
        let pi = self.phase_index();
        let mut w = self.rng.below(self.total_weight[pi]);
        let states = &mut self.phase_states[pi];
        for (st, sw) in states.iter_mut() {
            if w < *sw as u64 {
                return st.next_access(&mut self.rng);
            }
            w -= *sw as u64;
        }
        unreachable!("weights exhausted")
    }
}

impl TraceSource for SyntheticTrace {
    fn next_instr(&mut self) -> Instr {
        self.instrs += 1;
        // Rotate through the configured code footprint.
        self.loop_pc = (self.loop_pc + 1) % (self.params.code_lines * 16);
        let pc_body = 0x10_0000 + self.loop_pc * 4;

        let r = self.rng.unit();
        let p = &self.params;
        if r < p.load_ratio {
            let (pc, va, dep) = self.pick_component();
            Instr {
                pc,
                op: Op::Load {
                    va: VirtAddr::new(va),
                    depends_on_prev: dep,
                },
            }
        } else if r < p.load_ratio + p.store_ratio {
            let (pc, va, _) = self.pick_component();
            Instr {
                pc: pc + 4,
                op: Op::Store {
                    va: VirtAddr::new(va),
                },
            }
        } else if r < p.load_ratio + p.store_ratio + p.branch_ratio {
            // A loop-like branch: predicted-taken pattern with noise.
            let predicted = true;
            let taken = if self.rng.chance(p.branch_predictability) {
                predicted
            } else {
                !predicted
            };
            Instr {
                pc: pc_body,
                op: Op::Branch { taken },
            }
        } else {
            Instr {
                pc: pc_body,
                op: Op::Alu,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(params: GenParams, n: usize) -> Vec<Instr> {
        let mut t = SyntheticTrace::new(params);
        (0..n).map(|_| t.next_instr()).collect()
    }

    fn loads(instrs: &[Instr]) -> Vec<u64> {
        instrs
            .iter()
            .filter_map(|i| match i.op {
                Op::Load { va, .. } => Some(va.raw()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn deterministic_for_seed() {
        let a = drain(GenParams::streaming_default(1), 1000);
        let b = drain(GenParams::streaming_default(1), 1000);
        assert_eq!(a, b);
        let c = drain(GenParams::streaming_default(2), 1000);
        assert_ne!(a, c);
    }

    #[test]
    fn ratios_roughly_respected() {
        let instrs = drain(GenParams::streaming_default(3), 20_000);
        let n_load = instrs
            .iter()
            .filter(|i| matches!(i.op, Op::Load { .. }))
            .count();
        let n_store = instrs
            .iter()
            .filter(|i| matches!(i.op, Op::Store { .. }))
            .count();
        let n_branch = instrs
            .iter()
            .filter(|i| matches!(i.op, Op::Branch { .. }))
            .count();
        assert!((n_load as f64 / 20_000.0 - 0.25).abs() < 0.03);
        assert!((n_store as f64 / 20_000.0 - 0.05).abs() < 0.02);
        assert!((n_branch as f64 / 20_000.0 - 0.10).abs() < 0.02);
    }

    #[test]
    fn stream_is_monotone_and_crosses_pages() {
        let params = GenParams::streaming_default(5);
        let vas = loads(&drain(params, 10_000));
        let increasing = vas.windows(2).filter(|w| w[1] > w[0]).count();
        assert!(increasing as f64 > vas.len() as f64 * 0.95);
        let pages: std::collections::HashSet<u64> = vas.iter().map(|v| v >> 12).collect();
        assert!(
            pages.len() > 10,
            "stream must span many pages, got {}",
            pages.len()
        );
    }

    #[test]
    fn segmented_stream_is_sequential_within_pages_only() {
        let mut p = GenParams::streaming_default(7);
        // Pure load stream so consecutive loads are consecutive component
        // positions (stores would consume positions too).
        p.load_ratio = 1.0;
        p.store_ratio = 0.0;
        p.branch_ratio = 0.0;
        p.phases = vec![Phase {
            components: vec![(Component::SegmentedStream { pages: 512 }, 1)],
        }];
        let vas = loads(&drain(p, 30_000));
        // Consecutive in-page touches advance by 16 bytes; page
        // transitions are random.
        let mut inpage_seq = 0;
        let mut inpage_total = 0;
        for w in vas.windows(2) {
            if w[0] >> 12 == w[1] >> 12 {
                inpage_total += 1;
                if w[1] == w[0] + 16 {
                    inpage_seq += 1;
                }
            }
        }
        assert!(inpage_seq as f64 > inpage_total as f64 * 0.9);
        // The page sequence must NOT be the identity successor function.
        let mut next_page_sequential = 0;
        let mut transitions = 0;
        for w in vas.windows(2) {
            if w[0] >> 12 != w[1] >> 12 {
                transitions += 1;
                if (w[1] >> 12) == (w[0] >> 12) + 1 {
                    next_page_sequential += 1;
                }
            }
        }
        assert!(transitions > 50);
        assert!(
            (next_page_sequential as f64) < transitions as f64 * 0.2,
            "page hops must be unpredictable: {next_page_sequential}/{transitions}"
        );
    }

    #[test]
    fn chase_loads_are_dependent() {
        let mut p = GenParams::streaming_default(9);
        p.phases = vec![Phase {
            components: vec![(Component::Chase { pages: 1024 }, 1)],
        }];
        let instrs = drain(p, 5_000);
        let dep = instrs
            .iter()
            .filter(|i| {
                matches!(
                    i.op,
                    Op::Load {
                        depends_on_prev: true,
                        ..
                    }
                )
            })
            .count();
        let all = instrs
            .iter()
            .filter(|i| matches!(i.op, Op::Load { .. }))
            .count();
        let frac = dep as f64 / all as f64;
        assert!(
            (0.3..0.7).contains(&frac),
            "~half of chase loads are dependent, got {frac}"
        );
    }

    #[test]
    fn graph_mixes_sequential_and_zipf() {
        let mut p = GenParams::streaming_default(11);
        p.phases = vec![Phase {
            components: vec![(
                Component::GraphCsr {
                    pages: 2048,
                    degree: 4,
                },
                1,
            )],
        }];
        let vas = loads(&drain(p, 30_000));
        let high = vas
            .iter()
            .filter(|v| **v >= 0x1_0000_0000 + (1 << 30))
            .count();
        let low = vas.len() - high;
        assert!(
            high > 0 && low > 0,
            "both offsets and neighbour regions touched"
        );
    }

    #[test]
    fn phases_alternate() {
        let mut p = GenParams::streaming_default(13);
        p.phase_len = 1_000;
        p.phases = vec![
            Phase {
                components: vec![(
                    Component::Stream {
                        stride_lines: 1,
                        pages: 64,
                    },
                    1,
                )],
            },
            Phase {
                components: vec![(Component::Hot { pages: 4 }, 1)],
            },
        ];
        let mut t = SyntheticTrace::new(p);
        let mut phase0_vas = vec![];
        let mut phase1_vas = vec![];
        for i in 0..4_000u64 {
            let instr = t.next_instr();
            if let Op::Load { va, .. } = instr.op {
                // The generator increments its instruction counter before
                // sampling, so instruction i sees phase (i+1)/phase_len.
                if ((i + 1) / 1_000) % 2 == 0 {
                    phase0_vas.push(va.raw());
                } else {
                    phase1_vas.push(va.raw());
                }
            }
        }
        let p0: std::collections::HashSet<u64> = phase0_vas.iter().map(|v| v >> 28).collect();
        let p1: std::collections::HashSet<u64> = phase1_vas.iter().map(|v| v >> 28).collect();
        assert!(p0.is_disjoint(&p1), "phases use distinct regions");
    }

    #[test]
    fn hot_component_stays_small() {
        let mut p = GenParams::streaming_default(15);
        p.phases = vec![Phase {
            components: vec![(Component::Hot { pages: 4 }, 1)],
        }];
        let vas = loads(&drain(p, 10_000));
        let pages: std::collections::HashSet<u64> = vas.iter().map(|v| v >> 12).collect();
        assert!(pages.len() <= 4);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_rejected() {
        let mut p = GenParams::streaming_default(1);
        p.phases.clear();
        let _ = SyntheticTrace::new(p);
    }
}
