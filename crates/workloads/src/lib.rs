//! Synthetic workload suites for the `pagecross` reproduction.
//!
//! The paper evaluates on SimPoint traces of SPEC CPU 2006/2017, GAP,
//! Ligra, PARSEC, Geekbench 5 and the Qualcomm CVP-1 traces — none of
//! which are redistributable. This crate substitutes *parameterised
//! synthetic generators* (see [`gen`]) organised into a registry ([`suites`])
//! with the paper's structure: **218 seen** and **178 unseen**
//! memory-intensive workloads plus a non-intensive set, grouped into
//! eight suites.
//!
//! The generators control exactly the properties that decide whether
//! page-cross prefetching helps: contiguous streams (friendly), segmented
//! per-page streams with random page hops (hostile), dependent pointer
//! chases, CSR graph traversals with power-law fan-out, large-stride
//! stencils, and cache-resident hot sets. See DESIGN.md §3 for the
//! substitution rationale.
//!
//! # Example
//!
//! ```
//! use pagecross_workloads::{suite, SuiteId, seen_workloads};
//! use pagecross_cpu::trace::TraceFactory;
//!
//! assert_eq!(seen_workloads().len(), 218);
//! let gap = suite(SuiteId::Gap);
//! let mut trace = gap.workloads()[0].build();
//! let _first = trace.next_instr();
//! ```

pub mod gen;
pub mod suites;

pub use gen::{Component, GenParams, Phase, SyntheticTrace};
pub use suites::{
    non_intensive_workloads, random_mixes, representative_seen, representative_unseen,
    seen_workloads, suite, unseen_workloads, Suite, SuiteId, Workload,
};
