//! Model-based property tests: the optimised structures must agree with
//! naive reference models over arbitrary operation sequences.

use pagecross::mem::{Cache, CacheConfig, FillKind, Tlb, TlbConfig, Translation};
use pagecross::types::{LineAddr, PageSize, VirtAddr};
use proptest::prelude::*;

/// A naive set-associative LRU cache: explicit per-set recency vectors.
struct RefCache {
    sets: u64,
    ways: usize,
    /// Per set: most-recent-last list of resident tags.
    resident: Vec<Vec<u64>>,
}

impl RefCache {
    fn new(sets: u64, ways: usize) -> Self {
        Self { sets, ways, resident: vec![Vec::new(); sets as usize] }
    }

    fn set(&mut self, line: u64) -> &mut Vec<u64> {
        &mut self.resident[(line & (self.sets - 1)) as usize]
    }

    fn access(&mut self, line: u64) -> bool {
        let set = self.set(line);
        if let Some(pos) = set.iter().position(|&t| t == line) {
            let t = set.remove(pos);
            set.push(t);
            true
        } else {
            false
        }
    }

    fn fill(&mut self, line: u64) -> Option<u64> {
        let ways = self.ways;
        let set = self.set(line);
        if let Some(pos) = set.iter().position(|&t| t == line) {
            let t = set.remove(pos);
            set.push(t);
            return None;
        }
        let victim = if set.len() == ways { Some(set.remove(0)) } else { None };
        set.push(line);
        victim
    }
}

/// A naive set-associative LRU TLB (4 KB entries only).
struct RefTlb {
    inner: RefCache,
}

impl RefTlb {
    fn new(sets: u64, ways: usize) -> Self {
        Self { inner: RefCache::new(sets, ways) }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The production cache and the reference model agree on every
    /// hit/miss outcome and every eviction victim, for arbitrary
    /// interleavings of demand accesses and fills.
    #[test]
    fn cache_matches_reference_model(
        ops in prop::collection::vec((0u64..96, 0u8..2), 1..500)
    ) {
        // 8 sets x 2 ways.
        let mut dut = Cache::new(
            "dut",
            CacheConfig { size_bytes: 1024, ways: 2, latency: 1, mshr_entries: 4 },
        );
        let mut model = RefCache::new(8, 2);
        for (line, op) in ops {
            let l = LineAddr(line);
            match op {
                0 => {
                    let dut_hit = dut.demand_access(l, false).hit;
                    let model_hit = model.access(line);
                    prop_assert_eq!(dut_hit, model_hit, "hit/miss mismatch on {}", line);
                }
                _ => {
                    let dut_victim = dut.fill(l, FillKind::Demand, false).map(|e| e.line.raw());
                    let model_victim = model.fill(line);
                    prop_assert_eq!(dut_victim, model_victim, "victim mismatch on {}", line);
                }
            }
        }
    }

    /// The production TLB agrees with the reference model on lookups and
    /// occupancy for arbitrary fill/lookup interleavings over 4 KB pages.
    #[test]
    fn tlb_matches_reference_model(
        ops in prop::collection::vec((0u64..64, 0u8..2), 1..400)
    ) {
        // 4 sets x 4 ways = 16 entries.
        let mut dut = Tlb::new("dut", TlbConfig { entries: 16, ways: 4, latency: 1 });
        let mut model = RefTlb::new(4, 4);
        for (vpn, op) in ops {
            let va = VirtAddr::new(vpn << 12);
            match op {
                0 => {
                    let dut_hit = dut.lookup(va).is_some();
                    let model_hit = model.inner.access(vpn);
                    prop_assert_eq!(dut_hit, model_hit, "lookup mismatch on vpn {}", vpn);
                }
                _ => {
                    dut.fill(Translation { vpn, pfn: vpn + 100, size: PageSize::Base4K }, false);
                    model.inner.fill(vpn);
                }
            }
            let model_occ: usize = model.inner.resident.iter().map(|s| s.len()).sum();
            prop_assert_eq!(dut.occupancy(), model_occ, "occupancy mismatch");
        }
    }

    /// Prefetch fills obey the same placement rules as demand fills: after
    /// any interleaving, the resident set is identical whichever fill kind
    /// was used (metadata differs, placement must not).
    #[test]
    fn fill_kind_does_not_change_placement(
        ops in prop::collection::vec(0u64..64, 1..300)
    ) {
        let cfg = CacheConfig { size_bytes: 1024, ways: 2, latency: 1, mshr_entries: 4 };
        let mut a = Cache::new("a", cfg);
        let mut b = Cache::new("b", cfg);
        for &line in &ops {
            a.fill(LineAddr(line), FillKind::Demand, false);
            b.fill(LineAddr(line), FillKind::PrefetchPageCross, false);
        }
        for &line in &ops {
            prop_assert_eq!(a.probe(LineAddr(line)), b.probe(LineAddr(line)));
        }
        prop_assert_eq!(a.occupancy(), b.occupancy());
    }
}
