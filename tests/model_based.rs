//! Model-based property tests: the optimised structures must agree with
//! naive reference models over arbitrary operation sequences. Runs on the
//! in-repo harness ([`pagecross::types::prop`]).

use pagecross::mem::{
    Cache, CacheConfig, FillKind, FrameAllocator, HugePagePolicy, Mshr, PageWalker, PscConfig, Tlb,
    TlbConfig, Translation, Vmem,
};
use pagecross::types::prop::{check, vec_of, Config};
use pagecross::types::{prop_assert, prop_assert_eq};
use pagecross::types::{LineAddr, PageSize, VirtAddr};

/// A naive set-associative LRU cache: explicit per-set recency vectors.
struct RefCache {
    sets: u64,
    ways: usize,
    /// Per set: most-recent-last list of resident tags.
    resident: Vec<Vec<u64>>,
}

impl RefCache {
    fn new(sets: u64, ways: usize) -> Self {
        Self {
            sets,
            ways,
            resident: vec![Vec::new(); sets as usize],
        }
    }

    fn set(&mut self, line: u64) -> &mut Vec<u64> {
        &mut self.resident[(line & (self.sets - 1)) as usize]
    }

    fn access(&mut self, line: u64) -> bool {
        let set = self.set(line);
        if let Some(pos) = set.iter().position(|&t| t == line) {
            let t = set.remove(pos);
            set.push(t);
            true
        } else {
            false
        }
    }

    fn fill(&mut self, line: u64) -> Option<u64> {
        let ways = self.ways;
        let set = self.set(line);
        if let Some(pos) = set.iter().position(|&t| t == line) {
            let t = set.remove(pos);
            set.push(t);
            return None;
        }
        let victim = if set.len() == ways {
            Some(set.remove(0))
        } else {
            None
        };
        set.push(line);
        victim
    }
}

/// A naive set-associative LRU TLB (4 KB entries only).
struct RefTlb {
    inner: RefCache,
}

impl RefTlb {
    fn new(sets: u64, ways: usize) -> Self {
        Self {
            inner: RefCache::new(sets, ways),
        }
    }
}

/// A naive MSHR file: a flat list scanned linearly, with the documented
/// semantics spelled out operation by operation — lazy expiry, merge on
/// lookup, and earliest-completing replacement (plus a fixed retry
/// penalty) when full.
struct RefMshr {
    capacity: usize,
    /// (line, completes_at, demand), insertion order.
    inflight: Vec<(u64, u64, bool)>,
    merges: u64,
    full_stalls: u64,
}

/// Mirror of the production `Mshr::FULL_PENALTY` constant.
const REF_MSHR_FULL_PENALTY: u64 = 8;

impl RefMshr {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inflight: Vec::new(),
            merges: 0,
            full_stalls: 0,
        }
    }

    fn expire(&mut self, now: u64) {
        self.inflight.retain(|&(_, completes, _)| completes > now);
    }

    fn lookup(&mut self, line: u64, now: u64) -> Option<u64> {
        self.expire(now);
        let hit = self
            .inflight
            .iter()
            .find(|&&(l, _, _)| l == line)
            .map(|&(_, c, _)| c);
        if hit.is_some() {
            self.merges += 1;
        }
        hit
    }

    fn allocate(&mut self, line: u64, now: u64, completes_at: u64, demand: bool) -> u64 {
        self.expire(now);
        if self.inflight.len() >= self.capacity {
            self.full_stalls += 1;
            let delayed = completes_at + REF_MSHR_FULL_PENALTY;
            if let Some(slot) = self.inflight.iter_mut().min_by_key(|&&mut (_, c, _)| c) {
                *slot = (line, delayed, demand);
            }
            return delayed;
        }
        self.inflight.push((line, completes_at, demand));
        completes_at
    }

    fn occupancy(&mut self, now: u64) -> usize {
        self.expire(now);
        self.inflight.len()
    }

    fn demand_occupancy(&mut self, now: u64) -> usize {
        self.expire(now);
        self.inflight.iter().filter(|&&(_, _, d)| d).count()
    }
}

/// The production cache and the reference model agree on every hit/miss
/// outcome and every eviction victim, for arbitrary interleavings of
/// demand accesses and fills.
#[test]
fn cache_matches_reference_model() {
    check(
        &Config::cases(48),
        |rng| vec_of(rng, 1, 500, |r| (r.below(96), r.below(2) as u8)),
        |ops| {
            // 8 sets x 2 ways.
            let mut dut = Cache::new(
                "dut",
                CacheConfig {
                    size_bytes: 1024,
                    ways: 2,
                    latency: 1,
                    mshr_entries: 4,
                },
            );
            let mut model = RefCache::new(8, 2);
            for &(line, op) in ops {
                let l = LineAddr(line);
                match op {
                    0 => {
                        let dut_hit = dut.demand_access(l, false).hit;
                        let model_hit = model.access(line);
                        prop_assert_eq!(dut_hit, model_hit, "hit/miss mismatch on {}", line);
                    }
                    _ => {
                        let dut_victim = dut.fill(l, FillKind::Demand, false).map(|e| e.line.raw());
                        let model_victim = model.fill(line);
                        prop_assert_eq!(dut_victim, model_victim, "victim mismatch on {}", line);
                    }
                }
            }
            Ok(())
        },
    );
}

/// The production TLB agrees with the reference model on lookups and
/// occupancy for arbitrary fill/lookup interleavings over 4 KB pages.
#[test]
fn tlb_matches_reference_model() {
    check(
        &Config::cases(48),
        |rng| vec_of(rng, 1, 400, |r| (r.below(64), r.below(2) as u8)),
        |ops| {
            // 4 sets x 4 ways = 16 entries.
            let mut dut = Tlb::new(
                "dut",
                TlbConfig {
                    entries: 16,
                    ways: 4,
                    latency: 1,
                },
            );
            let mut model = RefTlb::new(4, 4);
            for &(vpn, op) in ops {
                let va = VirtAddr::new(vpn << 12);
                match op {
                    0 => {
                        let dut_hit = dut.lookup(va).is_some();
                        let model_hit = model.inner.access(vpn);
                        prop_assert_eq!(dut_hit, model_hit, "lookup mismatch on vpn {}", vpn);
                    }
                    _ => {
                        dut.fill(
                            Translation {
                                vpn,
                                pfn: vpn + 100,
                                size: PageSize::Base4K,
                            },
                            false,
                        );
                        model.inner.fill(vpn);
                    }
                }
                let model_occ: usize = model.inner.resident.iter().map(|s| s.len()).sum();
                prop_assert_eq!(dut.occupancy(), model_occ, "occupancy mismatch");
            }
            Ok(())
        },
    );
}

/// Prefetch fills obey the same placement rules as demand fills: after
/// any interleaving, the resident set is identical whichever fill kind
/// was used (metadata differs, placement must not).
#[test]
fn fill_kind_does_not_change_placement() {
    check(
        &Config::cases(48),
        |rng| vec_of(rng, 1, 300, |r| r.below(64)),
        |ops| {
            let cfg = CacheConfig {
                size_bytes: 1024,
                ways: 2,
                latency: 1,
                mshr_entries: 4,
            };
            let mut a = Cache::new("a", cfg);
            let mut b = Cache::new("b", cfg);
            for &line in ops {
                a.fill(LineAddr(line), FillKind::Demand, false);
                b.fill(LineAddr(line), FillKind::PrefetchPageCross, false);
            }
            for &line in ops {
                prop_assert_eq!(a.probe(LineAddr(line)), b.probe(LineAddr(line)));
            }
            prop_assert_eq!(a.occupancy(), b.occupancy());
            Ok(())
        },
    );
}

/// The production MSHR agrees with the naive reference on every lookup
/// result, allocation completion time, merge/stall counter, and both
/// occupancy views, for arbitrary interleavings of lookups and
/// demand/prefetch allocations over non-decreasing time.
#[test]
fn mshr_matches_reference_model() {
    check(
        &Config::cases(48),
        // Small time steps relative to the 25-cycle fill latency so the
        // file regularly fills up and exercises the replacement path.
        |rng| {
            vec_of(rng, 1, 300, |r| {
                (
                    (r.below(16), r.below(8)),
                    (r.below(3) as u8, r.below(2) == 1),
                )
            })
        },
        |ops| {
            let mut dut = Mshr::new(6);
            let mut model = RefMshr::new(6);
            let mut now = 0u64;
            for &((line, dt), (op, demand)) in ops {
                now += dt; // time never goes backwards
                let l = LineAddr(line);
                match op {
                    0 => {
                        let dut_hit = dut.lookup(l, now);
                        let model_hit = model.lookup(line, now);
                        prop_assert_eq!(dut_hit, model_hit, "lookup mismatch on {} @{}", line, now);
                    }
                    _ => {
                        let completes = now + 25;
                        let dut_done = dut.allocate_kind(l, now, completes, demand);
                        let model_done = model.allocate(line, now, completes, demand);
                        prop_assert_eq!(
                            dut_done,
                            model_done,
                            "completion mismatch on {} @{}",
                            line,
                            now
                        );
                    }
                }
                prop_assert_eq!(dut.merges, model.merges, "merge counter diverged");
                prop_assert_eq!(dut.full_stalls, model.full_stalls, "stall counter diverged");
                prop_assert_eq!(dut.occupancy(now) as usize, model.occupancy(now));
                prop_assert_eq!(
                    dut.demand_occupancy(now) as usize,
                    model.demand_occupancy(now)
                );
            }
            Ok(())
        },
    );
}

/// The page-table walker agrees with a flat reference map: the first walk
/// of a page defines its translation, and every later walk of that page —
/// whatever the PSC state — reproduces it exactly. Frames are never
/// shared between pages, and walk depth shrinks monotonically as PSCs
/// warm (1..=5 refs, with repeat walks of the same page depth ≤ 2).
#[test]
fn walker_matches_flat_reference_map() {
    check(
        &Config::cases(48),
        // Small VPN universe so sequences revisit pages through warm PSCs.
        |rng| vec_of(rng, 1, 120, |r| r.below(512) << 12 | (r.below(8) << 6)),
        |vas| {
            let mut fa = FrameAllocator::new(4u64 << 30, 23);
            let mut w = PageWalker::new(
                PscConfig {
                    l5_entries: 1,
                    l4_entries: 2,
                    l3_entries: 8,
                    l2_entries: 32,
                },
                &mut fa,
            );
            let mut vm = Vmem::new(HugePagePolicy::None, 29);
            let mut flat: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
            for &raw in vas {
                let va = VirtAddr::new(raw);
                let vpn = raw >> 12;
                let plan = w.walk(va, &mut vm, &mut fa).expect("4GB pool cannot OOM");
                prop_assert!((1..=5).contains(&plan.refs.len()));
                prop_assert_eq!(
                    plan.translation.vpn,
                    vpn,
                    "walk must translate its own page"
                );
                match flat.get(&vpn) {
                    Some(&pfn) => {
                        prop_assert_eq!(
                            plan.translation.pfn,
                            pfn,
                            "walk of vpn {} changed an established translation",
                            vpn
                        );
                        // A revisited 4 KB page has a warm PSC-L2 entry (the
                        // PSCs are large enough for this VPN universe), so
                        // at most the leaf PT reference plus one level.
                        prop_assert!(
                            plan.refs.len() <= 2,
                            "repeat walk of vpn {} took {} refs",
                            vpn,
                            plan.refs.len()
                        );
                    }
                    None => {
                        flat.insert(vpn, plan.translation.pfn);
                    }
                }
            }
            let frames: std::collections::HashSet<u64> = flat.values().copied().collect();
            prop_assert_eq!(frames.len(), flat.len(), "two pages share a frame");
            Ok(())
        },
    );
}
