//! Cross-crate integration tests: full simulations exercising the public
//! API the way the paper's experiments do.

use pagecross::cpu::{
    BoundaryMode, L2PrefetcherKind, PgcPolicyKind, PrefetcherKind, SimulationBuilder,
};
use pagecross::mem::HugePagePolicy;
use pagecross::types::geomean;
use pagecross::workloads::{random_mixes, representative_seen, suite, SuiteId};

fn builder() -> SimulationBuilder {
    SimulationBuilder::new().warmup(20_000).instructions(40_000)
}

/// The paper's central motivation (Fig. 2): a contiguous stream benefits
/// from page-cross prefetching.
#[test]
fn permit_beats_discard_on_contiguous_stream() {
    let stream = &suite(SuiteId::Spec06).workloads()[0];
    let discard = builder()
        .pgc_policy(PgcPolicyKind::DiscardPgc)
        .run_workload(stream);
    let permit = builder()
        .pgc_policy(PgcPolicyKind::PermitPgc)
        .run_workload(stream);
    assert!(
        permit.ipc() > discard.ipc() * 1.005,
        "permit {} vs discard {}",
        permit.ipc(),
        discard.ipc()
    );
    // The mechanism: page-cross prefetches kill dTLB/sTLB misses.
    assert!(permit.stlb_mpki() < discard.stlb_mpki());
}

/// The flip side (Fig. 2): segmented access over a TLB-exceeding footprint
/// is hurt by page-cross prefetching.
#[test]
fn discard_beats_permit_on_segmented_graph() {
    let hostile = &suite(SuiteId::Gap).workloads()[1];
    let discard = builder()
        .pgc_policy(PgcPolicyKind::DiscardPgc)
        .run_workload(hostile);
    let permit = builder()
        .pgc_policy(PgcPolicyKind::PermitPgc)
        .run_workload(hostile);
    assert!(
        discard.ipc() > permit.ipc() * 1.01,
        "discard {} vs permit {}",
        discard.ipc(),
        permit.ipc()
    );
    // The mechanism: wrong speculative walks + pollution.
    assert!(permit.prefetch.speculative_walks > 0);
}

/// DRIPPER's headline property (Fig. 9/10): over a mixed set it beats both
/// static policies in geomean.
#[test]
fn dripper_beats_both_static_policies_in_geomean() {
    // One friendly, one hostile, one neutral per suite family.
    let set = [
        &suite(SuiteId::Spec06).workloads()[0],
        &suite(SuiteId::Spec06).workloads()[1],
        &suite(SuiteId::Spec06).workloads()[3],
        &suite(SuiteId::Gap).workloads()[0],
        &suite(SuiteId::Gap).workloads()[1],
        &suite(SuiteId::Ligra).workloads()[2],
    ];
    let mut permit_r = vec![];
    let mut dripper_r = vec![];
    for w in set {
        let d = builder()
            .pgc_policy(PgcPolicyKind::DiscardPgc)
            .run_workload(w)
            .ipc();
        let p = builder()
            .pgc_policy(PgcPolicyKind::PermitPgc)
            .run_workload(w)
            .ipc();
        let x = builder()
            .pgc_policy(PgcPolicyKind::Dripper)
            .run_workload(w)
            .ipc();
        permit_r.push(p / d);
        dripper_r.push(x / d);
    }
    let gp = geomean(&permit_r).unwrap();
    let gd = geomean(&dripper_r).unwrap();
    assert!(
        gd > gp,
        "dripper geomean {gd} must beat permit geomean {gp}"
    );
    assert!(
        gd > 0.999,
        "dripper must not lose to discard in geomean, got {gd}"
    );
}

/// Discard-PTW sits between: no speculative walks ever, but some
/// page-cross prefetches still issue (TLB-resident translations).
#[test]
fn discard_ptw_issues_resident_only() {
    // A graph workload revisits pages, so some page-cross targets are
    // TLB-resident; a first-touch stream would issue nothing under this
    // policy.
    let w = &suite(SuiteId::Gap).workloads()[0];
    let r = builder()
        .pgc_policy(PgcPolicyKind::DiscardPtw)
        .run_workload(w);
    assert_eq!(r.walks.prefetch_walks, 0);
    assert!(
        r.prefetch.pgc_issued > 0,
        "resident translations allow some issues"
    );
    let permit = builder()
        .pgc_policy(PgcPolicyKind::PermitPgc)
        .run_workload(w);
    assert!(r.prefetch.pgc_issued < permit.prefetch.pgc_issued);
}

/// PPF (converted, §V-A) runs and filters; DRIPPER outperforms it in
/// geomean over a friendly+hostile pair.
#[test]
fn dripper_beats_ppf() {
    let set = [
        &suite(SuiteId::Spec06).workloads()[3],
        &suite(SuiteId::Gap).workloads()[1],
    ];
    let mut ppf_r = vec![];
    let mut dripper_r = vec![];
    for w in set {
        let d = builder()
            .pgc_policy(PgcPolicyKind::DiscardPgc)
            .run_workload(w)
            .ipc();
        let p = builder()
            .pgc_policy(PgcPolicyKind::Ppf)
            .run_workload(w)
            .ipc();
        let x = builder()
            .pgc_policy(PgcPolicyKind::Dripper)
            .run_workload(w)
            .ipc();
        ppf_r.push(p / d);
        dripper_r.push(x / d);
    }
    let gp = geomean(&ppf_r).unwrap();
    let gd = geomean(&dripper_r).unwrap();
    assert!(gd >= gp * 0.999, "dripper {gd} vs ppf {gp}");
}

/// All policies and prefetchers compose and produce sane reports.
#[test]
fn every_policy_prefetcher_combination_runs() {
    let w = &suite(SuiteId::Gkb5).workloads()[0];
    for pf in [
        PrefetcherKind::Berti,
        PrefetcherKind::Ipcp,
        PrefetcherKind::Bop,
    ] {
        for policy in [
            PgcPolicyKind::PermitPgc,
            PgcPolicyKind::DiscardPgc,
            PgcPolicyKind::DiscardPtw,
            PgcPolicyKind::IsoStorage,
            PgcPolicyKind::Dripper,
            PgcPolicyKind::DripperSf,
            PgcPolicyKind::Ppf,
            PgcPolicyKind::PpfDthr,
        ] {
            let r = SimulationBuilder::new()
                .prefetcher(pf)
                .pgc_policy(policy)
                .warmup(3_000)
                .instructions(6_000)
                .run_workload(w);
            assert_eq!(r.core.instructions, 6_000, "{pf:?}/{policy:?}");
            assert!(
                r.ipc() > 0.0 && r.ipc() < 6.0,
                "{pf:?}/{policy:?}: {}",
                r.ipc()
            );
        }
    }
}

/// L2C prefetcher variants (§V-B7) run and fill the L2.
#[test]
fn l2_prefetchers_produce_l2_fills() {
    let w = &suite(SuiteId::Gap).workloads()[1];
    // Disable the L1D prefetcher so demand misses reach the L2 and train
    // the L2C prefetcher (with Berti active the stream has no L2 traffic).
    let builder = || builder().prefetcher(PrefetcherKind::None);
    let without = builder()
        .l2_prefetcher(L2PrefetcherKind::None)
        .run_workload(w);
    for l2 in [
        L2PrefetcherKind::Spp,
        L2PrefetcherKind::Ipcp,
        L2PrefetcherKind::Bop,
    ] {
        let with = builder().l2_prefetcher(l2).run_workload(w);
        assert!(
            with.l2c.prefetch_fills > without.l2c.prefetch_fills,
            "{l2:?} must add L2 fills: {} vs {}",
            with.l2c.prefetch_fills,
            without.l2c.prefetch_fills
        );
    }
}

/// Huge pages (§V-B6): the Fraction policy maps both sizes, and the
/// page-size-aware boundary mode reduces the number of candidates treated
/// as page-crossing.
#[test]
fn huge_pages_change_crossing_classification() {
    let w = &suite(SuiteId::Spec06).workloads()[0];
    let fixed = builder()
        .huge_pages(HugePagePolicy::All)
        .boundary(BoundaryMode::Fixed4K)
        .pgc_policy(PgcPolicyKind::Dripper)
        .run_workload(w);
    let aware = builder()
        .huge_pages(HugePagePolicy::All)
        .boundary(BoundaryMode::PageSizeAware)
        .pgc_policy(PgcPolicyKind::Dripper)
        .run_workload(w);
    assert!(
        aware.prefetch.pgc_candidates < fixed.prefetch.pgc_candidates,
        "2MB boundaries see fewer crossings: {} vs {}",
        aware.prefetch.pgc_candidates,
        fixed.prefetch.pgc_candidates
    );
    // With 2MB pages there are no sTLB misses for the stream at all.
    assert!(aware.stlb_mpki() <= fixed.stlb_mpki() + 1e-9);
}

/// Multi-core mixes (§IV-A2) run, freeze per-core stats at quota, and
/// produce weighted speedups.
#[test]
fn multicore_mix_weighted_speedup() {
    let mixes = random_mixes(1, 4, 7);
    let ws: Vec<&dyn pagecross::cpu::TraceFactory> = mixes[0]
        .iter()
        .map(|w| *w as &dyn pagecross::cpu::TraceFactory)
        .collect();
    let m = SimulationBuilder::new()
        .warmup(3_000)
        .instructions(8_000)
        .run_mix(&ws);
    assert_eq!(m.cores.len(), 4);
    for c in &m.cores {
        assert_eq!(c.instructions, 8_000);
    }
    let iso: Vec<f64> = m.ipcs(); // self-relative: weighted IPC == n
    let wipc = m.weighted_ipc(&iso).expect("one isolation IPC per core");
    assert!((wipc - 4.0).abs() < 1e-9);
    assert_eq!(
        m.weighted_ipc(&iso[..3]),
        None,
        "length mismatch is rejected, not summed"
    );
}

/// Reports are reproducible end to end (same seed, same workload).
#[test]
fn full_pipeline_determinism() {
    let w = representative_seen(1)[3];
    let a = builder().pgc_policy(PgcPolicyKind::Dripper).run_workload(w);
    let b = builder().pgc_policy(PgcPolicyKind::Dripper).run_workload(w);
    assert_eq!(a.core, b.core);
    assert_eq!(a.l1d, b.l1d);
    assert_eq!(a.llc, b.llc);
    assert_eq!(a.stlb, b.stlb);
    assert_eq!(a.prefetch, b.prefetch);
}

/// Conservation: issued + discarded == page-cross candidates; PCB fills
/// only come from issued page-cross prefetches.
#[test]
fn prefetch_accounting_conserves() {
    let w = &suite(SuiteId::Gap).workloads()[0];
    for policy in [PgcPolicyKind::PermitPgc, PgcPolicyKind::Dripper] {
        let r = builder().pgc_policy(policy).run_workload(w);
        let p = &r.prefetch;
        // Some issued prefetches are dropped as redundant/unmapped, so
        // issued ≤ candidates − discarded.
        assert!(
            p.pgc_issued + p.pgc_discarded <= p.pgc_candidates,
            "{policy:?}: {} + {} vs {}",
            p.pgc_issued,
            p.pgc_discarded,
            p.pgc_candidates
        );
        assert!(r.l1d.pgc_fills <= p.pgc_issued + 1);
        assert!(r.l1d.pgc_useful + r.l1d.pgc_useless <= r.l1d.pgc_fills + 64);
    }
}
