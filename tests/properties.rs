//! Property-based tests over the core data structures and whole-simulation
//! invariants, on the in-repo harness ([`pagecross::types::prop`]).

use pagecross::mem::{Cache, CacheConfig, FillKind, Mshr, Tlb, TlbConfig, Translation};
use pagecross::mem::{FrameAllocator, HugePagePolicy, PageWalker, PscConfig, Vmem};
use pagecross::moka::buffers::{UpdateBuffer, UpdateEntry};
use pagecross::moka::features::{FeatureContext, ProgramFeature};
use pagecross::types::prop::{check, vec_of, Config};
use pagecross::types::{prop_assert, prop_assert_eq};
use pagecross::types::{LineAddr, PageSize, Rng64, SatCounter, VirtAddr};

/// A saturating counter never leaves its configured range under any
/// operation sequence.
#[test]
fn sat_counter_stays_in_range() {
    check(
        &Config::cases(64),
        |rng| {
            (
                rng.range(2, 8) as u32,
                vec_of(rng, 0, 200, |r| r.range(0, 40) as i16 - 20),
            )
        },
        |(bits, ops)| {
            let mut c = SatCounter::new(*bits);
            for &op in ops {
                c.add(op);
                prop_assert!(c.get() >= c.min() && c.get() <= c.max());
            }
            Ok(())
        },
    );
}

/// The RNG respects bounds for arbitrary seeds and bounds.
#[test]
fn rng_below_bound() {
    check(
        &Config::cases(64),
        |rng| (rng.next_u64(), rng.range(1, 1_000_000)),
        |&(seed, bound)| {
            let mut r = Rng64::new(seed);
            for _ in 0..50 {
                prop_assert!(r.below(bound.max(1)) < bound.max(1));
            }
            Ok(())
        },
    );
}

/// Cache invariants under arbitrary access/fill interleavings:
/// occupancy bounded, probe-after-fill true, demand misses ≤ accesses.
#[test]
fn cache_invariants() {
    check(
        &Config::cases(64),
        |rng| vec_of(rng, 1, 400, |r| (r.below(256), r.below(3) as u8)),
        |ops| {
            let mut c = Cache::new(
                "prop",
                CacheConfig {
                    size_bytes: 4096,
                    ways: 4,
                    latency: 1,
                    mshr_entries: 4,
                },
            );
            let capacity = (c.num_sets() as usize) * c.num_ways();
            for &(line, op) in ops {
                let line = LineAddr(line);
                match op {
                    0 => {
                        c.demand_access(line, false);
                    }
                    1 => {
                        c.fill(line, FillKind::Demand, false);
                        prop_assert!(c.probe(line), "fill must make the line resident");
                    }
                    _ => {
                        c.fill(line, FillKind::PrefetchPageCross, false);
                        prop_assert!(c.probe(line));
                    }
                }
                prop_assert!(c.occupancy() <= capacity);
                prop_assert!(c.stats.demand_misses <= c.stats.demand_accesses);
                prop_assert!(c.stats.pgc_useful <= c.stats.prefetch_useful);
                prop_assert!(c.stats.pgc_fills <= c.stats.prefetch_fills);
            }
            Ok(())
        },
    );
}

/// TLB: a fill is observable until evicted; occupancy bounded.
#[test]
fn tlb_invariants() {
    check(
        &Config::cases(64),
        |rng| vec_of(rng, 1, 200, |r| r.below(512)),
        |vpns| {
            let mut t = Tlb::new(
                "prop",
                TlbConfig {
                    entries: 16,
                    ways: 4,
                    latency: 1,
                },
            );
            for &vpn in vpns {
                t.fill(
                    Translation {
                        vpn,
                        pfn: vpn + 7,
                        size: PageSize::Base4K,
                    },
                    false,
                );
                let va = VirtAddr::new(vpn << 12);
                prop_assert!(t.peek(va), "freshly filled translation must be visible");
                prop_assert!(t.occupancy() <= 16);
            }
            prop_assert!(t.stats.misses <= t.stats.accesses);
            Ok(())
        },
    );
}

/// MSHR: allocation never returns earlier than the requested completion;
/// occupancy bounded by capacity.
#[test]
fn mshr_invariants() {
    check(
        &Config::cases(64),
        |rng| vec_of(rng, 1, 100, |r| (r.below(64), r.below(1000))),
        |reqs| {
            let mut m = Mshr::new(8);
            for &(line, now) in reqs {
                let completes = now + 100;
                let got = m.allocate(LineAddr(line), now, completes);
                prop_assert!(got >= completes);
                prop_assert!(m.occupancy(now) <= 8);
            }
            Ok(())
        },
    );
}

/// Update buffers never exceed capacity and inserted entries are
/// retrievable until evicted.
#[test]
fn update_buffer_invariants() {
    check(
        &Config::cases(64),
        |rng| vec_of(rng, 1, 100, |r| r.below(64)),
        |lines| {
            let mut b = UpdateBuffer::new(4);
            for &line in lines {
                b.insert(UpdateEntry {
                    line,
                    indices: vec![1],
                    sf_mask: 0,
                });
                prop_assert!(b.len() <= 4);
                prop_assert!(
                    b.peek(line).is_some(),
                    "most recent insert is always present"
                );
            }
            Ok(())
        },
    );
}

/// Every program feature hashes every context into table range, and is
/// a pure function of the context.
#[test]
fn feature_hash_in_range() {
    check(
        &Config::cases(64),
        |rng| {
            (
                rng.next_u64(),
                rng.next_u64(),
                (rng.range(0, 1023) as i64 - 512, rng.below(2) == 1),
            )
        },
        |&(pc, va, (delta, fpa))| {
            let ctx = FeatureContext {
                pc,
                va,
                target_va: va.wrapping_add_signed(delta * 64),
                delta,
                first_page_access: fpa,
                va_hist: [va, va ^ 1, va ^ 2],
                pc_hist: [pc, pc ^ 1, pc ^ 2],
                delta_hist: [delta, 1, -1],
            };
            for f in ProgramFeature::bouquet() {
                let i = f.index(&ctx, 1024);
                prop_assert!(i < 1024);
                prop_assert_eq!(i, f.index(&ctx, 1024));
            }
            Ok(())
        },
    );
}

/// Page walks reference between 1 and 5 PTEs, the translation matches
/// vmem, and PTE addresses live in the page-table region.
#[test]
fn walker_invariants() {
    check(
        &Config::cases(48),
        |rng| vec_of(rng, 1, 60, |r| r.below(1u64 << 40)),
        |vas| {
            let mut fa = FrameAllocator::new(4u64 << 30, 11);
            let mut w = PageWalker::new(
                PscConfig {
                    l5_entries: 1,
                    l4_entries: 2,
                    l3_entries: 8,
                    l2_entries: 32,
                },
                &mut fa,
            );
            let mut vm = Vmem::new(HugePagePolicy::None, 13);
            let pt_region_base = (4u64 << 30) - (4u64 << 30) / 8;
            for &raw in vas {
                let va = VirtAddr::new(raw);
                let plan = w.walk(va, &mut vm, &mut fa).expect("4GB pool cannot OOM");
                prop_assert!((1..=5).contains(&plan.refs.len()));
                prop_assert_eq!(
                    plan.translation,
                    vm.translate(va, &mut fa).expect("4GB pool cannot OOM")
                );
                for pte in &plan.refs {
                    prop_assert!(pte.raw() >= pt_region_base, "PTE {pte:?} outside PT region");
                }
            }
            Ok(())
        },
    );
}

/// Same VA twice maps to the same frame; different pages to different
/// frames (vmem is a function).
#[test]
fn vmem_is_functional() {
    check(
        &Config::cases(64),
        |rng| vec_of(rng, 1, 100, |r| r.below(100_000)),
        |pages| {
            let mut fa = FrameAllocator::new(4u64 << 30, 17);
            let mut vm = Vmem::new(HugePagePolicy::None, 19);
            let mut seen = std::collections::HashMap::new();
            for &p in pages {
                let va = VirtAddr::new(p << 12);
                let t = vm.translate(va, &mut fa).expect("4GB pool cannot OOM");
                let prev = seen.insert(p, t.pfn);
                if let Some(prev_pfn) = prev {
                    prop_assert_eq!(prev_pfn, t.pfn, "mapping must be stable");
                }
            }
            let frames: std::collections::HashSet<u64> = seen.values().copied().collect();
            prop_assert_eq!(
                frames.len(),
                seen.len(),
                "frames are not shared across pages"
            );
            Ok(())
        },
    );
}

/// Whole-simulation property: for arbitrary small synthetic workloads, the
/// run retires exactly the requested instructions, IPC is positive and
/// bounded by the issue width, and accounting identities hold.
#[test]
fn simulation_invariants_over_random_params() {
    use pagecross::cpu::trace::{TraceFactory, TraceSource};
    use pagecross::cpu::{PgcPolicyKind, SimulationBuilder};
    use pagecross::workloads::{Component, GenParams, Phase, SyntheticTrace};

    struct P(GenParams);
    impl TraceFactory for P {
        fn name(&self) -> &str {
            "prop"
        }
        fn build(&self) -> Box<dyn TraceSource> {
            Box::new(SyntheticTrace::new(self.0.clone()))
        }
    }

    let mut rng = Rng64::new(2024);
    for _ in 0..6 {
        let comp = match rng.below(4) {
            0 => Component::Stream {
                stride_lines: 1 + rng.below(8),
                pages: 64 + rng.below(2048),
            },
            1 => Component::SegmentedStream {
                pages: 64 + rng.below(2048),
            },
            2 => Component::Chase {
                pages: 64 + rng.below(1024),
            },
            _ => Component::GraphCsr {
                pages: 64 + rng.below(1024),
                degree: 1 + rng.below(6) as u32,
            },
        };
        let params = GenParams {
            load_ratio: 0.15 + rng.unit() * 0.2,
            store_ratio: 0.05,
            branch_ratio: 0.1,
            branch_predictability: 0.95,
            phases: vec![Phase {
                components: vec![(comp, 1)],
            }],
            phase_len: 10_000,
            code_lines: 16 + rng.below(64),
            seed: rng.next_u64(),
        };
        for policy in [PgcPolicyKind::PermitPgc, PgcPolicyKind::Dripper] {
            let r = SimulationBuilder::new()
                .pgc_policy(policy)
                .warmup(2_000)
                .instructions(8_000)
                .run_workload(&P(params.clone()));
            assert_eq!(r.core.instructions, 8_000);
            assert!(r.ipc() > 0.0 && r.ipc() <= 6.0, "ipc {}", r.ipc());
            assert!(r.core.loads + r.core.stores + r.core.branches <= r.core.instructions);
            let p = &r.prefetch;
            assert!(p.pgc_issued + p.pgc_discarded <= p.pgc_candidates);
            assert!(p.pgc_candidates <= p.candidates);
            assert!(r.l1d.demand_misses <= r.l1d.demand_accesses);
            assert!(r.stlb.misses <= r.stlb.accesses);
        }
    }
}

/// The three physical regions (4 KB pool, 2 MB pool, page-table nodes)
/// never hand out overlapping frames, for any interleaving of allocation
/// kinds across mix cores. A 2 MB frame covers 512 consecutive 4 KB frame
/// numbers; none of them may coincide with a pool 4 KB frame or another
/// huge frame, and PT nodes live in their own top-of-memory region.
#[test]
fn physical_regions_never_collide_across_cores() {
    check(
        &Config::cases(32),
        |rng| {
            let cores = rng.range(1, 4) as u32;
            let ops = vec_of(rng, 1, 300, |r| (r.below(4) as u8, r.next_u64()));
            (rng.next_u64(), cores, ops)
        },
        |(seed, cores, ops)| {
            let cores = (*cores).max(1); // shrink-proof: the allocator needs a core
            let cap = 4u64 << 30;
            let mut fa = FrameAllocator::with_cores(cap, *seed, cores);
            let huge_base = fa.huge_region_base();
            let pt_base = fa.pt_region_base();
            let mut taken_4k = std::collections::HashSet::new();
            let mut pt_addrs = std::collections::HashSet::new();
            for (i, &(kind, salt)) in ops.iter().enumerate() {
                let core = (salt % cores as u64) as u32;
                match kind {
                    0 | 1 => {
                        let pfn = fa.alloc_4k(core).expect("4GB pool cannot OOM");
                        prop_assert!(pfn < huge_base, "4K pfn {pfn} in huge/PT region");
                        prop_assert!(taken_4k.insert(pfn), "4K pfn {pfn} reused (op {i})");
                    }
                    2 => {
                        let pfn2m = fa.alloc_2m(core).expect("4GB pool cannot OOM");
                        for sub in 0..512u64 {
                            let pfn = (pfn2m << 9) + sub;
                            prop_assert!(
                                pfn >= huge_base && pfn < pt_base,
                                "2M sub-pfn {pfn} outside huge region"
                            );
                            prop_assert!(
                                taken_4k.insert(pfn),
                                "2M frame {pfn2m} collides at sub-pfn {pfn}"
                            );
                        }
                    }
                    _ => {
                        let pfn = fa.alloc_pt_node(core);
                        prop_assert!(pfn >= pt_base, "PT node {pfn} below PT region");
                        prop_assert!(pfn < cap >> 12, "PT node {pfn} beyond capacity");
                        prop_assert!(pt_addrs.insert(pfn), "PT node {pfn} reused");
                    }
                }
            }
            Ok(())
        },
    );
}

/// Per-core address spaces are deterministic functions of (seed, core):
/// the final VPN→PFN mapping of every core is bit-identical no matter how
/// the cores' first touches interleave globally (mix simulations rely on
/// this for worker-count-independent results).
#[test]
fn mix_core_mappings_are_interleaving_independent() {
    check(
        &Config::cases(24),
        |rng| {
            let cores = rng.range(2, 4) as u32;
            let touches = vec_of(rng, 10, 120, |r| r.below(u64::MAX));
            (rng.next_u64(), cores, touches)
        },
        |(seed, cores, touches)| {
            let cores = (*cores).max(1); // shrink-proof: at least one core
                                         // Each raw value encodes (core, vpn). Each core's own program
                                         // order is fixed (that is its instruction stream); only the
                                         // cross-core interleaving may vary.
            let per_core: Vec<Vec<u64>> = (0..cores)
                .map(|c| {
                    touches
                        .iter()
                        .filter(|&&raw| (raw % cores as u64) as u32 == c)
                        .map(|&raw| (raw >> 32) % 50_000)
                        .collect()
                })
                .collect();
            let run = |schedule: &dyn Fn(usize, usize) -> usize| {
                let mut fa = FrameAllocator::with_cores(4u64 << 30, *seed, cores);
                let mut vms: Vec<Vmem> = (0..cores)
                    .map(|c| Vmem::for_core(HugePagePolicy::Fraction(0.3), *seed, c))
                    .collect();
                let mut final_map = std::collections::BTreeMap::new();
                // Visit every (core, position) pair exactly once, in the
                // order the schedule dictates.
                let mut pairs: Vec<(usize, usize)> = per_core
                    .iter()
                    .enumerate()
                    .flat_map(|(c, v)| (0..v.len()).map(move |i| (c, i)))
                    .collect();
                pairs.sort_by_key(|&(c, i)| schedule(c, i));
                for (c, i) in pairs {
                    let vpn = per_core[c][i];
                    let t = vms[c]
                        .translate(VirtAddr::new(vpn << 12), &mut fa)
                        .expect("4GB pool cannot OOM");
                    final_map.insert((c, vpn), (t.vpn, t.pfn, t.size));
                }
                final_map
            };
            // Round-robin across cores vs. core-0-first, core-1-next, …:
            // both preserve each core's program order.
            let round_robin = run(&|c: usize, i: usize| i * 64 + c);
            let sequential = run(&|c: usize, i: usize| c * 1_000_000 + i);
            prop_assert_eq!(
                round_robin,
                sequential,
                "per-core mappings must not depend on the cross-core interleaving"
            );
            Ok(())
        },
    );
}

/// `HugePagePolicy::Fraction` decides promotion per 2 MB region as a pure
/// function of (seed, region) — never of first-touch order (regression:
/// an order-dependent RNG stream here would break campaign determinism).
#[test]
fn fraction_promotion_depends_only_on_seed_and_region() {
    check(
        &Config::cases(32),
        |rng| {
            let regions = vec_of(rng, 5, 60, |r| r.below(10_000));
            (rng.next_u64(), regions)
        },
        |(seed, regions)| {
            let sizes_in = |order: &[u64]| {
                let mut fa = FrameAllocator::new(4u64 << 30, *seed);
                let mut vm = Vmem::new(HugePagePolicy::Fraction(0.5), *seed);
                let mut sizes = std::collections::BTreeMap::new();
                for &region in order {
                    // Touch an arbitrary 4K page inside the 2MB region.
                    let va = VirtAddr::new((region << 21) | ((region % 512) << 12));
                    let t = vm.translate(va, &mut fa).expect("4GB pool cannot OOM");
                    sizes.insert(region, t.size);
                }
                sizes
            };
            let forward = sizes_in(regions);
            let mut reversed: Vec<u64> = regions.clone();
            reversed.reverse();
            prop_assert_eq!(
                forward,
                sizes_in(&reversed),
                "promotion decisions must ignore first-touch order"
            );
            Ok(())
        },
    );
}
