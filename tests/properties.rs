//! Property-based tests over the core data structures and whole-simulation
//! invariants, on the in-repo harness ([`pagecross::types::prop`]).

use pagecross::mem::{Cache, CacheConfig, FillKind, Mshr, Tlb, TlbConfig, Translation};
use pagecross::mem::{FrameAllocator, HugePagePolicy, PageWalker, PscConfig, Vmem};
use pagecross::moka::buffers::{UpdateBuffer, UpdateEntry};
use pagecross::moka::features::{FeatureContext, ProgramFeature};
use pagecross::types::prop::{check, vec_of, Config};
use pagecross::types::{prop_assert, prop_assert_eq};
use pagecross::types::{LineAddr, PageSize, Rng64, SatCounter, VirtAddr};

/// A saturating counter never leaves its configured range under any
/// operation sequence.
#[test]
fn sat_counter_stays_in_range() {
    check(
        &Config::cases(64),
        |rng| {
            (
                rng.range(2, 8) as u32,
                vec_of(rng, 0, 200, |r| r.range(0, 40) as i16 - 20),
            )
        },
        |(bits, ops)| {
            let mut c = SatCounter::new(*bits);
            for &op in ops {
                c.add(op);
                prop_assert!(c.get() >= c.min() && c.get() <= c.max());
            }
            Ok(())
        },
    );
}

/// The RNG respects bounds for arbitrary seeds and bounds.
#[test]
fn rng_below_bound() {
    check(
        &Config::cases(64),
        |rng| (rng.next_u64(), rng.range(1, 1_000_000)),
        |&(seed, bound)| {
            let mut r = Rng64::new(seed);
            for _ in 0..50 {
                prop_assert!(r.below(bound.max(1)) < bound.max(1));
            }
            Ok(())
        },
    );
}

/// Cache invariants under arbitrary access/fill interleavings:
/// occupancy bounded, probe-after-fill true, demand misses ≤ accesses.
#[test]
fn cache_invariants() {
    check(
        &Config::cases(64),
        |rng| vec_of(rng, 1, 400, |r| (r.below(256), r.below(3) as u8)),
        |ops| {
            let mut c = Cache::new(
                "prop",
                CacheConfig {
                    size_bytes: 4096,
                    ways: 4,
                    latency: 1,
                    mshr_entries: 4,
                },
            );
            let capacity = (c.num_sets() as usize) * c.num_ways();
            for &(line, op) in ops {
                let line = LineAddr(line);
                match op {
                    0 => {
                        c.demand_access(line, false);
                    }
                    1 => {
                        c.fill(line, FillKind::Demand, false);
                        prop_assert!(c.probe(line), "fill must make the line resident");
                    }
                    _ => {
                        c.fill(line, FillKind::PrefetchPageCross, false);
                        prop_assert!(c.probe(line));
                    }
                }
                prop_assert!(c.occupancy() <= capacity);
                prop_assert!(c.stats.demand_misses <= c.stats.demand_accesses);
                prop_assert!(c.stats.pgc_useful <= c.stats.prefetch_useful);
                prop_assert!(c.stats.pgc_fills <= c.stats.prefetch_fills);
            }
            Ok(())
        },
    );
}

/// TLB: a fill is observable until evicted; occupancy bounded.
#[test]
fn tlb_invariants() {
    check(
        &Config::cases(64),
        |rng| vec_of(rng, 1, 200, |r| r.below(512)),
        |vpns| {
            let mut t = Tlb::new(
                "prop",
                TlbConfig {
                    entries: 16,
                    ways: 4,
                    latency: 1,
                },
            );
            for &vpn in vpns {
                t.fill(
                    Translation {
                        vpn,
                        pfn: vpn + 7,
                        size: PageSize::Base4K,
                    },
                    false,
                );
                let va = VirtAddr::new(vpn << 12);
                prop_assert!(t.peek(va), "freshly filled translation must be visible");
                prop_assert!(t.occupancy() <= 16);
            }
            prop_assert!(t.stats.misses <= t.stats.accesses);
            Ok(())
        },
    );
}

/// MSHR: allocation never returns earlier than the requested completion;
/// occupancy bounded by capacity.
#[test]
fn mshr_invariants() {
    check(
        &Config::cases(64),
        |rng| vec_of(rng, 1, 100, |r| (r.below(64), r.below(1000))),
        |reqs| {
            let mut m = Mshr::new(8);
            for &(line, now) in reqs {
                let completes = now + 100;
                let got = m.allocate(LineAddr(line), now, completes);
                prop_assert!(got >= completes);
                prop_assert!(m.occupancy(now) <= 8);
            }
            Ok(())
        },
    );
}

/// Update buffers never exceed capacity and inserted entries are
/// retrievable until evicted.
#[test]
fn update_buffer_invariants() {
    check(
        &Config::cases(64),
        |rng| vec_of(rng, 1, 100, |r| r.below(64)),
        |lines| {
            let mut b = UpdateBuffer::new(4);
            for &line in lines {
                b.insert(UpdateEntry {
                    line,
                    indices: vec![1],
                    sf_mask: 0,
                });
                prop_assert!(b.len() <= 4);
                prop_assert!(
                    b.peek(line).is_some(),
                    "most recent insert is always present"
                );
            }
            Ok(())
        },
    );
}

/// Every program feature hashes every context into table range, and is
/// a pure function of the context.
#[test]
fn feature_hash_in_range() {
    check(
        &Config::cases(64),
        |rng| {
            (
                rng.next_u64(),
                rng.next_u64(),
                (rng.range(0, 1023) as i64 - 512, rng.below(2) == 1),
            )
        },
        |&(pc, va, (delta, fpa))| {
            let ctx = FeatureContext {
                pc,
                va,
                target_va: va.wrapping_add_signed(delta * 64),
                delta,
                first_page_access: fpa,
                va_hist: [va, va ^ 1, va ^ 2],
                pc_hist: [pc, pc ^ 1, pc ^ 2],
                delta_hist: [delta, 1, -1],
            };
            for f in ProgramFeature::bouquet() {
                let i = f.index(&ctx, 1024);
                prop_assert!(i < 1024);
                prop_assert_eq!(i, f.index(&ctx, 1024));
            }
            Ok(())
        },
    );
}

/// Page walks reference between 1 and 5 PTEs, the translation matches
/// vmem, and PTE addresses live in the page-table region.
#[test]
fn walker_invariants() {
    check(
        &Config::cases(48),
        |rng| vec_of(rng, 1, 60, |r| r.below(1u64 << 40)),
        |vas| {
            let mut fa = FrameAllocator::new(4u64 << 30, 11);
            let mut w = PageWalker::new(
                PscConfig {
                    l5_entries: 1,
                    l4_entries: 2,
                    l3_entries: 8,
                    l2_entries: 32,
                },
                &mut fa,
            );
            let mut vm = Vmem::new(HugePagePolicy::None, 13);
            let pt_region_base = (4u64 << 30) - (4u64 << 30) / 8;
            for &raw in vas {
                let va = VirtAddr::new(raw);
                let plan = w.walk(va, &mut vm, &mut fa);
                prop_assert!((1..=5).contains(&plan.refs.len()));
                prop_assert_eq!(plan.translation, vm.translate(va, &mut fa));
                for pte in &plan.refs {
                    prop_assert!(pte.raw() >= pt_region_base, "PTE {pte:?} outside PT region");
                }
            }
            Ok(())
        },
    );
}

/// Same VA twice maps to the same frame; different pages to different
/// frames (vmem is a function).
#[test]
fn vmem_is_functional() {
    check(
        &Config::cases(64),
        |rng| vec_of(rng, 1, 100, |r| r.below(100_000)),
        |pages| {
            let mut fa = FrameAllocator::new(4u64 << 30, 17);
            let mut vm = Vmem::new(HugePagePolicy::None, 19);
            let mut seen = std::collections::HashMap::new();
            for &p in pages {
                let va = VirtAddr::new(p << 12);
                let t = vm.translate(va, &mut fa);
                let prev = seen.insert(p, t.pfn);
                if let Some(prev_pfn) = prev {
                    prop_assert_eq!(prev_pfn, t.pfn, "mapping must be stable");
                }
            }
            let frames: std::collections::HashSet<u64> = seen.values().copied().collect();
            prop_assert_eq!(
                frames.len(),
                seen.len(),
                "frames are not shared across pages"
            );
            Ok(())
        },
    );
}

/// Whole-simulation property: for arbitrary small synthetic workloads, the
/// run retires exactly the requested instructions, IPC is positive and
/// bounded by the issue width, and accounting identities hold.
#[test]
fn simulation_invariants_over_random_params() {
    use pagecross::cpu::trace::{TraceFactory, TraceSource};
    use pagecross::cpu::{PgcPolicyKind, SimulationBuilder};
    use pagecross::workloads::{Component, GenParams, Phase, SyntheticTrace};

    struct P(GenParams);
    impl TraceFactory for P {
        fn name(&self) -> &str {
            "prop"
        }
        fn build(&self) -> Box<dyn TraceSource> {
            Box::new(SyntheticTrace::new(self.0.clone()))
        }
    }

    let mut rng = Rng64::new(2024);
    for _ in 0..6 {
        let comp = match rng.below(4) {
            0 => Component::Stream {
                stride_lines: 1 + rng.below(8),
                pages: 64 + rng.below(2048),
            },
            1 => Component::SegmentedStream {
                pages: 64 + rng.below(2048),
            },
            2 => Component::Chase {
                pages: 64 + rng.below(1024),
            },
            _ => Component::GraphCsr {
                pages: 64 + rng.below(1024),
                degree: 1 + rng.below(6) as u32,
            },
        };
        let params = GenParams {
            load_ratio: 0.15 + rng.unit() * 0.2,
            store_ratio: 0.05,
            branch_ratio: 0.1,
            branch_predictability: 0.95,
            phases: vec![Phase {
                components: vec![(comp, 1)],
            }],
            phase_len: 10_000,
            code_lines: 16 + rng.below(64),
            seed: rng.next_u64(),
        };
        for policy in [PgcPolicyKind::PermitPgc, PgcPolicyKind::Dripper] {
            let r = SimulationBuilder::new()
                .pgc_policy(policy)
                .warmup(2_000)
                .instructions(8_000)
                .run_workload(&P(params.clone()));
            assert_eq!(r.core.instructions, 8_000);
            assert!(r.ipc() > 0.0 && r.ipc() <= 6.0, "ipc {}", r.ipc());
            assert!(r.core.loads + r.core.stores + r.core.branches <= r.core.instructions);
            let p = &r.prefetch;
            assert!(p.pgc_issued + p.pgc_discarded <= p.pgc_candidates);
            assert!(p.pgc_candidates <= p.candidates);
            assert!(r.l1d.demand_misses <= r.l1d.demand_accesses);
            assert!(r.stlb.misses <= r.stlb.accesses);
        }
    }
}
