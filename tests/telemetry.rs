//! Telemetry integration tests: stall-slot accounting, JSONL
//! reconciliation against the final report, Chrome trace structure, and
//! the observation-only guarantee (reports are bit-identical with
//! telemetry on or off).

use pagecross::cpu::trace::TraceFactory;
use pagecross::cpu::{
    CoreConfig, OsConfig, PgcPolicyKind, PrefetcherKind, SimulationBuilder, TelemetryConfig,
};
use pagecross::telemetry::{chrome_trace_json, interval_to_json, validate_jsonl};
use pagecross::workloads::{suite, SuiteId, Workload};

/// The golden-test configurations: distinct suites, prefetchers and
/// policies, all run with warmup 5 000 / measured 20 000.
const CASES: &[(SuiteId, usize, PrefetcherKind, PgcPolicyKind)] = &[
    (
        SuiteId::Gap,
        0,
        PrefetcherKind::Berti,
        PgcPolicyKind::Dripper,
    ),
    (
        SuiteId::Spec06,
        0,
        PrefetcherKind::Berti,
        PgcPolicyKind::PermitPgc,
    ),
    (
        SuiteId::QmmInt,
        0,
        PrefetcherKind::Ipcp,
        PgcPolicyKind::DiscardPgc,
    ),
];

fn workload(case: &(SuiteId, usize, PrefetcherKind, PgcPolicyKind)) -> &'static Workload {
    &suite(case.0).workloads()[case.1]
}

fn builder(case: &(SuiteId, usize, PrefetcherKind, PgcPolicyKind)) -> SimulationBuilder {
    SimulationBuilder::new()
        .prefetcher(case.2)
        .pgc_policy(case.3)
        .warmup(5_000)
        .instructions(20_000)
}

/// Every issue slot of the measured run is accounted for: retired
/// instructions plus per-cause lost slots plus the warm-up boundary carry
/// equal `cycles × issue_width` exactly (no slot charged twice, none
/// dropped).
#[test]
fn stall_attribution_is_conservative_and_complete() {
    let width = CoreConfig::default().issue_width;
    for case in CASES {
        let w = workload(case);
        let r = builder(case).run_workload(w);
        let s = &r.core.stalls;
        assert!(
            s.balances(r.core.instructions, r.core.cycles, width),
            "{}: {} instr + {} stalls + {} carry != {} cycles * {} width",
            w.name(),
            r.core.instructions,
            s.total(),
            s.warmup_carry,
            r.core.cycles,
            width
        );
        assert!(
            s.total() > 0,
            "{}: a 20k-instruction run cannot be stall-free at width {width}",
            w.name()
        );
    }
}

/// The emitted JSONL stream is schema-valid and its summed deltas
/// telescope to the run's final report counters.
#[test]
fn jsonl_deltas_reconcile_with_final_report() {
    for case in CASES {
        let w = workload(case);
        let cfg = TelemetryConfig {
            interval: 2_000,
            ..TelemetryConfig::default()
        };
        let (r, telemetry) = builder(case).run_workload_with_telemetry(w, &cfg);
        let mut text = String::new();
        for rec in &telemetry.intervals {
            text.push_str(&interval_to_json(rec));
            text.push('\n');
        }
        let s = validate_jsonl(&text)
            .unwrap_or_else(|e| panic!("{}: emitted stream invalid: {e}", w.name()));
        assert_eq!(s.lines, telemetry.intervals.len());
        assert_eq!(s.final_instructions, r.core.instructions, "{}", w.name());
        assert_eq!(s.final_cycles, r.core.cycles, "{}", w.name());

        let t = &s.totals;
        let tag = w.name();
        assert_eq!(t.instructions, r.core.instructions, "{tag}: instructions");
        assert_eq!(t.cycles, r.core.cycles, "{tag}: cycles");
        assert_eq!(t.l1d_accesses, r.l1d.demand_accesses, "{tag}: l1d acc");
        assert_eq!(t.l1d_misses, r.l1d.demand_misses, "{tag}: l1d miss");
        assert_eq!(t.l1i_misses, r.l1i.demand_misses, "{tag}: l1i miss");
        assert_eq!(t.l2c_misses, r.l2c.demand_misses, "{tag}: l2c miss");
        assert_eq!(t.llc_accesses, r.llc.demand_accesses, "{tag}: llc acc");
        assert_eq!(t.llc_misses, r.llc.demand_misses, "{tag}: llc miss");
        assert_eq!(t.dtlb_misses, r.dtlb.misses, "{tag}: dtlb");
        assert_eq!(t.stlb_misses, r.stlb.misses, "{tag}: stlb");
        assert_eq!(t.demand_walks, r.walks.demand_walks, "{tag}: walks");
        assert_eq!(t.prefetch_walks, r.walks.prefetch_walks, "{tag}: pf walks");
        assert_eq!(t.candidates, r.prefetch.candidates, "{tag}: candidates");
        assert_eq!(
            t.pgc_candidates, r.prefetch.pgc_candidates,
            "{tag}: pgc cand"
        );
        assert_eq!(t.pgc_issued, r.prefetch.pgc_issued, "{tag}: pgc issued");
        assert_eq!(
            t.pgc_discarded, r.prefetch.pgc_discarded,
            "{tag}: pgc discarded"
        );
        assert_eq!(
            t.inpage_issued, r.prefetch.inpage_issued,
            "{tag}: in-page issued"
        );
        assert_eq!(t.prefetch_useful, r.l1d.prefetch_useful, "{tag}: pf useful");
        assert_eq!(
            t.prefetch_useless, r.l1d.prefetch_useless,
            "{tag}: pf useless"
        );
        assert_eq!(t.pgc_useful, r.l1d.pgc_useful, "{tag}: pgc useful");
        assert_eq!(t.pgc_useless, r.l1d.pgc_useless, "{tag}: pgc useless");
        assert_eq!(
            t.branch_mispredicts, r.core.branch_mispredicts,
            "{tag}: mispredicts"
        );
        assert_eq!(t.os_minor_faults, r.os.minor_faults, "{tag}: os minor");
        assert_eq!(t.os_major_faults, r.os.major_faults, "{tag}: os major");
        assert_eq!(t.os_reclaims, r.os.reclaims, "{tag}: os reclaims");
        assert_eq!(t.os_promotions, r.os.thp_promotions, "{tag}: os promote");
        assert_eq!(t.os_shootdowns, r.os.shootdowns, "{tag}: os shootdowns");
    }
}

/// With the OS model enabled the same telescoping holds, the OS counters
/// are live (nonzero faults under a 64 MB budget), and the stall
/// accounting stays exact with the new `OsFault` cause in play.
#[test]
fn jsonl_deltas_reconcile_with_os_model_enabled() {
    let case = &CASES[0]; // gap.s00 touches plenty of cold pages.
    let w = workload(case);
    let cfg = TelemetryConfig {
        interval: 2_000,
        ..TelemetryConfig::default()
    };
    let os = OsConfig {
        phys_mem_bytes: 64 << 20,
        thp: 0.5,
        ..OsConfig::default()
    };
    let (r, telemetry) = builder(case).os(os).run_workload_with_telemetry(w, &cfg);
    assert!(r.os.minor_faults > 0, "64 MB run must fault pages in");
    assert!(r.core.stalls.os_fault > 0, "faults must cost issue slots");
    let width = CoreConfig::default().issue_width;
    assert!(
        r.core
            .stalls
            .balances(r.core.instructions, r.core.cycles, width),
        "OS faults broke the exact stall-slot sum"
    );

    let mut text = String::new();
    for rec in &telemetry.intervals {
        text.push_str(&interval_to_json(rec));
        text.push('\n');
    }
    let s = validate_jsonl(&text).expect("OS-on stream must stay schema-valid");
    let t = &s.totals;
    assert_eq!(t.os_minor_faults, r.os.minor_faults, "os minor");
    assert_eq!(t.os_major_faults, r.os.major_faults, "os major");
    assert_eq!(t.os_reclaims, r.os.reclaims, "os reclaims");
    assert_eq!(t.os_promotions, r.os.thp_promotions, "os promote");
    assert_eq!(t.os_shootdowns, r.os.shootdowns, "os shootdowns");
}

/// The Chrome trace export is structurally sound and carries the expected
/// event kinds for a miss-heavy workload.
#[test]
fn chrome_trace_is_structurally_valid() {
    let case = &CASES[0]; // gap.s00: misses, walks and PGC decisions.
    let cfg = TelemetryConfig {
        interval: 5_000,
        events: true,
        ..TelemetryConfig::default()
    };
    let (_, telemetry) = builder(case).run_workload_with_telemetry(workload(case), &cfg);
    assert!(!telemetry.events.is_empty(), "gap.s00 must produce events");
    assert!(telemetry.events_seen >= telemetry.events.len() as u64);

    let json = chrome_trace_json(&telemetry.events);
    assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
    assert!(json.ends_with("]}"));
    for kind in ["fill", "walk", "decision"] {
        assert!(
            json.contains(&format!("\"name\":\"{kind}\"")),
            "trace must contain {kind} events"
        );
    }
    assert!(json.contains("\"ph\":\"X\""), "walks are duration slices");
    assert!(json.contains("\"ph\":\"i\""), "fills are instant events");
}

/// Telemetry is observation-only: the full report is bit-identical with
/// collection (sampling + event tracing) on or off.
#[test]
fn telemetry_does_not_perturb_reports() {
    for case in CASES {
        let w = workload(case);
        let off = builder(case).run_workload(w);
        let cfg = TelemetryConfig {
            interval: 1_000,
            events: true,
            ..TelemetryConfig::default()
        };
        let (on, telemetry) = builder(case).run_workload_with_telemetry(w, &cfg);
        assert_eq!(
            off,
            on,
            "{}: telemetry collection changed the report",
            w.name()
        );
        assert!(!telemetry.intervals.is_empty(), "{}", w.name());
    }
}
