//! Integration tests for the imitation-OS memory model: demand paging,
//! frame reclamation under real memory pressure, THP promotion, and TLB
//! shootdowns — all exercised through the public `SimulationBuilder` API
//! exactly as the CLI drives it.

use pagecross::cpu::trace::{Instr, Op, TraceFactory, TraceSource};
use pagecross::cpu::{CoreConfig, OsConfig, PrefetcherKind, SimulationBuilder};
use pagecross::types::VirtAddr;
use pagecross::workloads::{suite, SuiteId};

/// A data stream wider than a 64 MB machine's 4 KB pool (8 192 frames):
/// one load per instruction, stride one page, wrapping over `pages`
/// distinct pages so evicted pages are revisited after reclamation.
struct WideStream {
    pages: u64,
}

struct WideSrc {
    pages: u64,
    i: u64,
}

impl TraceSource for WideSrc {
    fn next_instr(&mut self) -> Instr {
        self.i += 1;
        let page = self.i % self.pages;
        Instr {
            pc: 0x40_0000 + (self.i % 8) * 4,
            op: Op::Load {
                va: VirtAddr::new(0x1000_0000 + page * 4096),
                depends_on_prev: false,
            },
        }
    }
}

impl TraceFactory for WideStream {
    fn name(&self) -> &str {
        "wide-stream"
    }
    fn build(&self) -> Box<dyn TraceSource> {
        Box::new(WideSrc {
            pages: self.pages,
            i: 0,
        })
    }
}

fn pressure_config() -> OsConfig {
    OsConfig {
        phys_mem_bytes: 64 << 20,
        thp: 0.5,
        ..OsConfig::default()
    }
}

/// A 64 MB machine streaming a 48 MB data footprint must fault every
/// page in, reclaim frames once the pool drains, shoot down stale TLB
/// entries, and re-fault reclaimed pages as major faults on the second
/// pass — while the exact stall-slot accounting keeps holding.
#[test]
fn memory_pressure_exercises_the_whole_reclaim_path() {
    let w = WideStream { pages: 12_288 }; // 48 MB > the 32 MB 4K pool
    let r = SimulationBuilder::new()
        .prefetcher(PrefetcherKind::None)
        .os(OsConfig {
            phys_mem_bytes: 64 << 20,
            thp: 0.0, // pure 4 KB backing keeps the footprint > the pool
            ..OsConfig::default()
        })
        .warmup(5_000)
        .instructions(20_000)
        .run_workload(&w);

    assert!(r.os.minor_faults > 0, "first touches must minor-fault");
    assert!(r.os.reclaims > 0, "a drained pool must reclaim frames");
    assert!(r.os.shootdowns > 0, "reclaims must invalidate TLBs");
    assert!(
        r.os.major_faults > 0,
        "revisiting reclaimed pages must major-fault"
    );
    assert!(r.core.stalls.os_fault > 0, "faults must cost issue slots");

    let width = CoreConfig::default().issue_width;
    assert!(
        r.core
            .stalls
            .balances(r.core.instructions, r.core.cycles, width),
        "{} instr + {} stalls + {} carry != {} cycles * {width} width",
        r.core.instructions,
        r.core.stalls.total(),
        r.core.stalls.warmup_carry,
        r.core.cycles,
    );
}

/// Raising the THP fraction on a sequential stream converts 4 KB
/// mappings into 2 MB ones: promotions appear and downstream TLB misses
/// drop relative to the no-THP run.
#[test]
fn thp_promotion_reduces_tlb_pressure_on_streams() {
    let run = |thp: f64| {
        // 64 MB of data: wider than the warm-up window, so regions keep
        // being promoted inside the measured phase (warm-up promotions
        // are reset at the boundary and would otherwise hide the count).
        let w = WideStream { pages: 16_384 };
        SimulationBuilder::new()
            .prefetcher(PrefetcherKind::None)
            .os(OsConfig {
                phys_mem_bytes: 256 << 20,
                thp,
                ..OsConfig::default()
            })
            .warmup(5_000)
            .instructions(20_000)
            .run_workload(&w)
    };
    let flat = run(0.0);
    let huge = run(0.9);
    assert_eq!(flat.os.thp_promotions, 0, "thp=0 must never promote");
    assert!(
        huge.os.thp_promotions > 0,
        "thp=0.9 on a sequential stream must promote regions"
    );
    assert!(
        huge.stlb.misses < flat.stlb.misses,
        "2 MB mappings must relieve the STLB: {} >= {}",
        huge.stlb.misses,
        flat.stlb.misses
    );
}

/// The OS model is strictly opt-in: a builder without `.os(..)` produces
/// a report with zeroed OS stats and no `OsFault` stall slots, identical
/// to the pre-OS behaviour the goldens lock down.
#[test]
fn os_model_is_opt_in_and_inert_by_default() {
    let w = &suite(SuiteId::Gap).workloads()[0];
    let r = SimulationBuilder::new()
        .warmup(5_000)
        .instructions(20_000)
        .run_workload(w);
    assert_eq!(r.os, Default::default(), "no OS model, no OS counters");
    assert_eq!(r.core.stalls.os_fault, 0, "no OS model, no fault stalls");
}

/// Registry workloads run under the OS model too: the CLI smoke
/// configuration (64 MB, thp 0.5) faults pages in and issues shootdowns
/// on a real workload, and the run completes with exact accounting.
#[test]
fn cli_smoke_configuration_holds_on_registry_workload() {
    let w = &suite(SuiteId::Gap).workloads()[0];
    let r = SimulationBuilder::new()
        .os(pressure_config())
        .warmup(5_000)
        .instructions(20_000)
        .run_workload(w);
    assert!(r.os.minor_faults > 0, "gap.s00 must fault its pages in");
    assert!(r.os.shootdowns > 0, "promotions must shoot down TLBs");
    let width = CoreConfig::default().issue_width;
    assert!(r
        .core
        .stalls
        .balances(r.core.instructions, r.core.cycles, width));
}
