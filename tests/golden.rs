//! Golden-stats regression tests: small seeded workloads run end-to-end
//! with their exact counter values locked. The simulator is deterministic
//! bit-for-bit (every stochastic choice draws from `Rng64`), so any
//! divergence here means simulated *behaviour* changed — not just
//! performance. Perf work must keep these green; intentional model changes
//! must update the goldens explicitly.
//!
//! Regenerate with:
//! `cargo run -p pagecross-bench --example golden_capture`

use pagecross::cpu::{PgcPolicyKind, PrefetcherKind, Report, SimulationBuilder};
use pagecross::workloads::{suite, SuiteId};

/// Locked counters for one (workload, prefetcher, policy) configuration,
/// run with warmup 5 000 / measured 20 000 and the default seed.
struct Golden {
    workload: &'static str,
    suite: SuiteId,
    index: usize,
    prefetcher: PrefetcherKind,
    policy: PgcPolicyKind,
    cycles: u64,
    l1d_demand_accesses: u64,
    l1d_demand_misses: u64,
    dtlb_misses: u64,
    stlb_misses: u64,
    pgc_candidates: u64,
    pgc_issued: u64,
    pgc_discarded: u64,
    demand_walks: u64,
    /// Derived ratios, locked as 6-decimal strings.
    ipc: &'static str,
    l1d_mpki: &'static str,
    dtlb_mpki: &'static str,
}

const GOLDENS: &[Golden] = &[
    Golden {
        workload: "gap.s00",
        suite: SuiteId::Gap,
        index: 0,
        prefetcher: PrefetcherKind::Berti,
        policy: PgcPolicyKind::Dripper,
        cycles: 38_087,
        l1d_demand_accesses: 7_463,
        l1d_demand_misses: 1_272,
        dtlb_misses: 845,
        stlb_misses: 466,
        pgc_candidates: 857,
        pgc_issued: 231,
        pgc_discarded: 492,
        demand_walks: 466,
        ipc: "0.525114",
        l1d_mpki: "63.600000",
        dtlb_mpki: "42.250000",
    },
    Golden {
        workload: "spec06.s00",
        suite: SuiteId::Spec06,
        index: 0,
        prefetcher: PrefetcherKind::Berti,
        policy: PgcPolicyKind::PermitPgc,
        cycles: 11_782,
        l1d_demand_accesses: 7_006,
        l1d_demand_misses: 0,
        dtlb_misses: 0,
        stlb_misses: 0,
        pgc_candidates: 261,
        pgc_issued: 54,
        pgc_discarded: 0,
        demand_walks: 0,
        ipc: "1.697505",
        l1d_mpki: "0.000000",
        dtlb_mpki: "0.000000",
    },
    Golden {
        workload: "ligra.s01",
        suite: SuiteId::Ligra,
        index: 1,
        prefetcher: PrefetcherKind::Bop,
        policy: PgcPolicyKind::Dripper,
        cycles: 44_018,
        l1d_demand_accesses: 7_557,
        l1d_demand_misses: 1_643,
        dtlb_misses: 959,
        stlb_misses: 539,
        pgc_candidates: 578,
        pgc_issued: 16,
        pgc_discarded: 560,
        demand_walks: 539,
        ipc: "0.454360",
        l1d_mpki: "82.150000",
        dtlb_mpki: "47.950000",
    },
    Golden {
        workload: "qmm_int.s00",
        suite: SuiteId::QmmInt,
        index: 0,
        prefetcher: PrefetcherKind::Ipcp,
        policy: PgcPolicyKind::DiscardPgc,
        cycles: 181_728,
        l1d_demand_accesses: 6_435,
        l1d_demand_misses: 2_758,
        dtlb_misses: 2_462,
        stlb_misses: 526,
        pgc_candidates: 533,
        pgc_issued: 0,
        pgc_discarded: 533,
        demand_walks: 526,
        ipc: "0.110055",
        l1d_mpki: "137.900000",
        dtlb_mpki: "123.100000",
    },
];

fn run(g: &Golden) -> Report {
    use pagecross::cpu::trace::TraceFactory;
    let w = &suite(g.suite).workloads()[g.index];
    assert_eq!(
        w.name(),
        g.workload,
        "registry order changed; regenerate goldens"
    );
    SimulationBuilder::new()
        .prefetcher(g.prefetcher)
        .pgc_policy(g.policy)
        .warmup(5_000)
        .instructions(20_000)
        .run_workload(w)
}

#[test]
fn golden_counters_are_stable() {
    for g in GOLDENS {
        let r = run(g);
        let tag = format!("{} / {:?} / {:?}", g.workload, g.prefetcher, g.policy);
        assert_eq!(r.core.instructions, 20_000, "{tag}: measured length");
        assert_eq!(r.core.cycles, g.cycles, "{tag}: cycles");
        assert_eq!(
            r.l1d.demand_accesses, g.l1d_demand_accesses,
            "{tag}: L1D accesses"
        );
        assert_eq!(
            r.l1d.demand_misses, g.l1d_demand_misses,
            "{tag}: L1D misses"
        );
        assert_eq!(r.dtlb.misses, g.dtlb_misses, "{tag}: dTLB misses");
        assert_eq!(r.stlb.misses, g.stlb_misses, "{tag}: sTLB misses");
        assert_eq!(
            r.prefetch.pgc_candidates, g.pgc_candidates,
            "{tag}: PGC candidates"
        );
        assert_eq!(
            r.prefetch.pgc_issued, g.pgc_issued,
            "{tag}: DRIPPER/policy issues"
        );
        assert_eq!(
            r.prefetch.pgc_discarded, g.pgc_discarded,
            "{tag}: DRIPPER/policy discards"
        );
        assert_eq!(r.walks.demand_walks, g.demand_walks, "{tag}: demand walks");
        assert_eq!(format!("{:.6}", r.ipc()), g.ipc, "{tag}: IPC");
        assert_eq!(
            format!("{:.6}", r.l1d_mpki()),
            g.l1d_mpki,
            "{tag}: L1D MPKI"
        );
        assert_eq!(
            format!("{:.6}", r.dtlb_mpki()),
            g.dtlb_mpki,
            "{tag}: dTLB MPKI"
        );
    }
}

/// The same configuration run twice produces the identical report — the
/// precondition for the golden values (and the parallel campaign merge)
/// to be meaningful.
#[test]
fn repeat_runs_are_bit_identical() {
    let g = &GOLDENS[0];
    assert_eq!(run(g), run(g));
}

/// Recording a workload to a `.pct` file and replaying it through the same
/// simulator configuration reproduces the direct run's report bit-for-bit,
/// for every golden workload. This is the contract that makes traces a
/// drop-in substitute for synthetic generators in campaigns.
#[test]
fn replayed_traces_reproduce_golden_counters() {
    use pagecross::trace::{record, TraceReplay};

    let dir = std::env::temp_dir().join(format!("pct-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp trace dir");
    for g in GOLDENS {
        let w = &suite(g.suite).workloads()[g.index];
        let path = dir.join(format!("{}.pct", g.workload));
        // Record exactly the instructions the golden run consumes:
        // warmup 5 000 + measured 20 000.
        record(w, 25_000, w.params().seed, &path).expect("recording the golden workload");
        let replay = TraceReplay::open(&path).expect("freshly recorded trace");
        let replayed = SimulationBuilder::new()
            .prefetcher(g.prefetcher)
            .pgc_policy(g.policy)
            .warmup(5_000)
            .instructions(20_000)
            .run_workload(&replay);
        let direct = run(g);
        assert_eq!(
            replayed, direct,
            "{}: replayed report must be bit-identical to the direct run",
            g.workload
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
