//! Focused integration tests for substrate paths the end-to-end suite
//! exercises only incidentally: the L1I prefetch path, epoch machinery,
//! custom filter configurations, and report arithmetic.

use pagecross::cpu::{CoreConfig, PgcPolicyKind, PrefetcherKind, SimulationBuilder};
use pagecross::mem::vmem::HugePagePolicy;
use pagecross::mem::{MemConfig, MemorySystem};
use pagecross::moka::filter::FilterConfig;
use pagecross::moka::{ProgramFeature, SystemFeature};
use pagecross::types::VirtAddr;
use pagecross::workloads::{suite, SuiteId};

#[test]
fn l1i_prefetch_path_fills_without_walking() {
    let mut mem = MemorySystem::new(MemConfig::table_iv(1), 1, HugePagePolicy::None, 3);
    // Warm a code page so its translation is resident.
    mem.fetch_instr(0, VirtAddr::new(0x40_0000), 0)
        .expect("4GB pool cannot OOM");
    let walks_before = mem.core(0).walk_stats.demand_walks;
    // Prefetch the next line on the same page: no walk allowed or needed.
    assert!(mem.issue_l1i_prefetch(0, VirtAddr::new(0x40_0040), 100));
    assert_eq!(mem.core(0).walk_stats.demand_walks, walks_before);
    assert_eq!(mem.core(0).walk_stats.prefetch_walks, 0);
    // A prefetch to a cold page is dropped, never walked.
    assert!(!mem.issue_l1i_prefetch(0, VirtAddr::new(0x9999_0000), 200));
    assert_eq!(mem.core(0).walk_stats.prefetch_walks, 0);
    // The prefetched line now hits.
    let f = mem
        .fetch_instr(0, VirtAddr::new(0x40_0040), 10_000)
        .expect("4GB pool cannot OOM");
    assert!(f.l1i_hit);
}

#[test]
fn l1i_prefetching_reduces_l1i_misses_on_code_heavy_workload() {
    // gkb5 template 3 has a 4096-line code footprint.
    let w = &suite(SuiteId::Gkb5).workloads()[3];
    let r = SimulationBuilder::new()
        .prefetcher(PrefetcherKind::None)
        .pgc_policy(PgcPolicyKind::DiscardPgc)
        .warmup(10_000)
        .instructions(30_000)
        .run_workload(w);
    // The fnl+mma prefetcher is always on; with a 4K-line loop the L1I
    // (512 lines) misses constantly, so prefetch fills must be plentiful.
    assert!(
        r.l1i.prefetch_fills > 100,
        "fnl+mma fills: {}",
        r.l1i.prefetch_fills
    );
    assert!(r.l1i.prefetch_useful > 0);
}

#[test]
fn custom_filter_configuration_runs_end_to_end() {
    let w = &suite(SuiteId::Spec06).workloads()[0];
    let mut cfg = FilterConfig::with_features(
        vec![ProgramFeature::PageDistance, ProgramFeature::PcXorVa],
        vec![SystemFeature::LlcMissRate],
    );
    cfg.wt_entries = 256;
    cfg.vub_entries = 8;
    cfg.pub_entries = 64;
    let r = SimulationBuilder::new()
        .custom_filter(cfg)
        .warmup(5_000)
        .instructions(15_000)
        .run_workload(w);
    assert_eq!(r.policy, "dripper"); // label reflects the configured kind
    assert!(r.prefetch.pgc_candidates > 0);
    assert_eq!(r.core.instructions, 15_000);
}

#[test]
fn epoch_length_affects_adaptation_but_not_correctness() {
    let w = &suite(SuiteId::Gap).workloads()[1];
    for epoch in [500u64, 8_000] {
        let cfg = CoreConfig {
            epoch_instrs: epoch,
            spot_interval: epoch / 8,
            ..Default::default()
        };
        let r = SimulationBuilder::new()
            .pgc_policy(PgcPolicyKind::Dripper)
            .core_config(cfg)
            .warmup(10_000)
            .instructions(20_000)
            .run_workload(w);
        assert_eq!(r.core.instructions, 20_000, "epoch={epoch}");
        let p = &r.prefetch;
        assert!(
            p.pgc_issued + p.pgc_discarded <= p.pgc_candidates,
            "epoch={epoch}"
        );
    }
}

#[test]
fn seeds_change_frame_placement_not_workload_behaviour() {
    // The seed controls physical frame placement only. Demand behaviour is
    // defined in the virtual space, so instruction and miss counts are
    // seed-invariant — and for access patterns without physical-set reuse,
    // timing is too (the L1D's 64 sets × 64 B span exactly one page, which
    // is the property that makes VIPT caches work).
    let mut m1 = MemorySystem::new(MemConfig::table_iv(1), 1, HugePagePolicy::None, 1);
    let mut m2 = MemorySystem::new(MemConfig::table_iv(1), 1, HugePagePolicy::None, 2);
    let mut differs = false;
    for p in 0..32u64 {
        let va = VirtAddr::new(0x5000_0000 + (p << 12));
        differs |= m1.translate_untimed(0, va) != m2.translate_untimed(0, va);
    }
    assert!(
        differs,
        "different seeds must place pages in different frames"
    );

    let w = &suite(SuiteId::Spec06).workloads()[0];
    let run = |seed| {
        SimulationBuilder::new()
            .prefetcher(PrefetcherKind::None)
            .seed(seed)
            .warmup(5_000)
            .instructions(15_000)
            .run_workload(w)
    };
    let a = run(1);
    let b = run(2);
    assert_eq!(a.core.instructions, b.core.instructions);
    assert_eq!(
        a.l1d.demand_misses, b.l1d.demand_misses,
        "virtual-space behaviour is seed-invariant"
    );
}

#[test]
fn report_mpki_consistency() {
    let w = &suite(SuiteId::Ligra).workloads()[0];
    let r = SimulationBuilder::new()
        .warmup(5_000)
        .instructions(20_000)
        .run_workload(w);
    let expected = r.l1d.demand_misses as f64 * 1000.0 / r.core.instructions as f64;
    assert!((r.l1d_mpki() - expected).abs() < 1e-9);
    let cov = r.coverage().expect("ligra run resolves coverage");
    assert!((0.0..=1.0).contains(&cov));
    let acc = r
        .prefetch_accuracy()
        .expect("ligra run resolves prefetch accuracy");
    assert!((0.0..=1.0).contains(&acc));
    assert!(r.pgc_accuracy() >= 0.0 && r.pgc_accuracy() <= 1.0);
}

#[test]
fn non_intensive_workloads_are_actually_non_intensive() {
    let w = pagecross::workloads::non_intensive_workloads()[0];
    let r = SimulationBuilder::new()
        .prefetcher(PrefetcherKind::None)
        .warmup(10_000)
        .instructions(20_000)
        .run_workload(w);
    assert!(
        r.llc_mpki() < 1.0,
        "non-intensive must have LLC MPKI < 1, got {}",
        r.llc_mpki()
    );
}

#[test]
fn intensive_workloads_mostly_clear_the_mpki_bar() {
    // Spot-check one template per suite family under no prefetching: the
    // registry's intensive members should be memory-intensive (the paper's
    // bar: LLC MPKI >= 1).
    let mut pass = 0;
    let mut total = 0;
    for w in pagecross::workloads::representative_seen(2) {
        let r = SimulationBuilder::new()
            .prefetcher(PrefetcherKind::None)
            .warmup(5_000)
            .instructions(15_000)
            .run_workload(w);
        total += 1;
        if r.llc_mpki() >= 1.0 {
            pass += 1;
        }
    }
    assert!(
        pass * 4 >= total * 3,
        "{pass}/{total} intensive workloads clear LLC MPKI >= 1"
    );
}

#[test]
fn iso_storage_enlarges_prefetcher_not_policy() {
    let w = &suite(SuiteId::Spec06).workloads()[0];
    let iso = SimulationBuilder::new()
        .pgc_policy(PgcPolicyKind::IsoStorage)
        .warmup(5_000)
        .instructions(15_000)
        .run_workload(w);
    // ISO storage always permits: no discards ever.
    assert_eq!(iso.prefetch.pgc_discarded, 0);
    assert!(iso.prefetch.pgc_issued > 0);
}

#[test]
fn dripper_static_threshold_variants_differ() {
    let w = &suite(SuiteId::Gap).workloads()[0];
    let loose = SimulationBuilder::new()
        .pgc_policy(PgcPolicyKind::DripperStatic(-4))
        .warmup(10_000)
        .instructions(20_000)
        .run_workload(w);
    let strict = SimulationBuilder::new()
        .pgc_policy(PgcPolicyKind::DripperStatic(12))
        .warmup(10_000)
        .instructions(20_000)
        .run_workload(w);
    assert!(
        loose.prefetch.pgc_issued > strict.prefetch.pgc_issued,
        "threshold -4 ({}) must issue more than threshold 12 ({})",
        loose.prefetch.pgc_issued,
        strict.prefetch.pgc_issued
    );
}
