//! Building custom Page-Cross Filters with the MOKA framework.
//!
//! Demonstrates the framework API directly: constructing filters from
//! different feature selections, driving them by hand, and comparing the
//! resulting decisions — the workflow §III-D3's offline feature exploration
//! automates.
//!
//! ```sh
//! cargo run --release --example filter_tuning
//! ```

use pagecross::moka::features::{FeatureContext, ProgramFeature};
use pagecross::moka::filter::{FilterConfig, PageCrossFilter};
use pagecross::moka::system_features::SystemFeature;
use pagecross::types::{Decision, PrefetchCandidate, SystemSnapshot, VirtAddr};

/// Drives a filter through a synthetic episode with two alternating phases:
/// a TLB-pressured phase where delta +1 page-cross prefetches turn out
/// useful, and a quiet phase where delta +37 ones turn out useless — the
/// phase-conditional structure MOKA's system features are built to exploit.
fn episode(filter: &mut PageCrossFilter) -> (u64, u64) {
    // Phase A: high sTLB miss rate (the StlbMissRate feature gates on).
    let snap_hot = SystemSnapshot {
        stlb_miss_rate: 0.3,
        stlb_mpki: 0.5,
        ..Default::default()
    };
    // Phase B: quiet TLB with moderate MPKI (both sTLB features gate off).
    let snap_cold = SystemSnapshot {
        stlb_miss_rate: 0.01,
        stlb_mpki: 3.0,
        ..Default::default()
    };
    let mut good_issued = 0;
    let mut bad_issued = 0;
    for round in 0..400u64 {
        for (delta, useful) in [(1i64, true), (37, false)] {
            let snap = if useful { snap_hot } else { snap_cold };
            let trigger = VirtAddr::new(0x10_0000 + round * 0x1000 + 0xFC0);
            let target = trigger.offset(delta * 64);
            let cand = PrefetchCandidate {
                pc: 0x400100, // same load PC for both deltas
                trigger,
                target,
                delta,
                first_page_access: false,
            };
            let ctx = FeatureContext {
                pc: cand.pc,
                va: trigger.raw(),
                target_va: target.raw(),
                delta,
                ..Default::default()
            };
            match filter.decide(&cand, &ctx, &snap) {
                Decision::Issue => {
                    let phys = 0xAB_0000 + round * 64 + delta as u64;
                    filter.confirm_issue(phys);
                    if useful {
                        good_issued += 1;
                        filter.on_pcb_first_hit(phys);
                    } else {
                        bad_issued += 1;
                        filter.on_pcb_eviction(phys, false);
                    }
                }
                Decision::Discard => {
                    if useful {
                        // The discarded prefetch becomes a demand miss: the
                        // vUB catches the false negative.
                        filter.on_l1d_demand_miss(target.line().raw());
                    }
                }
            }
        }
        if round % 50 == 49 {
            filter.end_epoch(&snap_hot);
        }
    }
    (good_issued, bad_issued)
}

fn show(label: &str, cfg: FilterConfig) {
    let mut f = PageCrossFilter::new(cfg);
    let (good, bad) = episode(&mut f);
    println!(
        "{label:<28} issued useful: {good:>4}/400   issued useless: {bad:>4}/400   \
         storage: {:.2} KB   T_a(final): {}",
        f.config().storage_kb(),
        f.threshold()
    );
}

fn main() {
    println!("A good filter issues the useful delta (+1) and blocks the useless one (+37).\n");

    show(
        "DRIPPER (Delta + 2 SF)",
        FilterConfig::with_features(
            vec![ProgramFeature::Delta],
            vec![SystemFeature::StlbMpki, SystemFeature::StlbMissRate],
        ),
    );
    show(
        "PC-only filter",
        FilterConfig::with_features(vec![ProgramFeature::Pc], vec![]),
    );
    show(
        "PC xor Delta filter",
        FilterConfig::with_features(vec![ProgramFeature::PcXorDelta], vec![]),
    );
    show(
        "System-features only",
        FilterConfig::with_features(
            vec![],
            vec![SystemFeature::StlbMpki, SystemFeature::StlbMissRate],
        ),
    );
    let mut static_cfg = FilterConfig::with_features(vec![ProgramFeature::Delta], vec![]);
    static_cfg.adaptive = false;
    static_cfg.static_threshold = 0;
    show("Delta, static threshold", static_cfg);

    println!("\nNote how PC-only cannot separate the two deltas (same PC family),");
    println!("while any Delta-bearing feature can — the insight behind Table II.");
}
