//! Graph-analytics scenario: the workload class the paper's introduction
//! motivates (GAP / Ligra kernels with multi-gigabyte footprints).
//!
//! Sweeps every GAP-suite template under Discard / Permit / DRIPPER with
//! all three prefetchers and prints a per-workload comparison — a miniature
//! of the paper's Fig. 2 focused on graphs.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use pagecross::cpu::trace::TraceFactory;
use pagecross::cpu::{PgcPolicyKind, PrefetcherKind, SimulationBuilder};
use pagecross::types::geomean;
use pagecross::workloads::{suite, SuiteId};

fn run(pf: PrefetcherKind, policy: PgcPolicyKind, w: &pagecross::workloads::Workload) -> f64 {
    SimulationBuilder::new()
        .prefetcher(pf)
        .pgc_policy(policy)
        .warmup(40_000)
        .instructions(80_000)
        .run_workload(w)
        .ipc()
}

fn main() {
    let workloads: Vec<_> = suite(SuiteId::Gap)
        .workloads()
        .iter()
        .filter(|w| w.is_seen())
        .take(8)
        .collect();

    for pf in [
        PrefetcherKind::Berti,
        PrefetcherKind::Ipcp,
        PrefetcherKind::Bop,
    ] {
        println!("== L1D prefetcher: {pf:?} ==");
        println!(
            "{:<12} {:>16} {:>16}",
            "workload", "Permit vs Discard", "DRIPPER vs Discard"
        );
        let mut permit_ratios = Vec::new();
        let mut dripper_ratios = Vec::new();
        for w in &workloads {
            let discard = run(pf, PgcPolicyKind::DiscardPgc, w);
            let permit = run(pf, PgcPolicyKind::PermitPgc, w);
            let dripper = run(pf, PgcPolicyKind::Dripper, w);
            permit_ratios.push(permit / discard);
            dripper_ratios.push(dripper / discard);
            println!(
                "{:<12} {:>15.2}% {:>15.2}%",
                w.name(),
                (permit / discard - 1.0) * 100.0,
                (dripper / discard - 1.0) * 100.0
            );
        }
        let gp = geomean(&permit_ratios).unwrap_or(1.0);
        let gd = geomean(&dripper_ratios).unwrap_or(1.0);
        println!(
            "{:<12} {:>15.2}% {:>15.2}%   (geomean)\n",
            "GEOMEAN",
            (gp - 1.0) * 100.0,
            (gd - 1.0) * 100.0
        );
    }
}
