//! Large-page scenario (§V-B6): a system using both 4 KB and 2 MB pages.
//!
//! Compares Permit PGC, DRIPPER filtering at the backing page's boundary
//! ("filter@2MB", the page-size-aware variant), and default DRIPPER
//! (always filtering at 4 KB boundaries) over Discard PGC.
//!
//! ```sh
//! cargo run --release --example large_pages
//! ```

use pagecross::cpu::trace::TraceFactory;
use pagecross::cpu::{BoundaryMode, PgcPolicyKind, PrefetcherKind, SimulationBuilder};
use pagecross::mem::HugePagePolicy;
use pagecross::types::geomean;
use pagecross::workloads::representative_seen;

fn run(policy: PgcPolicyKind, boundary: BoundaryMode, w: &pagecross::workloads::Workload) -> f64 {
    SimulationBuilder::new()
        .prefetcher(PrefetcherKind::Berti)
        .pgc_policy(policy)
        .boundary(boundary)
        // Half the 2 MB regions promoted to huge pages, per [89]'s
        // methodology.
        .huge_pages(HugePagePolicy::Fraction(0.5))
        .warmup(40_000)
        .instructions(80_000)
        .run_workload(w)
        .ipc()
}

fn main() {
    let workloads = representative_seen(2);
    println!(
        "{:<14} {:>18} {:>18} {:>14}",
        "workload", "Permit", "DRIPPER@pagesize", "DRIPPER@4K"
    );
    let (mut rp, mut r2m, mut r4k) = (vec![], vec![], vec![]);
    for w in &workloads {
        let discard = run(PgcPolicyKind::DiscardPgc, BoundaryMode::Fixed4K, w);
        let permit = run(PgcPolicyKind::PermitPgc, BoundaryMode::PageSizeAware, w);
        let d2m = run(PgcPolicyKind::Dripper, BoundaryMode::PageSizeAware, w);
        let d4k = run(PgcPolicyKind::Dripper, BoundaryMode::Fixed4K, w);
        rp.push(permit / discard);
        r2m.push(d2m / discard);
        r4k.push(d4k / discard);
        println!(
            "{:<14} {:>17.2}% {:>17.2}% {:>13.2}%",
            w.name(),
            (permit / discard - 1.0) * 100.0,
            (d2m / discard - 1.0) * 100.0,
            (d4k / discard - 1.0) * 100.0
        );
    }
    println!(
        "{:<14} {:>17.2}% {:>17.2}% {:>13.2}%   (geomean over Discard PGC)",
        "GEOMEAN",
        (geomean(&rp).unwrap_or(1.0) - 1.0) * 100.0,
        (geomean(&r2m).unwrap_or(1.0) - 1.0) * 100.0,
        (geomean(&r4k).unwrap_or(1.0) - 1.0) * 100.0
    );
    println!("\nThe paper (§V-B6) finds DRIPPER@4K > DRIPPER@2MB > Permit in geomean:");
    println!("filtering at 4 KB boundaries stays useful even inside 2 MB pages, because");
    println!("it still prevents cache pollution (sTLB pollution no longer applies).");
}
