//! Quickstart: simulate one workload under the three page-cross policies
//! the paper compares, and print the headline numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pagecross::cpu::{PgcPolicyKind, PrefetcherKind, SimulationBuilder};
use pagecross::workloads::{suite, SuiteId};

fn main() {
    // Pick a GAP-like graph workload: large footprint, heavy TLB pressure —
    // the kind of workload where the page-cross decision actually matters.
    let workload = &suite(SuiteId::Gap).workloads()[0];
    println!(
        "workload: {}",
        pagecross::cpu::trace::TraceFactory::name(workload)
    );
    println!(
        "{:<14} {:>7} {:>10} {:>10} {:>10} {:>10}",
        "policy", "IPC", "L1D MPKI", "sTLB MPKI", "PGC issued", "spec walks"
    );

    let mut baseline_ipc = None;
    for policy in [
        PgcPolicyKind::DiscardPgc,
        PgcPolicyKind::PermitPgc,
        PgcPolicyKind::Dripper,
    ] {
        let report = SimulationBuilder::new()
            .prefetcher(PrefetcherKind::Berti)
            .pgc_policy(policy)
            .warmup(50_000)
            .instructions(100_000)
            .run_workload(workload);
        println!(
            "{:<14} {:>7.3} {:>10.2} {:>10.2} {:>10} {:>10}",
            report.policy,
            report.ipc(),
            report.l1d_mpki(),
            report.stlb_mpki(),
            report.prefetch.pgc_issued,
            report.prefetch.speculative_walks,
        );
        match policy {
            PgcPolicyKind::DiscardPgc => baseline_ipc = Some(report.ipc()),
            _ => {
                let base = baseline_ipc.expect("baseline ran first");
                println!(
                    "{:<14}   -> {:+.2}% vs Discard PGC",
                    "",
                    (report.ipc() / base - 1.0) * 100.0
                );
            }
        }
    }
}
