//! Offline feature selection (§III-D3) driven by the real simulator.
//!
//! Regenerates (a scaled-down version of) the process that produced
//! Table II: evaluate single-feature filters in isolation over a workload
//! sample, rank them, then greedily grow the set with the paper's 0.3%
//! adoption threshold.
//!
//! ```sh
//! cargo run --release --example feature_selection
//! ```
//! Heavier search: `SELECT_POOL=all` evaluates the full 61-candidate pool
//! (~10 minutes) instead of the curated shortlist.

use pagecross::cpu::{PgcPolicyKind, PrefetcherKind, SimulationBuilder};
use pagecross::moka::filter::FilterConfig;
use pagecross::moka::selection::{candidate_pool, select_features, CandidateFeature, FeatureSet};
use pagecross::moka::{ProgramFeature, SystemFeature};
use pagecross::types::geomean;
use pagecross::workloads::representative_seen;

fn main() {
    let workloads = representative_seen(2);

    // Baseline IPCs (Discard PGC) per workload, computed once.
    let baselines: Vec<f64> = workloads
        .iter()
        .map(|w| {
            SimulationBuilder::new()
                .prefetcher(PrefetcherKind::Berti)
                .pgc_policy(PgcPolicyKind::DiscardPgc)
                .warmup(20_000)
                .instructions(40_000)
                .run_workload(*w)
                .ipc()
        })
        .collect();

    let evaluate = |set: &FeatureSet| -> f64 {
        let ratios: Vec<f64> = workloads
            .iter()
            .zip(&baselines)
            .map(|(w, &base)| {
                let ipc = SimulationBuilder::new()
                    .prefetcher(PrefetcherKind::Berti)
                    .custom_filter(FilterConfig::with_features(
                        set.program.clone(),
                        set.system.clone(),
                    ))
                    .warmup(20_000)
                    .instructions(40_000)
                    .run_workload(*w)
                    .ipc();
                ipc / base
            })
            .collect();
        geomean(&ratios).unwrap_or(1.0)
    };

    // The full pool costs ~120 evaluations x |workloads| simulations; the
    // default shortlist keeps the example snappy.
    let pool: Vec<CandidateFeature> = if std::env::var("SELECT_POOL").as_deref() == Ok("all") {
        candidate_pool()
    } else {
        vec![
            CandidateFeature::Program(ProgramFeature::Delta),
            CandidateFeature::Program(ProgramFeature::PcXorDelta),
            CandidateFeature::Program(ProgramFeature::Pc),
            CandidateFeature::Program(ProgramFeature::VaShift(12)),
            CandidateFeature::Program(ProgramFeature::PageDistance),
            CandidateFeature::System(SystemFeature::StlbMpki),
            CandidateFeature::System(SystemFeature::StlbMissRate),
            CandidateFeature::System(SystemFeature::LlcMissRate),
        ]
    };

    println!(
        "searching over {} candidates x {} workloads…",
        pool.len(),
        workloads.len()
    );
    let out = select_features(&pool, evaluate, 0.003);

    println!("\nisolated ranking (top 8):");
    for (f, score) in out.isolated_ranking.iter().take(8) {
        println!("  {f:?}: {:+.2}%", (score - 1.0) * 100.0);
    }
    println!("\nselected set ({} evaluations):", out.evaluations);
    for p in &out.selected.program {
        println!("  program: {p:?}");
    }
    for s in &out.selected.system {
        println!("  system:  {s:?}");
    }
    println!("geomean speedup: {:+.2}%", (out.score - 1.0) * 100.0);
    println!("\nTable II (paper, for Berti): Delta + sTLB MPKI + sTLB Miss Rate");
}
